//! Robustness: the lexer and parser must never panic — arbitrary input
//! yields either an AST or a positioned parse error. Parsed output must
//! survive a print → re-parse round trip (printing is a fixed point).

use prefsql_parser::{parse_statement, parse_statements, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8: no panics anywhere in the pipeline.
    #[test]
    fn arbitrary_input_never_panics(input in "\\PC{0,120}") {
        let _ = Lexer::new(&input).tokenize();
        let _ = parse_statement(&input);
        let _ = parse_statements(&input);
    }

    /// SQL-ish token soup: higher keyword density than raw Unicode, still
    /// no panics.
    #[test]
    fn sql_token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("PREFERRING"),
                Just("AND"), Just("CASCADE"), Just("AROUND"), Just("BETWEEN"),
                Just("LOWEST"), Just("HIGHEST"), Just("IN"), Just("ELSE"),
                Just("BUT"), Just("ONLY"), Just("GROUPING"), Just("NOT"),
                Just("EXISTS"), Just("("), Just(")"), Just(","), Just(";"),
                Just("*"), Just("="), Just("<>"), Just("<="), Just("'x'"),
                Just("42"), Just("3.5"), Just("t"), Just("c1"), Just("c2"),
                Just("CASE"), Just("WHEN"), Just("THEN"), Just("END"),
                Just("ORDER"), Just("BY"), Just("GROUP"), Just("LEVEL"),
                Just("DISTANCE"), Just("TOP"), Just("EXPLICIT"), Just("BETTER"),
            ],
            0..40
        )
    ) {
        let input = words.join(" ");
        let _ = parse_statements(&input);
    }

    /// Whatever parses must print to SQL that re-parses to the same AST.
    #[test]
    fn parse_print_parse_is_identity(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("PREFERRING"),
                Just("AND"), Just("OR"), Just("CASCADE"), Just("AROUND"),
                Just("LOWEST"), Just("HIGHEST"), Just("IN"), Just("("),
                Just(")"), Just(","), Just("*"), Just("="), Just("<>"),
                Just("'x'"), Just("'y'"), Just("42"), Just("t"), Just("a"),
                Just("b"), Just("ORDER"), Just("BY"), Just("DESC"),
            ],
            1..25
        )
    ) {
        let input = words.join(" ");
        if let Ok(ast1) = parse_statement(&input) {
            let printed = ast1.to_string();
            let ast2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("printed SQL unparseable: {e}\n{printed}"));
            prop_assert_eq!(ast1, ast2, "round trip differs for input: {}", input);
        }
    }
}

#[test]
fn pathological_inputs() {
    for input in [
        "",
        ";",
        ";;;;",
        "(((((((((",
        ")))))",
        "SELECT SELECT SELECT",
        "''''''",
        "'unterminated",
        "\"unterminated",
        "/* unterminated",
        "--",
        "SELECT * FROM t PREFERRING",
        "SELECT * FROM t PREFERRING x",
        "SELECT * FROM t PREFERRING x AROUND",
        "SELECT * FROM t PREFERRING ELSE",
        "1e999999",
        "99999999999999999999999999999",
        "SELECT 1 + + + + 1",
        "SELECT * FROM (SELECT * FROM (SELECT * FROM (SELECT 1) a) b) c",
        "x.y.z.w",
        ".5",
        "CASE",
        "NOT NOT NOT NOT 1",
    ] {
        // Must not panic; success or error both fine.
        let _ = parse_statement(input);
    }
}

#[test]
fn nesting_depth_is_bounded_not_fatal() {
    let nested = |depth: usize| {
        let mut q = String::from("SELECT ");
        for _ in 0..depth {
            q.push('(');
        }
        q.push('1');
        for _ in 0..depth {
            q.push(')');
        }
        q
    };
    // Reasonable nesting parses fine.
    let stmt = parse_statement(&nested(30)).unwrap();
    assert_eq!(stmt.to_string(), "SELECT 1");
    // Pathological nesting is a clean parse error, not a stack overflow.
    let err = parse_statement(&nested(5000)).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
    // Same guard for NOT chains and unary minus chains.
    let nots = format!("SELECT * FROM t WHERE {} x = 1", "NOT ".repeat(5000));
    assert!(parse_statement(&nots).is_err());
    let minuses = format!("SELECT {}1", "- ".repeat(5000));
    assert!(parse_statement(&minuses).is_err());
    // Deep derived-table nesting is also bounded.
    let mut q = String::from("SELECT 1");
    for i in 0..5000 {
        q = format!("SELECT * FROM ({q}) t{i}");
    }
    assert!(parse_statement(&q).is_err());
}

#[test]
fn huge_in_list_parses() {
    let values: Vec<String> = (0..2000).map(|i| i.to_string()).collect();
    let q = format!("SELECT * FROM t WHERE x IN ({})", values.join(", "));
    assert!(parse_statement(&q).is_ok());
    let p = format!("SELECT * FROM t PREFERRING x IN ({})", values.join(", "));
    assert!(parse_statement(&p).is_ok());
}
