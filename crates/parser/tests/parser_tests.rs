//! Parser integration tests, centred on every query that appears verbatim
//! in the paper, plus round-trip (print → re-parse) property checks.

use prefsql_parser::ast::*;
use prefsql_parser::{parse_expression, parse_statement, parse_statements};
use prefsql_types::Value;

fn query(sql: &str) -> Query {
    match parse_statement(sql).unwrap() {
        Statement::Select(q) => *q,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

fn pref(sql: &str) -> PrefExpr {
    query(sql).preferring.expect("query has PREFERRING")
}

// ------------------------------------------------------------------ §2.2.1

#[test]
fn paper_around_trips() {
    let p = pref("SELECT * FROM trips PREFERRING duration AROUND 14;");
    assert_eq!(
        p,
        PrefExpr::Around {
            expr: Expr::col("duration"),
            target: Box::new(Expr::lit(14)),
        }
    );
}

#[test]
fn paper_highest_area() {
    let p = pref("SELECT * FROM apartments PREFERRING HIGHEST(area);");
    assert_eq!(
        p,
        PrefExpr::Highest {
            expr: Expr::col("area")
        }
    );
}

#[test]
fn paper_pos_programmers() {
    let p = pref("SELECT * FROM programmers PREFERRING exp IN ('java', 'C++');");
    assert_eq!(
        p,
        PrefExpr::Pos {
            expr: Expr::col("exp"),
            values: vec![Value::str("java"), Value::str("C++")],
        }
    );
}

#[test]
fn paper_neg_hotels() {
    let p = pref("SELECT * FROM hotels PREFERRING location <> 'downtown';");
    assert_eq!(
        p,
        PrefExpr::Neg {
            expr: Expr::col("location"),
            values: vec![Value::str("downtown")],
        }
    );
}

// ------------------------------------------------------------------ §2.2.2

#[test]
fn paper_pareto_computers() {
    let p = pref("SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed);");
    assert_eq!(
        p,
        PrefExpr::Pareto(vec![
            PrefExpr::Highest {
                expr: Expr::col("main_memory")
            },
            PrefExpr::Highest {
                expr: Expr::col("cpu_speed")
            },
        ])
    );
}

#[test]
fn paper_cascade_computers() {
    let p = pref(
        "SELECT * FROM computers \
         PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown');",
    );
    assert_eq!(
        p,
        PrefExpr::Prioritized(vec![
            PrefExpr::Highest {
                expr: Expr::col("main_memory")
            },
            PrefExpr::Pos {
                expr: Expr::col("color"),
                values: vec![Value::str("black"), Value::str("brown")],
            },
        ])
    );
}

#[test]
fn paper_opel_query_full_shape() {
    // The flagship example of §2.2.2: hard WHERE + POS/NEG ELSE + Pareto +
    // two CASCADE levels.
    let q = query(
        "SELECT * FROM car WHERE make = 'Opel' \
         PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND \
         price AROUND 40000 AND HIGHEST(power)) \
         CASCADE color = 'red' CASCADE LOWEST(mileage);",
    );
    assert!(q.where_clause.is_some());
    let p = q.preferring.unwrap();
    match &p {
        PrefExpr::Prioritized(levels) => {
            assert_eq!(levels.len(), 3, "three CASCADE levels");
            match &levels[0] {
                PrefExpr::Pareto(parts) => {
                    assert_eq!(parts.len(), 3, "POS/NEG, AROUND, HIGHEST");
                    assert!(matches!(parts[0], PrefExpr::PosNeg { .. }));
                    assert!(matches!(parts[1], PrefExpr::Around { .. }));
                    assert!(matches!(parts[2], PrefExpr::Highest { .. }));
                }
                other => panic!("expected Pareto at level 0, got {other:?}"),
            }
            assert!(matches!(&levels[1], PrefExpr::Pos { .. }));
            assert!(matches!(&levels[2], PrefExpr::Lowest { .. }));
        }
        other => panic!("expected Prioritized, got {other:?}"),
    }
}

#[test]
fn else_binds_tighter_than_pareto_and() {
    // §2.2.3 oldtimer query: ELSE groups the two color conditions; AND
    // Pareto-combines with the AROUND preference.
    let p = pref(
        "SELECT * FROM oldtimer \
         PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40;",
    );
    assert_eq!(
        p,
        PrefExpr::Pareto(vec![
            PrefExpr::PosPos {
                expr: Expr::col("color"),
                first: vec![Value::str("white")],
                second: vec![Value::str("yellow")],
            },
            PrefExpr::Around {
                expr: Expr::col("age"),
                target: Box::new(Expr::lit(40)),
            },
        ])
    );
}

#[test]
fn comma_is_cascade_synonym() {
    let a = pref("SELECT * FROM t PREFERRING LOWEST(x), HIGHEST(y);");
    let b = pref("SELECT * FROM t PREFERRING LOWEST(x) CASCADE HIGHEST(y);");
    assert_eq!(a, b);
}

// ------------------------------------------------------------------ §2.2.3/4

#[test]
fn paper_quality_functions_in_select() {
    let q = query(
        "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer \
         PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40;",
    );
    assert_eq!(q.select.len(), 5);
    assert!(matches!(
        &q.select[3],
        SelectItem::Expr {
            expr: Expr::Function { name, .. },
            ..
        } if name == "level"
    ));
}

#[test]
fn paper_but_only_trips() {
    let q = query(
        "SELECT * FROM trips \
         PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
         BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2;",
    );
    assert!(q.but_only.is_some());
    let p = q.preferring.unwrap();
    assert!(matches!(p, PrefExpr::Pareto(ref v) if v.len() == 2));
}

#[test]
fn but_only_without_preferring_rejected() {
    let r = parse_statement("SELECT * FROM t BUT ONLY DISTANCE(x) <= 2;");
    assert!(r.is_err());
}

#[test]
fn grouping_clause() {
    let q = query(
        "SELECT * FROM cars PREFERRING LOWEST(price) GROUPING make BUT ONLY LEVEL(price) <= 2;",
    );
    assert_eq!(q.grouping, vec![Expr::col("make")]);
    assert!(q.but_only.is_some());
}

#[test]
fn grouping_without_preferring_rejected() {
    assert!(parse_statement("SELECT * FROM t GROUPING make;").is_err());
}

// ------------------------------------------------------------------ §4.1

#[test]
fn paper_washing_machine_query() {
    let q = query(
        "SELECT * FROM products WHERE manufacturer = 'Aturi' \
         PREFERRING (width AROUND 60 AND spinspeed AROUND 1200) CASCADE \
         (powerconsumption BETWEEN 0, 0.9 AND LOWEST(waterconsumption) \
         AND price BETWEEN 1500, 2000);",
    );
    let p = q.preferring.unwrap();
    match p {
        PrefExpr::Prioritized(levels) => {
            assert_eq!(levels.len(), 2);
            match &levels[1] {
                PrefExpr::Pareto(parts) => {
                    assert_eq!(parts.len(), 3);
                    assert!(matches!(
                        &parts[0],
                        PrefExpr::Between { low, up, .. }
                        if **low == Expr::lit(0) && **up == Expr::lit(0.9)
                    ));
                }
                other => panic!("expected Pareto, got {other:?}"),
            }
        }
        other => panic!("expected Prioritized, got {other:?}"),
    }
}

// ------------------------------------------------------------------ §3.2

#[test]
fn paper_rewritten_sql_parses() {
    // The hand-written SQL92 output shown in the paper must be parseable by
    // our standard-SQL grammar (it is what our own rewriter emits).
    let stmts = parse_statements(
        "CREATE VIEW Aux AS \
         SELECT *, CASE WHEN Make = 'Audi' THEN 1 ELSE 2 END AS Makelevel, \
         CASE WHEN Diesel = 'yes' THEN 1 ELSE 2 END AS Diesellevel \
         FROM Cars; \
         INSERT INTO Max \
         SELECT Identifier, Make, Model, Price, Mileage, Airbag, Diesel \
         FROM Aux A1 \
         WHERE NOT EXISTS (SELECT 1 FROM Aux A2 \
         WHERE A2.Makelevel <= A1.Makelevel AND \
         A2.Diesellevel <= A1.Diesellevel AND \
         (A2.Makelevel < A1.Makelevel OR \
         A2.Diesellevel < A1.Diesellevel));",
    )
    .unwrap();
    assert_eq!(stmts.len(), 2);
    assert!(matches!(&stmts[0], Statement::CreateView { name, .. } if name == "aux"));
    match &stmts[1] {
        Statement::Insert { table, source, .. } => {
            assert_eq!(table, "max");
            match source {
                InsertSource::Query(q) => {
                    assert!(matches!(
                        q.where_clause,
                        Some(Expr::Exists { negated: true, .. })
                    ));
                }
                other => panic!("expected INSERT..SELECT, got {other:?}"),
            }
        }
        other => panic!("expected INSERT, got {other:?}"),
    }
}

// -------------------------------------------------------- other constructs

#[test]
fn explicit_preference() {
    let p = pref(
        "SELECT * FROM t PREFERRING color EXPLICIT ('red' BETTER 'blue', 'blue' BETTER 'grey');",
    );
    assert_eq!(
        p,
        PrefExpr::Explicit {
            expr: Expr::col("color"),
            edges: vec![
                (Value::str("red"), Value::str("blue")),
                (Value::str("blue"), Value::str("grey")),
            ],
        }
    );
}

#[test]
fn contains_preference() {
    let p = pref("SELECT * FROM docs PREFERRING body CONTAINS ('skyline', 'pareto');");
    assert_eq!(
        p,
        PrefExpr::Contains {
            expr: Expr::col("body"),
            terms: vec!["skyline".into(), "pareto".into()],
        }
    );
    let single = pref("SELECT * FROM docs PREFERRING body CONTAINS 'skyline';");
    assert!(matches!(single, PrefExpr::Contains { terms, .. } if terms.len() == 1));
}

#[test]
fn named_preference_and_pdl() {
    let s = parse_statement("CREATE PREFERENCE cheap AS LOWEST(price);").unwrap();
    assert!(matches!(
        s,
        Statement::CreatePreference { ref name, .. } if name == "cheap"
    ));
    let p = pref("SELECT * FROM cars PREFERRING PREFERENCE cheap;");
    assert_eq!(p, PrefExpr::Named("cheap".into()));
    assert!(matches!(
        parse_statement("DROP PREFERENCE cheap;").unwrap(),
        Statement::DropPreference(ref n) if n == "cheap"
    ));
}

#[test]
fn around_on_arithmetic_expression() {
    // §2.2.1: "instead of a single attribute an arithmetic expression over
    // several attributes ... [is] admissible".
    let p = pref("SELECT * FROM cars PREFERRING (price + tax) AROUND 100;");
    match p {
        PrefExpr::Around { expr, .. } => {
            assert!(matches!(expr, Expr::Binary { .. }));
        }
        other => panic!("expected AROUND, got {other:?}"),
    }
}

#[test]
fn negative_values_in_pos_list() {
    let p = pref("SELECT * FROM t PREFERRING x IN (-5, 3);");
    assert_eq!(
        p,
        PrefExpr::Pos {
            expr: Expr::col("x"),
            values: vec![Value::Int(-5), Value::Int(3)],
        }
    );
}

#[test]
fn else_requires_same_attribute() {
    assert!(parse_statement("SELECT * FROM t PREFERRING a = 'x' ELSE b = 'y';").is_err());
}

#[test]
fn else_requires_pos_shape() {
    assert!(parse_statement("SELECT * FROM t PREFERRING LOWEST(a) ELSE a = 'y';").is_err());
}

// ------------------------------------------------------------ standard SQL

#[test]
fn standard_sql_suite() {
    for sql in [
        "SELECT 1",
        "SELECT DISTINCT make FROM cars",
        "SELECT * FROM a, b WHERE a.x = b.y",
        "SELECT * FROM a JOIN b ON a.x = b.y",
        "SELECT * FROM a CROSS JOIN b",
        "SELECT make, COUNT(*), AVG(price) FROM cars GROUP BY make HAVING COUNT(*) > 2",
        "SELECT * FROM cars ORDER BY price DESC, make ASC LIMIT 10",
        "SELECT * FROM (SELECT * FROM cars WHERE price < 100) c WHERE c.make = 'vw'",
        "SELECT * FROM cars WHERE price BETWEEN 10 AND 20",
        "SELECT * FROM cars WHERE make IN ('audi', 'bmw')",
        "SELECT * FROM cars WHERE make NOT IN (SELECT make FROM banned)",
        "SELECT * FROM cars WHERE EXISTS (SELECT 1 FROM dealers d WHERE d.make = cars.make)",
        "SELECT * FROM cars WHERE make LIKE 'au%'",
        "SELECT * FROM cars WHERE price IS NOT NULL",
        "SELECT CASE WHEN price < 10 THEN 'cheap' ELSE 'pricey' END FROM cars",
        "SELECT CASE make WHEN 'audi' THEN 1 WHEN 'bmw' THEN 2 END FROM cars",
        "SELECT ABS(price - 40000) FROM cars",
        "SELECT (SELECT MAX(price) FROM cars) AS top_price",
        "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
        "INSERT INTO t (x, y) VALUES (1, 2)",
        "INSERT INTO t SELECT * FROM s",
        "CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(40), price FLOAT, ok BOOLEAN, d DATE)",
        "CREATE VIEW v AS SELECT * FROM t",
        "CREATE INDEX i ON t (x, y)",
        "CREATE INDEX i ON t (x) USING hash",
        "DROP TABLE t",
        "DROP VIEW v",
        "DELETE FROM t",
        "DELETE FROM t WHERE x > 3",
        "UPDATE t SET x = 1",
        "UPDATE t SET x = x + 1, y = 'z' WHERE x IS NOT NULL",
        "EXPLAIN SELECT * FROM t",
        "EXPLAIN ANALYZE SELECT * FROM t",
        "EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
        "SELECT * FROM t WHERE d = DATE '1999-07-03'",
        "SELECT -price, +price, 2 * (price + 1) FROM t",
        "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)",
    ] {
        parse_statement(sql).unwrap_or_else(|e| panic!("failed on {sql}: {e}"));
    }
}

#[test]
fn parse_errors_are_reported_with_position() {
    let err = parse_statement("SELECT FROM").unwrap_err();
    assert!(err.to_string().contains("line 1"), "got: {err}");
    assert!(parse_statement("SELECT * FROM").is_err());
    assert!(parse_statement("SELECT * FROM t WHERE").is_err());
    assert!(parse_statement("SELECT * FROM (SELECT 1)").is_err()); // missing alias
    assert!(parse_statement("frobnicate").is_err());
}

#[test]
fn multiple_statements_and_empty_input() {
    let stmts = parse_statements("SELECT 1; SELECT 2;;").unwrap();
    assert_eq!(stmts.len(), 2);
    assert!(parse_statements("").unwrap().is_empty());
    assert!(parse_statements(" ; ; ").unwrap().is_empty());
}

#[test]
fn expression_precedence() {
    let e = parse_expression("1 + 2 * 3").unwrap();
    assert_eq!(
        e,
        Expr::binary(
            Expr::lit(1),
            BinaryOp::Plus,
            Expr::binary(Expr::lit(2), BinaryOp::Mul, Expr::lit(3))
        )
    );
    let e = parse_expression("a = 1 AND b = 2 OR c = 3").unwrap();
    // ((a=1 AND b=2) OR c=3)
    assert!(matches!(
        e,
        Expr::Binary {
            op: BinaryOp::Or,
            ..
        }
    ));
}

// ------------------------------------------------------------- round trips

#[test]
fn display_roundtrip_statements() {
    for sql in [
        "SELECT * FROM trips PREFERRING duration AROUND 14",
        "SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)",
        "SELECT * FROM car WHERE make = 'Opel' \
         PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND \
         price AROUND 40000 AND HIGHEST(power)) \
         CASCADE color = 'red' CASCADE LOWEST(mileage)",
        "SELECT * FROM trips \
         PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
         BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
        "SELECT make, COUNT(*) FROM cars GROUP BY make HAVING COUNT(*) > 2 ORDER BY make",
        "SELECT * FROM (SELECT * FROM cars) c JOIN dealers d ON c.make = d.make",
        "INSERT INTO t (x) SELECT x FROM s PREFERRING LOWEST(x)",
        "CREATE PREFERENCE p AS LOWEST(price) CASCADE color IN ('red')",
        "DELETE FROM t WHERE x BETWEEN 1 AND 2",
        "UPDATE t SET x = x * 2, y = NULL WHERE z LIKE 'a%'",
        "SELECT * FROM docs PREFERRING body CONTAINS ('a', 'b')",
        "SELECT * FROM t PREFERRING color EXPLICIT ('red' BETTER 'blue')",
        "SELECT * FROM cars PREFERRING LOWEST(price) GROUPING make",
        "CREATE MATERIALIZED PREFERENCE VIEW best AS \
         SELECT id FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)",
        "DROP MATERIALIZED VIEW best",
        "REFRESH MATERIALIZED VIEW best",
        "EXPLAIN SELECT * FROM t PREFERRING LOWEST(x)",
        "EXPLAIN ANALYZE SELECT * FROM t PREFERRING LOWEST(x)",
        "EXPLAIN ANALYZE DELETE FROM t WHERE x > 3",
    ] {
        let ast1 = parse_statement(sql).unwrap();
        let printed = ast1.to_string();
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        assert_eq!(
            ast1, ast2,
            "round-trip mismatch for: {sql}\nprinted: {printed}"
        );
    }
}

#[test]
fn materialized_view_statements_parse() {
    // The PREFERENCE keyword is optional noise; both spellings print
    // back canonically and re-parse to the same AST.
    let canonical = "CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT x FROM t PREFERRING LOWEST(x)";
    let short = "CREATE MATERIALIZED VIEW v AS SELECT x FROM t PREFERRING LOWEST(x)";
    let a = parse_statement(canonical).unwrap();
    let b = parse_statement(short).unwrap();
    assert_eq!(a, b);
    match &a {
        Statement::CreateMaterializedView { name, query } => {
            assert_eq!(name, "v");
            assert!(query.preferring.is_some());
        }
        other => panic!("expected CreateMaterializedView, got {other:?}"),
    }
    assert_eq!(a.to_string(), canonical);

    assert_eq!(
        parse_statement("DROP MATERIALIZED VIEW v").unwrap(),
        Statement::DropMaterializedView("v".into())
    );
    assert_eq!(
        parse_statement("REFRESH MATERIALIZED VIEW v").unwrap(),
        Statement::RefreshMaterializedView("v".into())
    );
}

#[test]
fn explain_analyze_sets_the_flag() {
    match parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap() {
        Statement::Explain { analyze, .. } => assert!(analyze),
        other => panic!("expected EXPLAIN, got {other:?}"),
    }
    match parse_statement("EXPLAIN SELECT 1").unwrap() {
        Statement::Explain { analyze, .. } => assert!(!analyze),
        other => panic!("expected EXPLAIN, got {other:?}"),
    }
    assert_eq!(
        parse_statement("EXPLAIN ANALYZE SELECT 1")
            .unwrap()
            .to_string(),
        "EXPLAIN ANALYZE SELECT 1"
    );
}

#[test]
fn string_escaping_roundtrip() {
    let ast1 = parse_statement("SELECT * FROM t WHERE name = 'O''Hara'").unwrap();
    let printed = ast1.to_string();
    let ast2 = parse_statement(&printed).unwrap();
    assert_eq!(ast1, ast2);
}
