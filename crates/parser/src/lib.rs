//! # prefsql-parser
//!
//! A hand-written lexer and recursive-descent parser for the Preference SQL
//! language: SQL92 entry level plus the paper's extensions —
//!
//! * the `PREFERRING` clause with base preference constructors
//!   (`AROUND`, `BETWEEN low, up`, `LOWEST`/`HIGHEST`, `POS`/`NEG` via
//!   `IN`/`=`/`<>`, `ELSE` combinations, `EXPLICIT`, `CONTAINS`),
//! * `AND` (Pareto accumulation) and `CASCADE`/`,` (prioritization),
//! * `GROUPING`, `BUT ONLY`, and the quality functions `TOP`, `LEVEL`,
//!   `DISTANCE`,
//! * a small Preference Definition Language
//!   (`CREATE PREFERENCE name AS ...`).
//!
//! The crate also contains a pretty-printer ([`std::fmt::Display`] impls on
//! the AST) that emits valid SQL — the rewriter uses it to produce the
//! SQL92 text submitted to the host engine, and round-trip property tests
//! (`parse(print(ast)) == ast`) keep the two sides honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    ColumnDef, Expr, InsertSource, OrderByItem, PrefExpr, Query, SelectItem, Statement, TableRef,
};
pub use lexer::Lexer;
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
pub use token::{Keyword, Token, TokenKind};
