//! The lexer: SQL text → token stream with source positions.

use crate::token::{Keyword, Token, TokenKind};
use prefsql_types::{Error, Result};

/// Streaming lexer over SQL source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lex the whole input, appending a final [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // `-- line comment`
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                // `/* block comment */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (l, c) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::Parse(format!(
                                    "unterminated block comment at line {l}, column {c}"
                                )))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_whitespace_and_comments()?;
        let (line, col) = (self.line, self.col);
        let mk = |kind| Ok(Token::new(kind, line, col));
        let Some(c) = self.peek() else {
            return mk(TokenKind::Eof);
        };
        match c {
            b'\'' => {
                // Smart quotes from the paper's PDF are not handled; plain
                // SQL single quotes with '' escaping are.
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            if self.peek() == Some(b'\'') {
                                self.bump();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated string literal at line {line}, column {col}"
                            )))
                        }
                    }
                }
                mk(TokenKind::StringLit(s))
            }
            b'"' => {
                // Delimited identifier.
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(c) => s.push((c as char).to_ascii_lowercase()),
                        None => {
                            return Err(Error::Parse(format!(
                                "unterminated quoted identifier at line {line}, column {col}"
                            )))
                        }
                    }
                }
                mk(TokenKind::Ident(s))
            }
            b'0'..=b'9' => self.lex_number(line, col),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push((c as char).to_ascii_lowercase());
                        self.bump();
                    } else {
                        break;
                    }
                }
                match Keyword::lookup(&s) {
                    Some(k) => mk(TokenKind::Keyword(k)),
                    None => mk(TokenKind::Ident(s)),
                }
            }
            b'=' => {
                self.bump();
                mk(TokenKind::Eq)
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        mk(TokenKind::LtEq)
                    }
                    Some(b'>') => {
                        self.bump();
                        mk(TokenKind::NotEq)
                    }
                    _ => mk(TokenKind::Lt),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    mk(TokenKind::GtEq)
                } else {
                    mk(TokenKind::Gt)
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    mk(TokenKind::NotEq)
                } else {
                    Err(Error::Parse(format!(
                        "unexpected character '!' at line {line}, column {col}"
                    )))
                }
            }
            b'+' => {
                self.bump();
                mk(TokenKind::Plus)
            }
            b'-' => {
                self.bump();
                mk(TokenKind::Minus)
            }
            b'*' => {
                self.bump();
                mk(TokenKind::Star)
            }
            b'/' => {
                self.bump();
                mk(TokenKind::Slash)
            }
            b'(' => {
                self.bump();
                mk(TokenKind::LParen)
            }
            b')' => {
                self.bump();
                mk(TokenKind::RParen)
            }
            b',' => {
                self.bump();
                mk(TokenKind::Comma)
            }
            b'.' => {
                self.bump();
                mk(TokenKind::Dot)
            }
            b';' => {
                self.bump();
                mk(TokenKind::Semicolon)
            }
            other => Err(Error::Parse(format!(
                "unexpected character '{}' at line {line}, column {col}",
                other as char
            ))),
        }
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<Token> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        // Fractional part: only if the dot is followed by a digit, so that
        // `t.col` still lexes as ident-dot-ident.
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c as char);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.pos, self.line, self.col);
            let mut exp = String::from("e");
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                exp.push(self.bump().unwrap() as char);
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        exp.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                s.push_str(&exp);
                is_float = true;
            } else {
                // Not an exponent after all (e.g. `1e` then identifier);
                // rewind.
                self.pos = save.0;
                self.line = save.1;
                self.col = save.2;
            }
        }
        if is_float {
            let v: f64 = s
                .parse()
                .map_err(|_| Error::Parse(format!("bad float literal '{s}' at line {line}")))?;
            Ok(Token::new(TokenKind::FloatLit(v), line, col))
        } else {
            let v: i64 = s
                .parse()
                .map_err(|_| Error::Parse(format!("bad integer literal '{s}' at line {line}")))?;
            Ok(Token::new(TokenKind::IntLit(v), line, col))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_paper_query() {
        let ks = kinds("SELECT * FROM trips PREFERRING duration AROUND 14;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Star,
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("trips".into()),
                TokenKind::Keyword(Keyword::Preferring),
                TokenKind::Ident("duration".into()),
                TokenKind::Keyword(Keyword::Around),
                TokenKind::IntLit(14),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::StringLit("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 0.9 1e3 2E-2 40000"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::FloatLit(2.5),
                TokenKind::FloatLit(0.9),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.02),
                TokenKind::IntLit(40000),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn qualified_column_is_not_a_float() {
        assert_eq!(
            kinds("a1.price"),
            vec![
                TokenKind::Ident("a1".into()),
                TokenKind::Dot,
                TokenKind::Ident("price".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- line comment\n 1 /* block\n comment */ + 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::IntLit(1),
                TokenKind::Plus,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(Lexer::new("/* never ends").tokenize().is_err());
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds("\"Order\""),
            vec![TokenKind::Ident("order".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = Lexer::new("SELECT\n  *").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unexpected_character() {
        let err = Lexer::new("SELECT #").tokenize().unwrap_err();
        assert!(err.to_string().contains("unexpected character '#'"));
    }
}
