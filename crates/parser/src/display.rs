//! SQL pretty-printer: `Display` impls that emit parseable SQL.
//!
//! The rewriter builds standard-SQL ASTs and uses these impls to produce the
//! text submitted to the host engine (mirroring the paper's pre-processor
//! that "forwards the transformed SQL program to the underlying SQL database
//! system"). Round-trip tests (`parse(print(ast)) == ast`) live in the
//! crate's test suite.

use crate::ast::*;
use std::fmt;

fn sql_string_escape(s: &str) -> String {
    s.replace('\'', "''")
}

fn fmt_value(v: &prefsql_types::Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use prefsql_types::Value;
    match v {
        Value::Str(s) => write!(f, "'{}'", sql_string_escape(s)),
        Value::Date(d) => write!(f, "DATE '{d}'"),
        other => write!(f, "{other}"),
    }
}

/// Wrapper rendering a [`prefsql_types::Value`] as a SQL literal
/// (strings quoted and escaped, dates as `DATE '...'`).
struct ValueSql<'a>(&'a prefsql_types::Value);

impl fmt::Display for ValueSql<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_value(self.0, f)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        f.write_str(" VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            f.write_str("(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    f.write_str(", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            f.write_str(")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Query(q) => write!(f, " {q}"),
                }
            }
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", c.name, c.data_type.sql_name())?;
                    if c.not_null {
                        f.write_str(" NOT NULL")?;
                    }
                }
                f.write_str(")")
            }
            Statement::CreateView { name, query } => {
                write!(f, "CREATE VIEW {name} AS {query}")
            }
            Statement::CreateMaterializedView { name, query } => {
                write!(f, "CREATE MATERIALIZED PREFERENCE VIEW {name} AS {query}")
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                hash,
            } => {
                write!(f, "CREATE INDEX {name} ON {table} ({})", columns.join(", "))?;
                if *hash {
                    f.write_str(" USING hash")?;
                }
                Ok(())
            }
            Statement::CreatePreference { name, pref } => {
                write!(f, "CREATE PREFERENCE {name} AS {pref}")
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::DropTable(n) => write!(f, "DROP TABLE {n}"),
            Statement::DropView(n) => write!(f, "DROP VIEW {n}"),
            Statement::DropMaterializedView(n) => {
                write!(f, "DROP MATERIALIZED PREFERENCE VIEW {n}")
            }
            Statement::RefreshMaterializedView(n) => {
                write!(f, "REFRESH MATERIALIZED PREFERENCE VIEW {n}")
            }
            Statement::DropPreference(n) => write!(f, "DROP PREFERENCE {n}"),
            Statement::Explain { analyze, statement } => {
                write!(
                    f,
                    "EXPLAIN {}{statement}",
                    if *analyze { "ANALYZE " } else { "" }
                )
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if let Some(p) = &self.preferring {
            write!(f, " PREFERRING {p}")?;
        }
        if !self.grouping.is_empty() {
            f.write_str(" GROUPING ")?;
            for (i, g) in self.grouping.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(b) = &self.but_only {
            write!(f, " BUT ONLY {b}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if !o.asc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            TableRef::Derived { query, alias } => write!(f, "({query}) {alias}"),
            TableRef::Join { left, right, on } => match on {
                Some(on) => write!(f, "{left} JOIN {right} ON {on}"),
                None => write!(f, "{left} CROSS JOIN {right}"),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{}", ValueSql(v)),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => f.write_str(name),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { left, op, right } => {
                // Parenthesize conservatively: correctness over prettiness.
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => write!(
                f,
                "{expr} {}IN ({query})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                f.write_str("CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

impl fmt::Display for PrefExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, values: &[prefsql_types::Value]) -> fmt::Result {
            f.write_str("(")?;
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", ValueSql(v))?;
            }
            f.write_str(")")
        }
        match self {
            PrefExpr::Around { expr, target } => write!(f, "{expr} AROUND {target}"),
            PrefExpr::Between { expr, low, up } => {
                write!(f, "{expr} BETWEEN {low}, {up}")
            }
            PrefExpr::Lowest { expr } => write!(f, "LOWEST({expr})"),
            PrefExpr::Highest { expr } => write!(f, "HIGHEST({expr})"),
            PrefExpr::Pos { expr, values } => {
                write!(f, "{expr} IN ")?;
                list(f, values)
            }
            PrefExpr::Neg { expr, values } => {
                write!(f, "{expr} NOT IN ")?;
                list(f, values)
            }
            PrefExpr::PosPos {
                expr,
                first,
                second,
            } => {
                write!(f, "{expr} IN ")?;
                list(f, first)?;
                write!(f, " ELSE {expr} IN ")?;
                list(f, second)
            }
            PrefExpr::PosNeg { expr, pos, neg } => {
                write!(f, "{expr} IN ")?;
                list(f, pos)?;
                write!(f, " ELSE {expr} NOT IN ")?;
                list(f, neg)
            }
            PrefExpr::Explicit { expr, edges } => {
                write!(f, "{expr} EXPLICIT (")?;
                for (i, (b, w)) in edges.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} BETTER {}", ValueSql(b), ValueSql(w))?;
                }
                f.write_str(")")
            }
            PrefExpr::Contains { expr, terms } => {
                write!(f, "{expr} CONTAINS (")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "'{}'", sql_string_escape(t))?;
                }
                f.write_str(")")
            }
            PrefExpr::Named(n) => write!(f, "PREFERENCE {n}"),
            PrefExpr::Pareto(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    // Parenthesize nested combinators to keep precedence.
                    match p {
                        PrefExpr::Prioritized(_) | PrefExpr::Pareto(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            PrefExpr::Prioritized(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" CASCADE ")?;
                    }
                    match p {
                        PrefExpr::Prioritized(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
        }
    }
}
