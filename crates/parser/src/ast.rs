//! The abstract syntax tree for SQL + Preference SQL.

use prefsql_types::{DataType, Value};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly preference) query.
    Select(Box<Query>),
    /// `INSERT INTO t [(cols)] VALUES (...), ... | SELECT ...`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `CREATE TABLE t (col type [NOT NULL], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE VIEW v AS SELECT ...`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Box<Query>,
    },
    /// `CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT ... PREFERRING ...`
    /// — a stored, incrementally maintained BMO result (the serving cache
    /// for repeated skyline queries over mostly-stable catalogs).
    CreateMaterializedView {
        /// View name.
        name: String,
        /// Defining preference query.
        query: Box<Query>,
    },
    /// `CREATE [UNIQUE] INDEX i ON t (cols) [USING HASH|BTREE]`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table the index lives on.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// `USING HASH` if true, ordered (B-tree) otherwise.
        hash: bool,
    },
    /// `CREATE PREFERENCE p AS <pref>` — the Preference Definition Language
    /// for persistent preference objects (paper §2.2: "they can be defined
    /// as persistent objects using a Preference Definition Language").
    CreatePreference {
        /// Preference name.
        name: String,
        /// The preference term.
        pref: PrefExpr,
    },
    /// `DELETE FROM t [WHERE cond]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter; `None` deletes everything.
        where_clause: Option<Expr>,
    },
    /// `UPDATE t SET c1 = e1, ... [WHERE cond]`
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Row filter; `None` updates everything.
        where_clause: Option<Expr>,
    },
    /// `DROP TABLE t`
    DropTable(String),
    /// `DROP VIEW v`
    DropView(String),
    /// `DROP MATERIALIZED PREFERENCE VIEW v`
    DropMaterializedView(String),
    /// `REFRESH MATERIALIZED PREFERENCE VIEW v` — rebuild the stored result
    /// from scratch (recovers a view marked stale by a failed maintenance).
    RefreshMaterializedView(String),
    /// `DROP PREFERENCE p`
    DropPreference(String),
    /// `EXPLAIN [ANALYZE] <statement>` — with `ANALYZE` the statement is
    /// actually executed (side effects included) and the plan comes back
    /// annotated with the observed per-operator metrics.
    Explain {
        /// `EXPLAIN ANALYZE`: execute and annotate with observed metrics.
        analyze: bool,
        /// The statement being explained.
        statement: Box<Statement>,
    },
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (..), (..)` — each inner vec is one row of expressions.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO ... SELECT ...` — the paper allows preference queries
    /// as INSERT sub-queries.
    Query(Box<Query>),
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
}

/// A query block: standard SQL plus the Preference SQL clauses
/// (`PREFERRING`, `GROUPING`, `BUT ONLY`), mirroring §2.2.5 of the paper.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// FROM item(s); multiple items form a cross join.
    pub from: Vec<TableRef>,
    /// WHERE condition (hard constraints).
    pub where_clause: Option<Expr>,
    /// PREFERRING term (soft constraints) — the Preference SQL extension.
    pub preferring: Option<PrefExpr>,
    /// GROUPING attribute list (per-group BMO).
    pub grouping: Vec<Expr>,
    /// BUT ONLY quality threshold.
    pub but_only: Option<Expr>,
    /// Standard GROUP BY.
    pub group_by: Vec<Expr>,
    /// HAVING condition.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A FROM item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table or view, optionally aliased.
    Named {
        /// Table/view name.
        name: String,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// A parenthesized derived table `(SELECT ...) alias`.
    Derived {
        /// The sub-query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// `left [INNER] JOIN right ON cond` / `left CROSS JOIN right`.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join condition (`None` for CROSS JOIN).
        on: Option<Expr>,
    },
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub asc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names are self-describing
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Mul,
    Div,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column reference.
    Column {
        /// Table qualifier (`t` in `t.c`), if given.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL if true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN if true.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// NOT IN if true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The sub-query (single output column).
        query: Box<Query>,
        /// NOT IN if true.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)` — the workhorse of the paper's rewrite.
    Exists {
        /// The sub-query.
        query: Box<Query>,
        /// NOT EXISTS if true.
        negated: bool,
    },
    /// Scalar sub-query `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<Query>),
    /// `expr [NOT] LIKE pattern` (`%`/`_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// NOT LIKE if true.
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        /// Simple-CASE operand, if present.
        operand: Option<Box<Expr>>,
        /// `(when, then)` branches.
        branches: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_result: Option<Box<Expr>>,
    },
    /// Function call: scalar (`ABS`, `LOWER`, ...), aggregate (`COUNT`,
    /// `SUM`, ...) or quality function (`TOP`, `LEVEL`, `DISTANCE`).
    Function {
        /// Function name, lower-cased.
        name: String,
        /// Arguments. `COUNT(*)` is represented as `count` with a single
        /// [`Expr::Wildcard`] argument.
        args: Vec<Expr>,
    },
    /// `*` inside `COUNT(*)`.
    Wildcard,
}

impl Expr {
    /// Convenience: unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Convenience: qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: binary operation.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other`, flattening a `None` left side.
    pub fn and_maybe(acc: Option<Expr>, next: Expr) -> Expr {
        match acc {
            None => next,
            Some(a) => Expr::binary(a, BinaryOp::And, next),
        }
    }

    /// True if the expression (sub)tree contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        const AGGS: [&str; 5] = ["count", "sum", "avg", "min", "max"];
        match self {
            Expr::Function { name, args } => {
                AGGS.contains(&name.as_str()) || args.iter().any(Expr::contains_aggregate)
            }
            _ => self.children().iter().any(|c| c.contains_aggregate()),
        }
    }

    /// Immediate child expressions (not descending into sub-queries).
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => vec![],
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => vec![expr],
            Expr::Binary { left, right, .. } => vec![left, right],
            Expr::Between {
                expr, low, high, ..
            } => vec![expr, low, high],
            Expr::InList { expr, list, .. } => {
                let mut v = vec![expr.as_ref()];
                v.extend(list.iter());
                v
            }
            Expr::InSubquery { expr, .. } => vec![expr],
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => vec![],
            Expr::Like { expr, pattern, .. } => vec![expr, pattern],
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                let mut v: Vec<&Expr> = vec![];
                if let Some(o) = operand {
                    v.push(o);
                }
                for (w, t) in branches {
                    v.push(w);
                    v.push(t);
                }
                if let Some(e) = else_result {
                    v.push(e);
                }
                v
            }
            Expr::Function { args, .. } => args.iter().collect(),
        }
    }
}

/// A preference term — the paper's preference algebra (§2.2).
///
/// Base preferences are leaves; [`PrefExpr::Pareto`] (`AND`) and
/// [`PrefExpr::Prioritized`] (`CASCADE`) assemble complex preferences.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefExpr {
    /// `expr AROUND target` — favour values close to `target`.
    Around {
        /// The scored expression (a column or arithmetic over columns).
        expr: Expr,
        /// Target value expression (must fold to a numeric/date constant).
        target: Box<Expr>,
    },
    /// `expr BETWEEN low, up` — favour values inside `[low, up]`, closer to
    /// the violated limit is better outside.
    Between {
        /// The scored expression.
        expr: Expr,
        /// Interval lower bound.
        low: Box<Expr>,
        /// Interval upper bound.
        up: Box<Expr>,
    },
    /// `LOWEST(expr)` — the smaller the better.
    Lowest {
        /// The scored expression.
        expr: Expr,
    },
    /// `HIGHEST(expr)` — the larger the better.
    Highest {
        /// The scored expression.
        expr: Expr,
    },
    /// POS preference: `expr IN (v1, ...)` or `expr = v` — desired values.
    Pos {
        /// The scored expression.
        expr: Expr,
        /// The preferred value set.
        values: Vec<Value>,
    },
    /// NEG preference: `expr NOT IN (v1, ...)` or `expr <> v` — disliked
    /// values.
    Neg {
        /// The scored expression.
        expr: Expr,
        /// The disliked value set.
        values: Vec<Value>,
    },
    /// POS/POS: `expr = a ELSE expr = b` — first choice, second choice,
    /// anything else.
    PosPos {
        /// The scored expression.
        expr: Expr,
        /// First-choice values.
        first: Vec<Value>,
        /// Second-choice values.
        second: Vec<Value>,
    },
    /// POS/NEG: `expr = a ELSE expr <> b` — first choice, then anything but
    /// the disliked set, the disliked set last.
    PosNeg {
        /// The scored expression.
        expr: Expr,
        /// First-choice values.
        pos: Vec<Value>,
        /// Disliked values.
        neg: Vec<Value>,
    },
    /// `expr EXPLICIT ('a' BETTER 'b', ...)` — a finite better-than graph;
    /// the induced SPO is its transitive closure.
    Explicit {
        /// The scored expression.
        expr: Expr,
        /// `(better, worse)` edges.
        edges: Vec<(Value, Value)>,
    },
    /// `expr CONTAINS ('term', ...)` — full-text preference: the more of
    /// the terms occur in the text, the better (paper §2.2.1 / \[LeK99\]).
    Contains {
        /// The text expression.
        expr: Expr,
        /// Search terms.
        terms: Vec<String>,
    },
    /// `PREFERENCE p` — use a named preference created with
    /// `CREATE PREFERENCE`.
    Named(String),
    /// Pareto accumulation (`AND`): equal importance.
    Pareto(Vec<PrefExpr>),
    /// Prioritization (`CASCADE` / `,`): ordered importance.
    Prioritized(Vec<PrefExpr>),
}

impl PrefExpr {
    /// The base preferences of the term, left to right.
    pub fn base_prefs(&self) -> Vec<&PrefExpr> {
        match self {
            PrefExpr::Pareto(ps) | PrefExpr::Prioritized(ps) => {
                ps.iter().flat_map(|p| p.base_prefs()).collect()
            }
            leaf => vec![leaf],
        }
    }

    /// The expression a base preference scores, if it is a base preference.
    pub fn base_expr(&self) -> Option<&Expr> {
        match self {
            PrefExpr::Around { expr, .. }
            | PrefExpr::Between { expr, .. }
            | PrefExpr::Lowest { expr }
            | PrefExpr::Highest { expr }
            | PrefExpr::Pos { expr, .. }
            | PrefExpr::Neg { expr, .. }
            | PrefExpr::PosPos { expr, .. }
            | PrefExpr::PosNeg { expr, .. }
            | PrefExpr::Explicit { expr, .. }
            | PrefExpr::Contains { expr, .. } => Some(expr),
            PrefExpr::Named(_) | PrefExpr::Pareto(_) | PrefExpr::Prioritized(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_maybe_accumulates() {
        let e = Expr::and_maybe(None, Expr::lit(1));
        assert_eq!(e, Expr::lit(1));
        let e2 = Expr::and_maybe(Some(e), Expr::lit(2));
        match e2 {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::And),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::col("x")],
        };
        let wrapped = Expr::binary(Expr::lit(1), BinaryOp::Plus, agg);
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar_fn = Expr::Function {
            name: "abs".into(),
            args: vec![Expr::col("x")],
        };
        assert!(!scalar_fn.contains_aggregate());
    }

    #[test]
    fn base_prefs_flattens_nested_terms() {
        let p = PrefExpr::Prioritized(vec![
            PrefExpr::Pareto(vec![
                PrefExpr::Highest {
                    expr: Expr::col("memory"),
                },
                PrefExpr::Around {
                    expr: Expr::col("price"),
                    target: Box::new(Expr::lit(40_000)),
                },
            ]),
            PrefExpr::Pos {
                expr: Expr::col("color"),
                values: vec![Value::str("red")],
            },
        ]);
        let bases = p.base_prefs();
        assert_eq!(bases.len(), 3);
        assert!(bases[0].base_expr().is_some());
    }
}
