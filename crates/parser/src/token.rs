//! Tokens and keywords of the Preference SQL language.

use std::fmt;

/// All keywords recognized by the lexer. SQL identifiers are
/// case-insensitive, so `select`, `Select` and `SELECT` all lex to
/// [`Keyword::Select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are self-describing keyword names
pub enum Keyword {
    // Standard SQL.
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Insert,
    Into,
    Values,
    Create,
    Drop,
    Table,
    View,
    Index,
    Unique,
    On,
    Using,
    As,
    And,
    Or,
    Not,
    Null,
    True,
    False,
    Is,
    In,
    Between,
    Like,
    Exists,
    Case,
    When,
    Then,
    Else,
    End,
    Join,
    Inner,
    Left,
    Outer,
    Cross,
    Integer,
    Int,
    Float,
    Double,
    Numeric,
    Varchar,
    Text,
    Boolean,
    Date,
    Primary,
    Key,
    Limit,
    Explain,
    Analyze,
    Delete,
    Update,
    Set,
    Union,
    All,
    // Preference SQL extensions (paper §2.2).
    Preferring,
    Grouping,
    But,
    Only,
    Around,
    Lowest,
    Highest,
    Cascade,
    Explicit,
    Better,
    Contains,
    Preference,
    Top,
    Level,
    Distance,
    Materialized,
    Refresh,
}

impl Keyword {
    /// Look up a keyword from an identifier (case-insensitive).
    /// (Named `lookup`, not `from_str`, to avoid `FromStr` confusion —
    /// a miss is an identifier, not an error.)
    pub fn lookup(s: &str) -> Option<Keyword> {
        use Keyword::*;
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            "CREATE" => Create,
            "DROP" => Drop,
            "TABLE" => Table,
            "VIEW" => View,
            "INDEX" => Index,
            "UNIQUE" => Unique,
            "ON" => On,
            "USING" => Using,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "IS" => Is,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "EXISTS" => Exists,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "OUTER" => Outer,
            "CROSS" => Cross,
            "INTEGER" => Integer,
            "INT" => Int,
            "FLOAT" => Float,
            "DOUBLE" => Double,
            "NUMERIC" => Numeric,
            "VARCHAR" => Varchar,
            "TEXT" => Text,
            "BOOLEAN" => Boolean,
            "DATE" => Date,
            "PRIMARY" => Primary,
            "KEY" => Key,
            "LIMIT" => Limit,
            "EXPLAIN" => Explain,
            "ANALYZE" => Analyze,
            "DELETE" => Delete,
            "UPDATE" => Update,
            "SET" => Set,
            "UNION" => Union,
            "ALL" => All,
            "PREFERRING" => Preferring,
            "GROUPING" => Grouping,
            "BUT" => But,
            "ONLY" => Only,
            "AROUND" => Around,
            "LOWEST" => Lowest,
            "HIGHEST" => Highest,
            "CASCADE" => Cascade,
            "EXPLICIT" => Explicit,
            "BETTER" => Better,
            "CONTAINS" => Contains,
            "PREFERENCE" => Preference,
            "TOP" => Top,
            "LEVEL" => Level,
            "DISTANCE" => Distance,
            "MATERIALIZED" => Materialized,
            "REFRESH" => Refresh,
            _ => return None,
        })
    }
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A recognized keyword.
    Keyword(Keyword),
    /// An identifier (lower-cased; SQL identifiers are case-insensitive).
    Ident(String),
    /// A `'...'` string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// An integer literal.
    IntLit(i64),
    /// A float literal.
    FloatLit(f64),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}").map(|()| ()),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::StringLit(s) => write!(f, "string '{s}'"),
            TokenKind::IntLit(v) => write!(f, "integer {v}"),
            TokenKind::FloatLit(v) => write!(f, "float {v}"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::NotEq => f.write_str("'<>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::LtEq => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::GtEq => f.write_str("'>='"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Semicolon => f.write_str("';'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, line: u32, col: u32) -> Self {
        Token { kind, line, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("PREFERRING"), Some(Keyword::Preferring));
        assert_eq!(Keyword::lookup("cascade"), Some(Keyword::Cascade));
        assert_eq!(Keyword::lookup("frobnicate"), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(TokenKind::Eq.to_string(), "'='");
        assert_eq!(
            TokenKind::Ident("cars".into()).to_string(),
            "identifier 'cars'"
        );
    }
}
