//! Recursive-descent parser for SQL + Preference SQL.
//!
//! Operator precedence (loosest to tightest): `OR`, `AND`, `NOT`,
//! comparison/`IS`/`BETWEEN`/`IN`/`LIKE`, `+ -`, `* /`, unary `-`, primary.
//!
//! Preference-term precedence inside `PREFERRING` (loosest to tightest):
//! `CASCADE`/`,` (prioritization), `AND` (Pareto), `ELSE` (POS/POS and
//! POS/NEG combinations), base preference. This ordering is dictated by the
//! paper's examples: in `color = 'white' ELSE color = 'yellow' AND age
//! AROUND 40` the `ELSE` groups the two color conditions and the `AND`
//! Pareto-combines the result with the age preference.

use crate::ast::*;
use crate::lexer::Lexer;
use crate::token::{Keyword, Token, TokenKind};
use prefsql_types::{DataType, Error, Result, Value};

/// Parse a single statement (trailing `;` allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        n => Err(Error::Parse(format!("expected one statement, found {n}"))),
    }
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser::new(tokens);
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.check(&TokenKind::Eof) {
            break;
        }
        out.push(p.statement()?);
        if !p.check(&TokenKind::Eof) && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' or end of input"));
        }
    }
    Ok(out)
}

/// Parse a standalone scalar expression (used in tests and by tools).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

/// Maximum expression/query nesting depth. Recursive-descent parsing uses
/// one stack frame chain per nesting level; bounding it turns pathological
/// inputs (thousands of parentheses) into a clean parse error instead of a
/// stack overflow.
/// 48 levels keeps worst-case stack use (≈8 frames per level, large
/// `Query` temporaries in debug builds) comfortably inside the default
/// 2 MiB thread stack while being far beyond any real query.
const MAX_DEPTH: u32 = 48;

/// The recursive-descent parser.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    /// Create a parser over a token stream (must end with EOF).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::Parse(format!(
                "expression/query nesting deeper than {MAX_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.to_string()))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{kw:?}")))
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        Error::Parse(format!(
            "expected {wanted}, found {} at line {}, column {}",
            t.kind, t.line, t.col
        ))
    }

    /// Identifier, or keyword used as an identifier is *not* allowed.
    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    // ---------------------------------------------------------- statements

    /// Parse one statement.
    pub fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw(Keyword::Explain) {
            let analyze = self.eat_kw(Keyword::Analyze);
            return Ok(Statement::Explain {
                analyze,
                statement: Box::new(self.statement()?),
            });
        }
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => Ok(Statement::Select(Box::new(self.query()?))),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Delete) => self.delete(),
            TokenKind::Keyword(Keyword::Update) => self.update(),
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Drop) => self.drop(),
            TokenKind::Keyword(Keyword::Refresh) => self.refresh(),
            _ => Err(self.unexpected(
                "a statement (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP/REFRESH/EXPLAIN)",
            )),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns =
            if self.check(&TokenKind::LParen) && matches!(self.peek_at(1), TokenKind::Ident(_)) {
                self.expect(&TokenKind::LParen)?;
                let mut cols = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect(&TokenKind::RParen)?;
                Some(cols)
            } else {
                None
            };
        let source = if self.eat_kw(Keyword::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    row.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.query()?))
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = vec![self.column_def()?];
            while self.eat(&TokenKind::Comma) {
                columns.push(self.column_def()?);
            }
            self.expect(&TokenKind::RParen)?;
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_kw(Keyword::View) {
            let name = self.ident()?;
            self.expect_kw(Keyword::As)?;
            let query = Box::new(self.query()?);
            Ok(Statement::CreateView { name, query })
        } else if self.eat_kw(Keyword::Materialized) {
            // `PREFERENCE` is optional: `CREATE MATERIALIZED [PREFERENCE] VIEW`.
            self.eat_kw(Keyword::Preference);
            self.expect_kw(Keyword::View)?;
            let name = self.ident()?;
            self.expect_kw(Keyword::As)?;
            let query = Box::new(self.query()?);
            Ok(Statement::CreateMaterializedView { name, query })
        } else if self.check_kw(Keyword::Index) || self.check_kw(Keyword::Unique) {
            self.eat_kw(Keyword::Unique); // accepted, treated as plain index
            self.expect_kw(Keyword::Index)?;
            let name = self.ident()?;
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                columns.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            let mut hash = false;
            if self.eat_kw(Keyword::Using) {
                let method = self.ident()?;
                match method.as_str() {
                    "hash" => hash = true,
                    "btree" => hash = false,
                    other => {
                        return Err(Error::Parse(format!(
                            "unknown index method '{other}' (expected HASH or BTREE)"
                        )))
                    }
                }
            }
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                hash,
            })
        } else if self.eat_kw(Keyword::Preference) {
            let name = self.ident()?;
            self.expect_kw(Keyword::As)?;
            let pref = self.preference()?;
            Ok(Statement::CreatePreference { name, pref })
        } else {
            Err(self.unexpected("TABLE, VIEW, INDEX or PREFERENCE after CREATE"))
        }
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Drop)?;
        if self.eat_kw(Keyword::Table) {
            Ok(Statement::DropTable(self.ident()?))
        } else if self.eat_kw(Keyword::View) {
            Ok(Statement::DropView(self.ident()?))
        } else if self.eat_kw(Keyword::Materialized) {
            self.eat_kw(Keyword::Preference);
            self.expect_kw(Keyword::View)?;
            Ok(Statement::DropMaterializedView(self.ident()?))
        } else if self.eat_kw(Keyword::Preference) {
            Ok(Statement::DropPreference(self.ident()?))
        } else {
            Err(self.unexpected("TABLE, VIEW, MATERIALIZED VIEW or PREFERENCE after DROP"))
        }
    }

    fn refresh(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Refresh)?;
        self.expect_kw(Keyword::Materialized)?;
        self.eat_kw(Keyword::Preference);
        self.expect_kw(Keyword::View)?;
        Ok(Statement::RefreshMaterializedView(self.ident()?))
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident()?;
        let data_type = self.data_type()?;
        let mut not_null = false;
        loop {
            if self.eat_kw(Keyword::Not) {
                self.expect_kw(Keyword::Null)?;
                not_null = true;
            } else if self.eat_kw(Keyword::Primary) {
                // PRIMARY KEY is accepted and implies NOT NULL; uniqueness
                // enforcement is out of scope for the host engine.
                self.expect_kw(Keyword::Key)?;
                not_null = true;
            } else {
                break;
            }
        }
        Ok(ColumnDef {
            name,
            data_type,
            not_null,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let t = match self.peek() {
            TokenKind::Keyword(Keyword::Integer) | TokenKind::Keyword(Keyword::Int) => {
                DataType::Int
            }
            TokenKind::Keyword(Keyword::Float)
            | TokenKind::Keyword(Keyword::Double)
            | TokenKind::Keyword(Keyword::Numeric) => DataType::Float,
            TokenKind::Keyword(Keyword::Varchar) | TokenKind::Keyword(Keyword::Text) => {
                DataType::Str
            }
            TokenKind::Keyword(Keyword::Boolean) => DataType::Bool,
            TokenKind::Keyword(Keyword::Date) => DataType::Date,
            _ => return Err(self.unexpected("a data type")),
        };
        self.advance();
        // Optional length/precision arguments: VARCHAR(40), NUMERIC(10, 2).
        if self.eat(&TokenKind::LParen) {
            loop {
                match self.advance() {
                    TokenKind::IntLit(_) => {}
                    _ => return Err(self.unexpected("a length/precision integer")),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        // DOUBLE PRECISION.
        if let TokenKind::Ident(s) = self.peek() {
            if s == "precision" {
                self.advance();
            }
        }
        Ok(t)
    }

    // --------------------------------------------------------------- query

    /// Parse a query block (§2.2.5 of the paper):
    /// `SELECT .. FROM .. [WHERE ..] [PREFERRING ..] [GROUPING ..]
    ///  [BUT ONLY ..] [GROUP BY ..] [HAVING ..] [ORDER BY ..] [LIMIT n]`.
    pub fn query(&mut self) -> Result<Query> {
        self.enter()?;
        let r = self.query_inner();
        self.leave();
        r
    }

    fn query_inner(&mut self) -> Result<Query> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut select = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            select.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from.push(self.table_ref()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let preferring = if self.eat_kw(Keyword::Preferring) {
            Some(self.preference()?)
        } else {
            None
        };
        let mut grouping = Vec::new();
        if self.eat_kw(Keyword::Grouping) {
            grouping.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                grouping.push(self.expr()?);
            }
        }
        let but_only = if self.eat_kw(Keyword::But) {
            self.expect_kw(Keyword::Only)?;
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, asc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                TokenKind::IntLit(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.unexpected("a non-negative LIMIT count")),
            }
        } else {
            None
        };
        if grouping.is_empty() && but_only.is_some() && preferring.is_none() {
            return Err(Error::Parse("BUT ONLY requires a PREFERRING clause".into()));
        }
        if !grouping.is_empty() && preferring.is_none() {
            return Err(Error::Parse("GROUPING requires a PREFERRING clause".into()));
        }
        Ok(Query {
            select,
            distinct,
            from,
            where_clause,
            preferring,
            grouping,
            but_only,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (TokenKind::Ident(t), TokenKind::Dot, TokenKind::Star) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let t = t.clone();
            self.advance();
            self.advance();
            self.advance();
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                let right = self.table_primary()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: None,
                };
            } else if self.check_kw(Keyword::Join) || self.check_kw(Keyword::Inner) {
                self.eat_kw(Keyword::Inner);
                self.expect_kw(Keyword::Join)?;
                let right = self.table_primary()?;
                self.expect_kw(Keyword::On)?;
                let on = self.expr()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: Some(on),
                };
            } else {
                return Ok(left);
            }
        }
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.eat(&TokenKind::LParen) {
            let query = Box::new(self.query()?);
            self.expect(&TokenKind::RParen)?;
            self.eat_kw(Keyword::As);
            let alias = self
                .ident()
                .map_err(|_| Error::Parse("a derived table requires an alias".into()))?;
            return Ok(TableRef::Derived { query, alias });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // --------------------------------------------------------- expressions

    /// Parse a scalar expression.
    pub fn expr(&mut self) -> Result<Expr> {
        self.enter()?;
        let r = self.or_expr();
        self.leave();
        r
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            self.enter()?;
            let e = self.not_expr();
            // Normalize `NOT EXISTS (...)` into the negated Exists node the
            // rewriter and planner pattern-match on.
            let e = match e {
                Ok(e) => e,
                Err(err) => {
                    self.leave();
                    return Err(err);
                }
            };
            self.leave();
            if let Expr::Exists { query, negated } = e {
                return Ok(Expr::Exists {
                    query,
                    negated: !negated,
                });
            }
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Comparison operators.
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        // IS [NOT] NULL.
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE.
        let negated = self.eat_kw(Keyword::Not);
        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            if self.check_kw(Keyword::Select) {
                let query = Box::new(self.query()?);
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query,
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("BETWEEN, IN or LIKE after NOT"));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Plus,
                TokenKind::Minus => BinaryOp::Minus,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            self.enter()?;
            let e = self.unary();
            self.leave();
            let e = e?;
            // Fold negation of literals so `-3` is a literal, which the
            // preference value lists rely on.
            if let Expr::Literal(v) = &e {
                if let Ok(n) = v.neg() {
                    return Ok(Expr::Literal(n));
                }
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat(&TokenKind::Plus) {
            self.enter()?;
            let r = self.unary();
            self.leave();
            return r;
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::FloatLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Date) => {
                // DATE 'YYYY-MM-DD' literal.
                self.advance();
                match self.advance() {
                    TokenKind::StringLit(s) => {
                        let d = prefsql_types::Date::parse(&s)?;
                        Ok(Expr::Literal(Value::Date(d)))
                    }
                    _ => Err(self.unexpected("a date string after DATE")),
                }
            }
            TokenKind::Keyword(Keyword::Case) => self.case_expr(),
            TokenKind::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let query = Box::new(self.query()?);
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query,
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Not)
                if matches!(self.peek_at(1), TokenKind::Keyword(Keyword::Exists)) =>
            {
                self.advance();
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let query = Box::new(self.query()?);
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query,
                    negated: true,
                })
            }
            // Quality functions and scalar/aggregate functions share
            // call syntax; some use keyword tokens.
            TokenKind::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Top | Keyword::Level | Keyword::Distance | Keyword::Left
                ) && self.peek_at(1) == &TokenKind::LParen =>
            {
                self.advance();
                let name = format!("{kw:?}").to_ascii_lowercase();
                self.function_call(name)
            }
            TokenKind::LParen => {
                self.advance();
                if self.check_kw(Keyword::Select) {
                    let query = Box::new(self.query()?);
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(query));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.check(&TokenKind::LParen) {
                    return self.function_call(name);
                }
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            if self.eat(&TokenKind::Star) {
                args.push(Expr::Wildcard);
            } else {
                // DISTINCT inside aggregates is not supported; reject early.
                if self.check_kw(Keyword::Distinct) {
                    return Err(Error::Unsupported(format!(
                        "DISTINCT inside {name}() is not supported"
                    )));
                }
                args.push(self.expr()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.expr()?);
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Function { name, args })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.check_kw(Keyword::When) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_result = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }

    // ----------------------------------------------------- preference terms

    /// Parse a preference term (the body of a PREFERRING clause or of
    /// `CREATE PREFERENCE ... AS`).
    pub fn preference(&mut self) -> Result<PrefExpr> {
        self.enter()?;
        let r = self.cascade_pref();
        self.leave();
        r
    }

    fn cascade_pref(&mut self) -> Result<PrefExpr> {
        let mut parts = vec![self.pareto_pref()?];
        loop {
            if self.eat_kw(Keyword::Cascade) {
                parts.push(self.pareto_pref()?);
            } else if self.check(&TokenKind::Comma) && self.starts_preference(1) {
                // ',' is a CASCADE synonym (paper §2.2.2), but only when a
                // preference term actually follows — the comma could belong
                // to an enclosing context otherwise.
                self.advance();
                parts.push(self.pareto_pref()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            PrefExpr::Prioritized(parts)
        })
    }

    /// Heuristic look-ahead: does a preference term start at offset `off`?
    fn starts_preference(&self, off: usize) -> bool {
        matches!(
            self.peek_at(off),
            TokenKind::Keyword(Keyword::Lowest)
                | TokenKind::Keyword(Keyword::Highest)
                | TokenKind::Keyword(Keyword::Preference)
                | TokenKind::Ident(_)
                | TokenKind::LParen
        )
    }

    fn pareto_pref(&mut self) -> Result<PrefExpr> {
        let mut parts = vec![self.else_pref()?];
        while self.eat_kw(Keyword::And) {
            parts.push(self.else_pref()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            PrefExpr::Pareto(parts)
        })
    }

    fn else_pref(&mut self) -> Result<PrefExpr> {
        let first = self.base_pref()?;
        if !self.eat_kw(Keyword::Else) {
            return Ok(first);
        }
        let second = self.base_pref()?;
        // ELSE combines two POS/NEG-shaped base preferences over the same
        // attribute expression into POS/POS or POS/NEG (paper §2.2.1).
        match (first, second) {
            (
                PrefExpr::Pos {
                    expr: e1,
                    values: v1,
                },
                PrefExpr::Pos {
                    expr: e2,
                    values: v2,
                },
            ) => {
                if e1 != e2 {
                    return Err(Error::Parse(
                        "both sides of ELSE must reference the same attribute".into(),
                    ));
                }
                Ok(PrefExpr::PosPos {
                    expr: e1,
                    first: v1,
                    second: v2,
                })
            }
            (
                PrefExpr::Pos {
                    expr: e1,
                    values: v1,
                },
                PrefExpr::Neg {
                    expr: e2,
                    values: v2,
                },
            ) => {
                if e1 != e2 {
                    return Err(Error::Parse(
                        "both sides of ELSE must reference the same attribute".into(),
                    ));
                }
                Ok(PrefExpr::PosNeg {
                    expr: e1,
                    pos: v1,
                    neg: v2,
                })
            }
            _ => Err(Error::Parse(
                "ELSE combines POS with POS or POS with NEG preferences".into(),
            )),
        }
    }

    fn base_pref(&mut self) -> Result<PrefExpr> {
        if self.eat_kw(Keyword::Lowest) {
            self.expect(&TokenKind::LParen)?;
            let expr = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(PrefExpr::Lowest { expr });
        }
        if self.eat_kw(Keyword::Highest) {
            self.expect(&TokenKind::LParen)?;
            let expr = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(PrefExpr::Highest { expr });
        }
        if self.eat_kw(Keyword::Preference) {
            return Ok(PrefExpr::Named(self.ident()?));
        }
        if self.check(&TokenKind::LParen) {
            // Either a grouped preference term `(pref CASCADE pref)` or a
            // parenthesized scalar expression `(price + tax) AROUND 100`.
            // Try the preference reading first and backtrack on failure.
            let save = self.pos;
            self.advance();
            if let Ok(p) = self.preference() {
                if self.eat(&TokenKind::RParen) {
                    return Ok(p);
                }
            }
            self.pos = save;
        }
        // Expression-headed base preference.
        let expr = self.additive()?;
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Around) => {
                self.advance();
                let target = Box::new(self.additive()?);
                Ok(PrefExpr::Around { expr, target })
            }
            TokenKind::Keyword(Keyword::Between) => {
                // Preference BETWEEN uses comma syntax: `BETWEEN low, up`
                // (paper §4.1: `powerconsumption BETWEEN 0, 0.9`). The
                // `BETWEEN low AND up` spelling is also accepted when
                // unambiguous is impossible here (AND means Pareto), so the
                // comma form is required.
                self.advance();
                let low = Box::new(self.additive()?);
                self.expect(&TokenKind::Comma)?;
                let up = Box::new(self.additive()?);
                Ok(PrefExpr::Between { expr, low, up })
            }
            TokenKind::Keyword(Keyword::In) => {
                self.advance();
                let values = self.value_list()?;
                Ok(PrefExpr::Pos { expr, values })
            }
            TokenKind::Keyword(Keyword::Not)
                if matches!(self.peek_at(1), TokenKind::Keyword(Keyword::In)) =>
            {
                self.advance();
                self.advance();
                let values = self.value_list()?;
                Ok(PrefExpr::Neg { expr, values })
            }
            TokenKind::Eq => {
                self.advance();
                let v = self.literal_value()?;
                Ok(PrefExpr::Pos {
                    expr,
                    values: vec![v],
                })
            }
            TokenKind::NotEq => {
                self.advance();
                let v = self.literal_value()?;
                Ok(PrefExpr::Neg {
                    expr,
                    values: vec![v],
                })
            }
            TokenKind::Keyword(Keyword::Explicit) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let mut edges = Vec::new();
                loop {
                    let better = self.literal_value()?;
                    self.expect_kw(Keyword::Better)?;
                    let worse = self.literal_value()?;
                    edges.push((better, worse));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(PrefExpr::Explicit { expr, edges })
            }
            TokenKind::Keyword(Keyword::Contains) => {
                self.advance();
                let mut terms = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    loop {
                        match self.advance() {
                            TokenKind::StringLit(s) => terms.push(s),
                            _ => return Err(self.unexpected("a string search term")),
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                } else {
                    match self.advance() {
                        TokenKind::StringLit(s) => terms.push(s),
                        _ => return Err(self.unexpected("a string search term")),
                    }
                }
                Ok(PrefExpr::Contains { expr, terms })
            }
            _ => Err(self.unexpected(
                "a preference constructor (AROUND, BETWEEN, IN, =, <>, EXPLICIT, CONTAINS)",
            )),
        }
    }

    fn value_list(&mut self) -> Result<Vec<Value>> {
        self.expect(&TokenKind::LParen)?;
        let mut values = vec![self.literal_value()?];
        while self.eat(&TokenKind::Comma) {
            values.push(self.literal_value()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(values)
    }

    fn literal_value(&mut self) -> Result<Value> {
        let negate = self.eat(&TokenKind::Minus);
        let v = match self.advance() {
            TokenKind::IntLit(v) => Value::Int(v),
            TokenKind::FloatLit(v) => Value::Float(v),
            TokenKind::StringLit(s) => Value::Str(s),
            TokenKind::Keyword(Keyword::Null) => Value::Null,
            TokenKind::Keyword(Keyword::True) => Value::Bool(true),
            TokenKind::Keyword(Keyword::False) => Value::Bool(false),
            _ => return Err(self.unexpected("a literal value")),
        };
        if negate {
            v.neg()
        } else {
            Ok(v)
        }
    }
}
