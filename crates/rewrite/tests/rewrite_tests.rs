//! Rewriter integration tests: the emitted SQL must be standard SQL
//! (reparseable, PREFERRING-free) with the paper's level-column +
//! NOT EXISTS shape.

use prefsql_parser::ast::{Expr, PrefExpr, Statement};
use prefsql_parser::parse_statement;
use prefsql_rewrite::{rewrite_statement, PreferenceRegistry, RewriteOutput, Rewriter};

fn rewrite(sql: &str) -> String {
    let stmt = parse_statement(sql).unwrap();
    let reg = PreferenceRegistry::new();
    let (rewritten, _) = rewrite_statement(&stmt, &reg)
        .unwrap()
        .unwrap_or_else(|| panic!("expected a rewrite for: {sql}"));
    rewritten.to_string()
}

fn assert_standard_sql(sql: &str) {
    let stmt =
        parse_statement(sql).unwrap_or_else(|e| panic!("emitted SQL unparseable: {e}\n{sql}"));
    fn check_query(q: &prefsql_parser::ast::Query) {
        assert!(q.preferring.is_none(), "PREFERRING survived the rewrite");
        assert!(q.grouping.is_empty(), "GROUPING survived the rewrite");
        assert!(q.but_only.is_none(), "BUT ONLY survived the rewrite");
    }
    if let Statement::Select(q) = &stmt {
        check_query(q);
    }
}

#[test]
fn paper_cars_example_shape() {
    // §3.2: PREFERRING Make = 'Audi' AND Diesel = 'yes'.
    let out = rewrite("SELECT * FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'");
    assert_standard_sql(&out);
    // Level columns via CASE (the Makelevel/Diesellevel construction).
    assert!(out.contains("CASE WHEN make IS NULL THEN NULL WHEN make IN ('Audi') THEN 1 ELSE 2 END AS prefsql_p0"), "{out}");
    assert!(out.contains("AS prefsql_p1"), "{out}");
    // NOT EXISTS dominance with <= / < comparisons between a2 and a1.
    assert!(out.contains("NOT EXISTS"), "{out}");
    assert!(
        out.contains("prefsql_a2.prefsql_p0 < prefsql_a1.prefsql_p0"),
        "{out}"
    );
    assert!(
        out.contains("prefsql_a2.prefsql_p1 < prefsql_a1.prefsql_p1"),
        "{out}"
    );
}

#[test]
fn around_rewrite_uses_abs() {
    let out = rewrite("SELECT * FROM trips PREFERRING duration AROUND 14");
    assert_standard_sql(&out);
    assert!(out.contains("abs((duration - 14)) AS prefsql_p0"), "{out}");
}

#[test]
fn single_preference_has_no_pareto_noise() {
    let out = rewrite("SELECT * FROM apartments PREFERRING HIGHEST(area)");
    assert_standard_sql(&out);
    // Single base pref: dominance is one strict comparison.
    assert!(
        out.contains("prefsql_a2.prefsql_p0 < prefsql_a1.prefsql_p0"),
        "{out}"
    );
    assert!(!out.contains("prefsql_p1"), "{out}");
}

#[test]
fn cascade_rewrite_is_lexicographic() {
    let out = rewrite(
        "SELECT * FROM computers PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown')",
    );
    assert_standard_sql(&out);
    // b0 OR (e0 AND b1): strictly better memory, or equal memory and better color.
    assert!(
        out.contains("prefsql_a2.prefsql_p0 < prefsql_a1.prefsql_p0"),
        "{out}"
    );
    assert!(
        out.contains("prefsql_a2.prefsql_p0 = prefsql_a1.prefsql_p0"),
        "{out}"
    );
    assert!(
        out.contains("prefsql_a2.prefsql_p1 < prefsql_a1.prefsql_p1"),
        "{out}"
    );
}

#[test]
fn opel_flagship_query_rewrites() {
    let out = rewrite(
        "SELECT * FROM car WHERE make = 'Opel' \
         PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND \
         price AROUND 40000 AND HIGHEST(power)) \
         CASCADE color = 'red' CASCADE LOWEST(mileage)",
    );
    assert_standard_sql(&out);
    // Five level columns.
    for i in 0..5 {
        assert!(
            out.contains(&format!("prefsql_p{i}")),
            "missing p{i}: {out}"
        );
    }
    // Hard WHERE stays inside the aux relation.
    assert!(out.contains("WHERE (make = 'Opel')"), "{out}");
}

#[test]
fn quality_functions_in_select_translate() {
    let out = rewrite(
        "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer \
         PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40",
    );
    assert_standard_sql(&out);
    // LEVEL(color) is the POS/POS level column; DISTANCE(age) the ABS column.
    assert!(
        out.contains("prefsql_a1.prefsql_p0 AS level_color"),
        "{out}"
    );
    assert!(
        out.contains("prefsql_a1.prefsql_p1 AS distance_age"),
        "{out}"
    );
}

#[test]
fn but_only_thresholds_filter_both_sides() {
    let out = rewrite(
        "SELECT * FROM trips \
         PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
         BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
    );
    assert_standard_sql(&out);
    // The threshold appears for a1 (outer) and a2 (inner competitors).
    assert!(out.contains("prefsql_a1.prefsql_p0 <= 2"), "{out}");
    assert!(out.contains("prefsql_a2.prefsql_p0 <= 2"), "{out}");
    // Date target folded to a DATE literal.
    assert!(out.contains("DATE '1999-07-03'"), "{out}");
}

#[test]
fn grouping_adds_equality_conjuncts() {
    let out = rewrite("SELECT * FROM cars PREFERRING LOWEST(price) GROUPING make");
    assert_standard_sql(&out);
    assert!(out.contains("make AS prefsql_g0"), "{out}");
    assert!(
        out.contains("prefsql_a2.prefsql_g0 = prefsql_a1.prefsql_g0"),
        "{out}"
    );
    // NULL group keys compare equal.
    assert!(
        out.contains("prefsql_a2.prefsql_g0 IS NULL AND prefsql_a1.prefsql_g0 IS NULL"),
        "{out}"
    );
}

#[test]
fn explicit_preference_enumerates_closure() {
    let out = rewrite(
        "SELECT * FROM t PREFERRING color EXPLICIT ('red' BETTER 'blue', 'blue' BETTER 'grey')",
    );
    assert_standard_sql(&out);
    // Transitive pair red > grey is materialized.
    assert!(
        out.contains("(prefsql_a2.prefsql_p0 = 'red') AND (prefsql_a1.prefsql_p0 = 'grey')"),
        "{out}"
    );
    assert!(
        out.contains("= 'blue') AND (prefsql_a1.prefsql_p0 = 'grey')"),
        "{out}"
    );
}

#[test]
fn lowest_distance_uses_min_subquery() {
    let out = rewrite(
        "SELECT DISTANCE(price) FROM cars PREFERRING LOWEST(price) BUT ONLY DISTANCE(price) <= 500",
    );
    assert_standard_sql(&out);
    assert!(out.contains("SELECT min(prefsql_a3.prefsql_p0)"), "{out}");
}

#[test]
fn order_by_and_where_requalify() {
    let out = rewrite(
        "SELECT c.ident FROM cars c WHERE c.price > 10 PREFERRING LOWEST(c.mileage) \
         ORDER BY c.ident DESC",
    );
    assert_standard_sql(&out);
    // The original alias c is re-qualified to prefsql_a1 outside the aux.
    assert!(out.contains("SELECT prefsql_a1.ident"), "{out}");
    assert!(out.contains("ORDER BY prefsql_a1.ident DESC"), "{out}");
    // Inside the aux the original WHERE keeps its alias.
    assert!(out.contains("(c.price > 10)"), "{out}");
}

#[test]
fn insert_select_preferring_rewrites() {
    let out = {
        let stmt = parse_statement("INSERT INTO best SELECT * FROM cars PREFERRING LOWEST(price)")
            .unwrap();
        let reg = PreferenceRegistry::new();
        let (rewritten, _) = rewrite_statement(&stmt, &reg).unwrap().unwrap();
        rewritten.to_string()
    };
    assert!(out.starts_with("INSERT INTO best"), "{out}");
    assert!(out.contains("NOT EXISTS"), "{out}");
    assert!(!out.contains("PREFERRING"), "{out}");
}

#[test]
fn preference_query_in_from_derived_table() {
    let out = rewrite(
        "SELECT d.make FROM (SELECT * FROM cars PREFERRING LOWEST(price)) d WHERE d.make <> 'vw'",
    );
    assert_standard_sql(&out);
    assert!(out.contains("NOT EXISTS"), "{out}");
}

#[test]
fn passthrough_for_standard_sql() {
    for sql in [
        "SELECT * FROM cars WHERE price > 10 ORDER BY price",
        "INSERT INTO t VALUES (1)",
        "CREATE TABLE t (x INTEGER)",
        "SELECT make, COUNT(*) FROM cars GROUP BY make",
    ] {
        let stmt = parse_statement(sql).unwrap();
        let reg = PreferenceRegistry::new();
        assert!(
            rewrite_statement(&stmt, &reg).unwrap().is_none(),
            "should pass through: {sql}"
        );
    }
}

#[test]
fn where_subquery_preferring_rejected() {
    let stmt = parse_statement(
        "SELECT * FROM cars WHERE price IN \
         (SELECT price FROM cars PREFERRING LOWEST(price))",
    )
    .unwrap();
    let reg = PreferenceRegistry::new();
    let err = rewrite_statement(&stmt, &reg).unwrap_err();
    assert!(err.to_string().contains("WHERE clause"), "{err}");
}

#[test]
fn quality_function_without_matching_base_rejected() {
    let stmt = parse_statement("SELECT LEVEL(color) FROM cars PREFERRING LOWEST(price)").unwrap();
    let reg = PreferenceRegistry::new();
    let err = rewrite_statement(&stmt, &reg).unwrap_err();
    assert!(
        err.to_string()
            .contains("does not match any base preference"),
        "{err}"
    );
}

#[test]
fn stateful_rewriter_handles_preference_ddl() {
    let mut rw = Rewriter::new();
    let create = parse_statement("CREATE PREFERENCE cheap AS LOWEST(price)").unwrap();
    assert!(matches!(
        rw.process(&create).unwrap(),
        RewriteOutput::Handled(_)
    ));
    // Using the named preference.
    let q = parse_statement("SELECT * FROM cars PREFERRING PREFERENCE cheap").unwrap();
    match rw.process(&q).unwrap() {
        RewriteOutput::Rewritten { sql, compiled, .. } => {
            assert!(sql.contains("NOT EXISTS"), "{sql}");
            let c = compiled.unwrap();
            assert_eq!(c.preference.arity(), 1);
            assert_eq!(c.base_exprs[0], Expr::col("price"));
        }
        other => panic!("expected rewrite, got {other:?}"),
    }
    // Unknown named preference fails.
    let bad = parse_statement("SELECT * FROM cars PREFERRING PREFERENCE nope").unwrap();
    assert!(rw.process(&bad).is_err());
    // Drop and confirm.
    let drop = parse_statement("DROP PREFERENCE cheap").unwrap();
    assert!(matches!(
        rw.process(&drop).unwrap(),
        RewriteOutput::Handled(_)
    ));
    assert!(rw.process(&q).is_err());
}

#[test]
fn named_preferences_compose_in_queries() {
    let mut rw = Rewriter::new();
    rw.process(&parse_statement("CREATE PREFERENCE cheap AS LOWEST(price)").unwrap())
        .unwrap();
    rw.process(&parse_statement("CREATE PREFERENCE nearby AS distance_km AROUND 0").unwrap())
        .unwrap();
    let q =
        parse_statement("SELECT * FROM hotels PREFERRING PREFERENCE cheap AND PREFERENCE nearby")
            .unwrap();
    match rw.process(&q).unwrap() {
        RewriteOutput::Rewritten { compiled, .. } => {
            assert_eq!(compiled.unwrap().preference.arity(), 2);
        }
        other => panic!("expected rewrite, got {other:?}"),
    }
}

#[test]
fn rewritten_sql_reparses_to_identical_ast() {
    for sql in [
        "SELECT * FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'",
        "SELECT ident, LEVEL(color) FROM oldtimer \
         PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40",
        "SELECT * FROM trips PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
         BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
        "SELECT * FROM cars PREFERRING LOWEST(price) GROUPING make",
        "SELECT * FROM docs PREFERRING body CONTAINS ('skyline', 'pareto')",
    ] {
        let out = rewrite(sql);
        let ast1 = parse_statement(&out).unwrap();
        let ast2 = parse_statement(&ast1.to_string()).unwrap();
        assert_eq!(ast1, ast2, "printing is a fixed point for: {sql}");
    }
}

#[test]
fn pareto_of_three_needs_strict_somewhere() {
    let out = rewrite("SELECT * FROM t PREFERRING LOWEST(a) AND LOWEST(b) AND LOWEST(c)");
    assert_standard_sql(&out);
    // The "strictly better in at least one" disjunction must be present —
    // count the strict comparisons (3 in the all-<= part is wrong; the
    // emitted form has <= expressed as (b OR e), i.e. `<` and `=` pairs).
    let strict = out.matches("prefsql_p0 < ").count()
        + out.matches("prefsql_p1 < ").count()
        + out.matches("prefsql_p2 < ").count();
    assert!(strict >= 3, "{out}");
}

#[test]
fn contains_preference_rewrites_to_like_sum() {
    let out = rewrite("SELECT * FROM docs PREFERRING body CONTAINS ('skyline', 'pareto')");
    assert_standard_sql(&out);
    assert!(out.contains("LIKE '%skyline%'"), "{out}");
    assert!(out.contains("LIKE '%pareto%'"), "{out}");
}

#[test]
fn create_view_with_preferring_rewrites_body() {
    let stmt =
        parse_statement("CREATE VIEW best_cars AS SELECT * FROM cars PREFERRING LOWEST(price)")
            .unwrap();
    let reg = PreferenceRegistry::new();
    let (rewritten, _) = rewrite_statement(&stmt, &reg).unwrap().unwrap();
    let out = rewritten.to_string();
    assert!(out.starts_with("CREATE VIEW best_cars"), "{out}");
    assert!(out.contains("NOT EXISTS"), "{out}");
}

#[test]
fn compiled_preference_exposed_for_introspection() {
    let stmt =
        parse_statement("SELECT * FROM cars PREFERRING LOWEST(price) AND HIGHEST(power)").unwrap();
    let reg = PreferenceRegistry::new();
    let (_, compiled) = rewrite_statement(&stmt, &reg).unwrap().unwrap();
    let c = compiled.unwrap();
    assert_eq!(c.preference.arity(), 2);
    assert!(matches!(
        c.preference.root(),
        prefsql_pref::PrefNode::Pareto(_)
    ));
}

#[test]
fn cycle_in_explicit_graph_rejected_at_rewrite() {
    let stmt =
        parse_statement("SELECT * FROM t PREFERRING c EXPLICIT ('a' BETTER 'b', 'b' BETTER 'a')")
            .unwrap();
    let reg = PreferenceRegistry::new();
    let err = rewrite_statement(&stmt, &reg).unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");
}

#[test]
fn top_quality_function_translations() {
    let out = rewrite(
        "SELECT TOP(duration), TOP(exp) FROM t \
         PREFERRING duration AROUND 14 AND exp IN ('java')",
    );
    assert_standard_sql(&out);
    assert!(out.contains("prefsql_a1.prefsql_p0 = 0"), "{out}"); // numeric: distance 0
    assert!(out.contains("prefsql_a1.prefsql_p1 = 1"), "{out}"); // categorical: level 1
}

#[test]
fn leftover_pref_ast_helpers() {
    // PrefExpr helper coverage: base_prefs on a plain leaf.
    let leaf = PrefExpr::Lowest {
        expr: Expr::col("x"),
    };
    assert_eq!(leaf.base_prefs().len(), 1);
}
