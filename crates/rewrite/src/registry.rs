//! Persistent named preferences — the Preference Definition Language
//! (paper §2.2: "they can be defined as persistent objects using a
//! Preference Definition Language").

use prefsql_parser::ast::PrefExpr;
use prefsql_types::{Error, Result};
use std::collections::HashMap;

/// Stores `CREATE PREFERENCE` objects and resolves [`PrefExpr::Named`]
/// references, including references between named preferences.
#[derive(Debug, Default, Clone)]
pub struct PreferenceRegistry {
    prefs: HashMap<String, PrefExpr>,
}

impl PreferenceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PreferenceRegistry::default()
    }

    /// Register a named preference (`CREATE PREFERENCE name AS pref`).
    /// The definition may reference other named preferences, but must
    /// resolve acyclically at creation time.
    pub fn create(&mut self, name: impl Into<String>, pref: PrefExpr) -> Result<()> {
        let name = name.into().to_ascii_lowercase();
        if self.prefs.contains_key(&name) {
            return Err(Error::Catalog(format!(
                "preference '{name}' already exists"
            )));
        }
        // Validate resolvability (and acyclicity) before storing.
        let mut trail = vec![name.clone()];
        self.resolve_with_trail(&pref, &mut trail)?;
        self.prefs.insert(name, pref);
        Ok(())
    }

    /// Drop a named preference.
    pub fn drop(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.prefs
            .remove(&name)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("unknown preference '{name}'")))
    }

    /// Look up a named preference's definition.
    pub fn get(&self, name: &str) -> Option<&PrefExpr> {
        self.prefs.get(&name.to_ascii_lowercase())
    }

    /// All names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut n: Vec<String> = self.prefs.keys().cloned().collect();
        n.sort_unstable();
        n
    }

    /// Replace every [`PrefExpr::Named`] node by its stored definition,
    /// recursively.
    pub fn resolve(&self, pref: &PrefExpr) -> Result<PrefExpr> {
        let mut trail = Vec::new();
        self.resolve_with_trail(pref, &mut trail)
    }

    fn resolve_with_trail(&self, pref: &PrefExpr, trail: &mut Vec<String>) -> Result<PrefExpr> {
        match pref {
            PrefExpr::Named(name) => {
                let lname = name.to_ascii_lowercase();
                if trail.contains(&lname) {
                    return Err(Error::Plan(format!(
                        "named preference cycle involving '{lname}'"
                    )));
                }
                let def = self
                    .prefs
                    .get(&lname)
                    .ok_or_else(|| Error::Catalog(format!("unknown preference '{lname}'")))?;
                trail.push(lname);
                let resolved = self.resolve_with_trail(def, trail)?;
                trail.pop();
                Ok(resolved)
            }
            PrefExpr::Pareto(parts) => Ok(PrefExpr::Pareto(
                parts
                    .iter()
                    .map(|p| self.resolve_with_trail(p, trail))
                    .collect::<Result<_>>()?,
            )),
            PrefExpr::Prioritized(parts) => Ok(PrefExpr::Prioritized(
                parts
                    .iter()
                    .map(|p| self.resolve_with_trail(p, trail))
                    .collect::<Result<_>>()?,
            )),
            leaf => Ok(leaf.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::ast::Expr;

    fn lowest(col: &str) -> PrefExpr {
        PrefExpr::Lowest {
            expr: Expr::col(col),
        }
    }

    #[test]
    fn create_and_resolve() {
        let mut r = PreferenceRegistry::new();
        r.create("cheap", lowest("price")).unwrap();
        let resolved = r.resolve(&PrefExpr::Named("CHEAP".into())).unwrap();
        assert_eq!(resolved, lowest("price"));
    }

    #[test]
    fn nested_named_references() {
        let mut r = PreferenceRegistry::new();
        r.create("cheap", lowest("price")).unwrap();
        r.create(
            "combo",
            PrefExpr::Pareto(vec![PrefExpr::Named("cheap".into()), lowest("mileage")]),
        )
        .unwrap();
        let resolved = r.resolve(&PrefExpr::Named("combo".into())).unwrap();
        assert_eq!(
            resolved,
            PrefExpr::Pareto(vec![lowest("price"), lowest("mileage")])
        );
    }

    #[test]
    fn unknown_and_duplicate() {
        let mut r = PreferenceRegistry::new();
        assert!(r.resolve(&PrefExpr::Named("nope".into())).is_err());
        r.create("p", lowest("x")).unwrap();
        assert!(r.create("p", lowest("y")).is_err());
        // Definitions referencing unknown preferences are rejected eagerly.
        assert!(r.create("q", PrefExpr::Named("missing".into())).is_err());
    }

    #[test]
    fn drop_preference() {
        let mut r = PreferenceRegistry::new();
        r.create("p", lowest("x")).unwrap();
        assert_eq!(r.names(), vec!["p".to_string()]);
        r.drop("P").unwrap();
        assert!(r.drop("p").is_err());
        assert!(r.names().is_empty());
    }

    #[test]
    fn self_reference_rejected() {
        let mut r = PreferenceRegistry::new();
        // Can't be created (validated eagerly), so simulate resolution of a
        // self-referential term directly.
        let err = r.create("selfy", PrefExpr::Named("selfy".into()));
        // 'selfy' is unknown at creation *and* cyclic; either error is fine
        // as long as creation fails.
        assert!(err.is_err());
    }
}
