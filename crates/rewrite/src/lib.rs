//! # prefsql-rewrite
//!
//! The **Preference SQL optimizer** (paper §3.2): translates preference
//! queries into SQL92-entry-level standard SQL, "piggybacking on the power
//! of the host SQL system".
//!
//! The rewrite of `SELECT s FROM f WHERE w PREFERRING P [GROUPING g]
//! [BUT ONLY b] [ORDER BY o]` is a single self-contained query:
//!
//! ```sql
//! SELECT s' FROM (SELECT *, <level exprs> FROM f WHERE w) prefsql_a1
//! WHERE b'(prefsql_a1)
//!   AND NOT EXISTS (
//!     SELECT 1 FROM (SELECT *, <level exprs> FROM f WHERE w) prefsql_a2
//!     WHERE b'(prefsql_a2)
//!       AND <grouping equality>
//!       AND <prefsql_a2 dominates prefsql_a1>)
//! ORDER BY o'
//! ```
//!
//! where each base preference contributes one computed *level/distance
//! column* (`CASE`/`ABS` arithmetic, exactly the paper's `Makelevel` /
//! `Diesellevel` construction), dominance is composed structurally from the
//! Pareto/prioritization tree, and the quality functions `TOP`, `LEVEL`,
//! `DISTANCE` in the select list or `BUT ONLY` clause are substituted by
//! expressions over the level columns.
//!
//! Non-preference statements pass through untouched (§3.1: "queries without
//! preferences are just passed through ... without causing any noticeable
//! overhead").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod levels;
pub mod registry;
pub mod rewriter;

pub use compile::{compile_preference, CompiledPreference};
pub use registry::PreferenceRegistry;
pub use rewriter::{rewrite_query, rewrite_statement, RewriteOutput, Rewriter};
