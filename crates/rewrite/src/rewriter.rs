//! The statement-level rewriter: preference queries in, standard SQL out.

use crate::compile::{compile_preference, CompiledPreference};
use crate::levels::{
    and_all, both_null, dominance_condition, grouping_column_name, level_column_expr,
    level_column_name, or, quality_expr, GEN_PREFIX,
};
use crate::registry::PreferenceRegistry;
use prefsql_parser::ast::{
    BinaryOp, Expr, InsertSource, OrderByItem, Query, SelectItem, Statement, TableRef,
};
use prefsql_types::{Error, Result};
use std::collections::HashSet;

/// Alias of the outer auxiliary relation in the rewritten query.
pub const A1: &str = "prefsql_a1";
/// Alias of the inner (NOT EXISTS) auxiliary relation.
pub const A2: &str = "prefsql_a2";

/// What the rewriter did with a statement.
#[derive(Debug, Clone)]
pub enum RewriteOutput {
    /// No preference constructs anywhere — forward the original statement
    /// unchanged (§3.1 pass-through).
    Passthrough,
    /// Preference constructs were rewritten into standard SQL.
    Rewritten {
        /// The rewritten, PREFERRING-free statement.
        statement: Box<Statement>,
        /// Its SQL text (what a wire-level pre-processor would forward).
        sql: String,
        /// The compiled top-level preference, for introspection.
        compiled: Option<CompiledPreference>,
    },
    /// Preference DDL consumed by the registry (CREATE/DROP PREFERENCE).
    Handled(String),
}

/// A stateful rewriter holding the named-preference registry.
#[derive(Debug, Default)]
pub struct Rewriter {
    registry: PreferenceRegistry,
}

impl Rewriter {
    /// A rewriter with an empty registry.
    pub fn new() -> Self {
        Rewriter::default()
    }

    /// The named-preference registry.
    pub fn registry(&self) -> &PreferenceRegistry {
        &self.registry
    }

    /// Process one statement: consume preference DDL, rewrite preference
    /// queries, pass everything else through.
    pub fn process(&mut self, stmt: &Statement) -> Result<RewriteOutput> {
        match stmt {
            Statement::CreatePreference { name, pref } => {
                self.registry.create(name.clone(), pref.clone())?;
                Ok(RewriteOutput::Handled(format!("created preference {name}")))
            }
            Statement::DropPreference(name) => {
                self.registry.drop(name)?;
                Ok(RewriteOutput::Handled(format!("dropped preference {name}")))
            }
            other => match rewrite_statement(other, &self.registry)? {
                None => Ok(RewriteOutput::Passthrough),
                Some((statement, compiled)) => {
                    let sql = statement.to_string();
                    Ok(RewriteOutput::Rewritten {
                        statement: Box::new(statement),
                        sql,
                        compiled,
                    })
                }
            },
        }
    }
}

/// Rewrite a statement if it contains preference constructs anywhere
/// (top level, INSERT source, view body, or FROM-level derived tables).
/// Returns `None` when the statement is preference-free.
pub fn rewrite_statement(
    stmt: &Statement,
    registry: &PreferenceRegistry,
) -> Result<Option<(Statement, Option<CompiledPreference>)>> {
    match stmt {
        Statement::Select(q) => {
            let (rewritten, compiled, changed) = rewrite_query_rec(q, registry)?;
            Ok(changed.then(|| (Statement::Select(Box::new(rewritten)), compiled)))
        }
        Statement::Insert {
            table,
            columns,
            source: InsertSource::Query(q),
        } => {
            let (rewritten, compiled, changed) = rewrite_query_rec(q, registry)?;
            Ok(changed.then(|| {
                (
                    Statement::Insert {
                        table: table.clone(),
                        columns: columns.clone(),
                        source: InsertSource::Query(Box::new(rewritten)),
                    },
                    compiled,
                )
            }))
        }
        Statement::CreateView { name, query } => {
            let (rewritten, compiled, changed) = rewrite_query_rec(query, registry)?;
            Ok(changed.then(|| {
                (
                    Statement::CreateView {
                        name: name.clone(),
                        query: Box::new(rewritten),
                    },
                    compiled,
                )
            }))
        }
        Statement::Explain { analyze, statement } => {
            let r = rewrite_statement(statement, registry)?;
            Ok(r.map(|(s, c)| {
                (
                    Statement::Explain {
                        analyze: *analyze,
                        statement: Box::new(s),
                    },
                    c,
                )
            }))
        }
        _ => Ok(None),
    }
}

/// Rewrite a single query block with a PREFERRING clause. Errors if the
/// query has none.
///
/// ```
/// use prefsql_parser::{parse_statement, Statement};
/// use prefsql_rewrite::{rewrite_query, PreferenceRegistry};
///
/// let stmt = parse_statement("SELECT * FROM trips PREFERRING duration AROUND 14").unwrap();
/// let Statement::Select(q) = stmt else { unreachable!() };
/// let (rewritten, compiled) = rewrite_query(&q, &PreferenceRegistry::new()).unwrap();
/// let sql = rewritten.to_string();
/// assert!(sql.contains("abs((duration - 14)) AS prefsql_p0"));
/// assert!(sql.contains("NOT EXISTS"));
/// assert_eq!(compiled.preference.arity(), 1);
/// ```
pub fn rewrite_query(
    query: &Query,
    registry: &PreferenceRegistry,
) -> Result<(Query, CompiledPreference)> {
    let (q, compiled, _) = rewrite_query_rec(query, registry)?;
    match compiled {
        Some(c) => Ok((q, c)),
        None => Err(Error::Rewrite(
            "query has no PREFERRING clause to rewrite".into(),
        )),
    }
}

/// Recursive rewrite: handles preference queries inside FROM derived
/// tables, enforces the documented restriction that WHERE sub-queries may
/// not contain PREFERRING, and rewrites the top level if needed.
/// Returns `(query, top_level_compiled, changed)`.
fn rewrite_query_rec(
    query: &Query,
    registry: &PreferenceRegistry,
) -> Result<(Query, Option<CompiledPreference>, bool)> {
    // Restriction (paper §2.2.5): "sub-queries in the WHERE clause may not
    // contain PREFERRING clauses".
    for e in [&query.where_clause, &query.having, &query.but_only]
        .into_iter()
        .flatten()
    {
        check_no_preferring_in_expr_subqueries(e)?;
    }

    let mut q = query.clone();
    let mut changed = false;

    // FROM-level derived tables may themselves be preference queries.
    let mut new_from = Vec::with_capacity(q.from.len());
    for item in &q.from {
        let (item, c) = rewrite_table_ref(item, registry)?;
        changed |= c;
        new_from.push(item);
    }
    q.from = new_from;

    let Some(pref_ast) = q.preferring.clone() else {
        return Ok((q, None, changed));
    };

    // ---- the heart of the rewrite (paper §3.2) ----
    let resolved = registry.resolve(&pref_ast)?;
    let compiled = compile_preference(&resolved)?;
    let leaves: Vec<_> = resolved.base_prefs().into_iter().cloned().collect();
    debug_assert_eq!(leaves.len(), compiled.preference.arity());

    let from_aliases = collect_aliases(&q.from);

    // Auxiliary relation: original FROM/WHERE plus one level column per
    // base preference and one column per GROUPING expression.
    let mut aux_select: Vec<SelectItem> = vec![SelectItem::Wildcard];
    for (i, leaf) in leaves.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: level_column_expr(leaf)?,
            alias: Some(level_column_name(i)),
        });
    }
    for (j, g) in q.grouping.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: g.clone(),
            alias: Some(grouping_column_name(j)),
        });
    }
    let aux = Query {
        select: aux_select,
        from: q.from.clone(),
        where_clause: q.where_clause.clone(),
        ..Default::default()
    };

    // Inner block: a competitor in A2 dominates the candidate in A1.
    let mut inner_conjuncts: Vec<Expr> = Vec::new();
    if let Some(b) = &q.but_only {
        inner_conjuncts.push(translate_clause(b, &compiled, A2, &aux, &from_aliases)?);
    }
    for j in 0..q.grouping.len() {
        let g1 = Expr::qcol(A1, grouping_column_name(j));
        let g2 = Expr::qcol(A2, grouping_column_name(j));
        inner_conjuncts.push(or(
            Expr::binary(g2.clone(), BinaryOp::Eq, g1.clone()),
            both_null(g2, g1),
        ));
    }
    inner_conjuncts.push(dominance_condition(&compiled.preference, A2, A1));
    let not_exists = Expr::Exists {
        query: Box::new(Query {
            select: vec![SelectItem::Expr {
                expr: Expr::lit(1),
                alias: None,
            }],
            from: vec![TableRef::Derived {
                query: Box::new(aux.clone()),
                alias: A2.to_string(),
            }],
            where_clause: Some(and_all(inner_conjuncts)),
            ..Default::default()
        }),
        negated: true,
    };

    // Outer block: BUT ONLY threshold plus non-domination.
    let mut outer_conjuncts: Vec<Expr> = Vec::new();
    if let Some(b) = &q.but_only {
        outer_conjuncts.push(translate_clause(b, &compiled, A1, &aux, &from_aliases)?);
    }
    outer_conjuncts.push(not_exists);

    // SELECT list: translate quality functions, re-qualify original table
    // aliases onto A1.
    let mut out_select = Vec::with_capacity(q.select.len());
    for item in &q.select {
        out_select.push(match item {
            SelectItem::Wildcard => SelectItem::Wildcard,
            // Original qualifiers vanish behind the derived table; a
            // qualified wildcard over a FROM alias becomes `*` (exact for
            // single-table FROM, the common case for search-engine queries).
            SelectItem::QualifiedWildcard(t) if from_aliases.contains(&t.to_ascii_lowercase()) => {
                SelectItem::Wildcard
            }
            SelectItem::QualifiedWildcard(t) => {
                return Err(Error::Rewrite(format!("unknown table '{t}' in '{t}.*'")))
            }
            SelectItem::Expr { expr, alias } => {
                let translated = translate_clause(expr, &compiled, A1, &aux, &from_aliases)?;
                let alias = alias.clone().or_else(|| default_quality_alias(expr));
                SelectItem::Expr {
                    expr: translated,
                    alias,
                }
            }
        });
    }

    let order_by = q
        .order_by
        .iter()
        .map(|o| {
            Ok(OrderByItem {
                expr: translate_clause(&o.expr, &compiled, A1, &aux, &from_aliases)?,
                asc: o.asc,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let group_by = q
        .group_by
        .iter()
        .map(|g| translate_clause(g, &compiled, A1, &aux, &from_aliases))
        .collect::<Result<Vec<_>>>()?;
    let having = q
        .having
        .as_ref()
        .map(|h| translate_clause(h, &compiled, A1, &aux, &from_aliases))
        .transpose()?;

    let rewritten = Query {
        select: out_select,
        distinct: q.distinct,
        from: vec![TableRef::Derived {
            query: Box::new(aux),
            alias: A1.to_string(),
        }],
        where_clause: Some(and_all(outer_conjuncts)),
        preferring: None,
        grouping: vec![],
        but_only: None,
        group_by,
        having,
        order_by,
        limit: q.limit,
    };
    Ok((rewritten, Some(compiled), true))
}

fn rewrite_table_ref(item: &TableRef, registry: &PreferenceRegistry) -> Result<(TableRef, bool)> {
    match item {
        TableRef::Named { .. } => Ok((item.clone(), false)),
        TableRef::Derived { query, alias } => {
            let (q, _, changed) = rewrite_query_rec(query, registry)?;
            Ok((
                TableRef::Derived {
                    query: Box::new(q),
                    alias: alias.clone(),
                },
                changed,
            ))
        }
        TableRef::Join { left, right, on } => {
            let (l, cl) = rewrite_table_ref(left, registry)?;
            let (r, cr) = rewrite_table_ref(right, registry)?;
            Ok((
                TableRef::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    on: on.clone(),
                },
                cl || cr,
            ))
        }
    }
}

/// Aliases (or bare names) of the original FROM items, lower-cased.
fn collect_aliases(from: &[TableRef]) -> HashSet<String> {
    fn walk(item: &TableRef, out: &mut HashSet<String>) {
        match item {
            TableRef::Named { name, alias } => {
                out.insert(
                    alias
                        .clone()
                        .unwrap_or_else(|| name.clone())
                        .to_ascii_lowercase(),
                );
            }
            TableRef::Derived { alias, .. } => {
                out.insert(alias.to_ascii_lowercase());
            }
            TableRef::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = HashSet::new();
    for item in from {
        walk(item, &mut out);
    }
    out
}

/// Translate one outer-query expression: quality-function calls become
/// level-column expressions over `qual`, and column references qualified by
/// an original FROM alias are re-qualified onto `qual` (all original
/// columns are visible there through the aux `SELECT *`).
fn translate_clause(
    expr: &Expr,
    compiled: &CompiledPreference,
    qual: &str,
    aux: &Query,
    from_aliases: &HashSet<String>,
) -> Result<Expr> {
    let recurse = |e: &Expr| translate_clause(e, compiled, qual, aux, from_aliases);
    match expr {
        Expr::Function { name, args } if matches!(name.as_str(), "top" | "level" | "distance") => {
            if args.len() != 1 {
                return Err(Error::Rewrite(format!(
                    "{name}() expects exactly one attribute argument"
                )));
            }
            let slot = compiled.slot_of(&args[0]).ok_or_else(|| {
                Error::Rewrite(format!(
                    "{name}({}) does not match any base preference of the \
                     PREFERRING clause",
                    args[0]
                ))
            })?;
            quality_expr(name, slot, &compiled.preference.bases()[slot], qual, aux)
        }
        Expr::Column {
            qualifier: Some(t),
            name,
        } if from_aliases.contains(&t.to_ascii_lowercase()) => Ok(Expr::Column {
            qualifier: Some(qual.to_string()),
            name: name.clone(),
        }),
        Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => Ok(expr.clone()),
        Expr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(recurse(expr)?),
        }),
        Expr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(recurse(left)?),
            op: *op,
            right: Box::new(recurse(right)?),
        }),
        Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(recurse(expr)?),
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            expr: Box::new(recurse(expr)?),
            low: Box::new(recurse(low)?),
            high: Box::new(recurse(high)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(recurse(expr)?),
            list: list.iter().map(&recurse).collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(recurse(expr)?),
            pattern: Box::new(recurse(pattern)?),
            negated: *negated,
        }),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Ok(Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| recurse(o).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((recurse(w)?, recurse(t)?)))
                .collect::<Result<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| recurse(e).map(Box::new))
                .transpose()?,
        }),
        Expr::Function { name, args } => Ok(Expr::Function {
            name: name.clone(),
            args: args.iter().map(&recurse).collect::<Result<_>>()?,
        }),
        // Sub-queries inside translated clauses stay as-is (correlation
        // into the rewritten aliases is not supported).
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => Ok(expr.clone()),
    }
}

/// Default output alias for a quality-function select item, e.g.
/// `LEVEL(color)` → `level_color` (keeps the adorned result readable).
fn default_quality_alias(expr: &Expr) -> Option<String> {
    if let Expr::Function { name, args } = expr {
        if matches!(name.as_str(), "top" | "level" | "distance") {
            if let Some(Expr::Column { name: col, .. }) = args.first() {
                return Some(format!("{name}_{col}"));
            }
            return Some(name.clone());
        }
    }
    None
}

fn check_no_preferring_in_expr_subqueries(expr: &Expr) -> Result<()> {
    fn check_query(q: &Query) -> Result<()> {
        if q.preferring.is_some() {
            return Err(Error::Unsupported(
                "sub-queries in the WHERE clause may not contain PREFERRING \
                 clauses (Preference SQL 1.3 restriction, paper §2.2.5)"
                    .into(),
            ));
        }
        for e in [&q.where_clause, &q.having].into_iter().flatten() {
            check_no_preferring_in_expr_subqueries(e)?;
        }
        Ok(())
    }
    match expr {
        Expr::Exists { query, .. }
        | Expr::InSubquery { query, .. }
        | Expr::ScalarSubquery(query) => check_query(query)?,
        _ => {}
    }
    for child in expr.children() {
        check_no_preferring_in_expr_subqueries(child)?;
    }
    Ok(())
}

// Silence an unused-import lint for GEN_PREFIX re-export convenience.
#[allow(unused)]
fn _gen_prefix_is_public() -> &'static str {
    GEN_PREFIX
}
