//! Compile a parsed preference term ([`PrefExpr`]) into the semantic
//! [`Preference`] of `prefsql-pref` plus the list of attribute expressions
//! its base preferences score.
//!
//! The compiled form drives both execution paths:
//! * the **rewrite** path derives one level/distance column per base
//!   preference from `bases[i]` + `base_exprs[i]`;
//! * the **native** path (ablation baselines) evaluates `base_exprs[i]`
//!   per tuple into slot vectors and runs BMO/BNL/SFS directly.

use prefsql_parser::ast::{BinaryOp, Expr, PrefExpr, UnaryOp};
use prefsql_pref::{BasePref, PrefNode, Preference};
use prefsql_types::{Date, Error, Result, Value};

/// A compiled complex preference.
#[derive(Debug, Clone)]
pub struct CompiledPreference {
    /// The semantic preference (strict partial order over slot vectors).
    pub preference: Preference,
    /// `base_exprs[i]` is the attribute expression scored by
    /// `preference.bases()[i]`.
    pub base_exprs: Vec<Expr>,
}

impl CompiledPreference {
    /// Find the slot whose base expression matches `expr` structurally
    /// (used to resolve `LEVEL(attr)` / `DISTANCE(attr)` / `TOP(attr)`).
    /// An unqualified column reference also matches a qualified base
    /// expression with the same column name.
    pub fn slot_of(&self, expr: &Expr) -> Option<usize> {
        if let Some(i) = self.base_exprs.iter().position(|e| e == expr) {
            return Some(i);
        }
        if let Expr::Column {
            qualifier: None,
            name,
        } = expr
        {
            return self
                .base_exprs
                .iter()
                .position(|e| matches!(e, Expr::Column { name: n, .. } if n == name));
        }
        None
    }
}

/// Compile `pref` (with all [`PrefExpr::Named`] references already
/// resolved — see [`crate::PreferenceRegistry::resolve`]).
pub fn compile_preference(pref: &PrefExpr) -> Result<CompiledPreference> {
    let mut bases = Vec::new();
    let mut base_exprs = Vec::new();
    let root = build(pref, &mut bases, &mut base_exprs)?;
    let preference = Preference::new(root, bases)?;
    Ok(CompiledPreference {
        preference,
        base_exprs,
    })
}

fn build(
    pref: &PrefExpr,
    bases: &mut Vec<BasePref>,
    base_exprs: &mut Vec<Expr>,
) -> Result<PrefNode> {
    let mut leaf = |base: BasePref, expr: &Expr| -> PrefNode {
        let slot = bases.len();
        bases.push(base);
        base_exprs.push(expr.clone());
        PrefNode::Base { slot }
    };
    match pref {
        PrefExpr::Around { expr, target } => {
            let t = fold_numeric(target)?;
            Ok(leaf(BasePref::Around { target: t }, expr))
        }
        PrefExpr::Between { expr, low, up } => {
            let low = fold_numeric(low)?;
            let up = fold_numeric(up)?;
            Ok(leaf(BasePref::Between { low, up }, expr))
        }
        PrefExpr::Lowest { expr } => Ok(leaf(BasePref::Lowest, expr)),
        PrefExpr::Highest { expr } => Ok(leaf(BasePref::Highest, expr)),
        PrefExpr::Pos { expr, values } => Ok(leaf(
            BasePref::Pos {
                values: values.clone(),
            },
            expr,
        )),
        PrefExpr::Neg { expr, values } => Ok(leaf(
            BasePref::Neg {
                values: values.clone(),
            },
            expr,
        )),
        PrefExpr::PosPos {
            expr,
            first,
            second,
        } => Ok(leaf(
            BasePref::PosPos {
                first: first.clone(),
                second: second.clone(),
            },
            expr,
        )),
        PrefExpr::PosNeg { expr, pos, neg } => Ok(leaf(
            BasePref::PosNeg {
                pos: pos.clone(),
                neg: neg.clone(),
            },
            expr,
        )),
        PrefExpr::Explicit { expr, edges } => Ok(leaf(
            BasePref::Explicit {
                edges: edges.clone(),
            },
            expr,
        )),
        PrefExpr::Contains { expr, terms } => Ok(leaf(
            BasePref::Contains {
                terms: terms.clone(),
            },
            expr,
        )),
        PrefExpr::Named(name) => Err(Error::Plan(format!(
            "named preference '{name}' must be resolved against the \
             preference registry before compilation"
        ))),
        PrefExpr::Pareto(parts) => Ok(PrefNode::Pareto(
            parts
                .iter()
                .map(|p| build(p, bases, base_exprs))
                .collect::<Result<_>>()?,
        )),
        PrefExpr::Prioritized(parts) => Ok(PrefNode::Prioritized(
            parts
                .iter()
                .map(|p| build(p, bases, base_exprs))
                .collect::<Result<_>>()?,
        )),
    }
}

/// Constant-fold an expression into a number. `AROUND`/`BETWEEN` operands
/// must be constants: numeric literals, arithmetic over them, or date
/// strings / `DATE` literals (folded to their day count, matching the
/// engine's date arithmetic).
pub fn fold_numeric(expr: &Expr) -> Result<f64> {
    let v = fold_const(expr)?;
    match &v {
        Value::Str(s) => {
            let d = Date::parse(s).map_err(|_| {
                Error::Plan(format!(
                    "AROUND/BETWEEN operand '{s}' is neither a number nor a date"
                ))
            })?;
            Ok(d.days() as f64)
        }
        other => other.as_f64().ok_or_else(|| {
            Error::Plan(format!(
                "AROUND/BETWEEN operand must fold to a number, got {}",
                other.type_name()
            ))
        }),
    }
}

/// Constant-fold literals and arithmetic over literals.
pub fn fold_const(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => fold_const(expr)?.neg(),
        Expr::Binary { left, op, right } => {
            let l = fold_const(left)?;
            let r = fold_const(right)?;
            match op {
                BinaryOp::Plus => l.add(&r),
                BinaryOp::Minus => l.sub(&r),
                BinaryOp::Mul => l.mul(&r),
                BinaryOp::Div => l.div(&r),
                other => Err(Error::Plan(format!(
                    "operator {} is not constant-foldable here",
                    other.sql()
                ))),
            }
        }
        other => Err(Error::Plan(format!(
            "expression '{other}' is not a constant"
        ))),
    }
}

/// The constant value a preference target folds to, for SQL emission:
/// date strings become `DATE` literals so the emitted SQL stays typed.
pub fn fold_const_for_sql(expr: &Expr) -> Result<Value> {
    let v = fold_const(expr)?;
    if let Value::Str(s) = &v {
        if let Ok(d) = Date::parse(s) {
            return Ok(Value::Date(d));
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::{parse_statement, Statement};

    fn pref_of(sql: &str) -> PrefExpr {
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => q.preferring.unwrap(),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn compile_paper_opel_query() {
        let p = pref_of(
            "SELECT * FROM car PREFERRING (category = 'roadster' ELSE category <> 'passenger' \
             AND price AROUND 40000 AND HIGHEST(power)) \
             CASCADE color = 'red' CASCADE LOWEST(mileage);",
        );
        let c = compile_preference(&p).unwrap();
        assert_eq!(c.preference.arity(), 5);
        assert!(matches!(c.preference.bases()[0], BasePref::PosNeg { .. }));
        assert!(matches!(
            c.preference.bases()[1],
            BasePref::Around { target } if target == 40000.0
        ));
        assert!(matches!(c.preference.bases()[2], BasePref::Highest));
        assert!(matches!(c.preference.bases()[3], BasePref::Pos { .. }));
        assert!(matches!(c.preference.bases()[4], BasePref::Lowest));
        assert_eq!(c.base_exprs[0], Expr::col("category"));
        assert_eq!(c.base_exprs[4], Expr::col("mileage"));
    }

    #[test]
    fn slot_lookup_by_attribute() {
        let p = pref_of(
            "SELECT * FROM trips PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14;",
        );
        let c = compile_preference(&p).unwrap();
        assert_eq!(c.slot_of(&Expr::col("start_day")), Some(0));
        assert_eq!(c.slot_of(&Expr::col("duration")), Some(1));
        assert_eq!(c.slot_of(&Expr::col("nope")), None);
    }

    #[test]
    fn date_targets_fold_to_day_counts() {
        let p = pref_of("SELECT * FROM trips PREFERRING start_day AROUND '1999/7/3';");
        let c = compile_preference(&p).unwrap();
        let expected = Date::parse("1999-07-03").unwrap().days() as f64;
        assert!(matches!(
            c.preference.bases()[0],
            BasePref::Around { target } if target == expected
        ));
    }

    #[test]
    fn arithmetic_targets_fold() {
        let p = pref_of("SELECT * FROM t PREFERRING x AROUND 2 * (10 + 5);");
        let c = compile_preference(&p).unwrap();
        assert!(matches!(
            c.preference.bases()[0],
            BasePref::Around { target } if target == 30.0
        ));
    }

    #[test]
    fn non_constant_target_rejected() {
        let p = pref_of("SELECT * FROM t PREFERRING x AROUND y;");
        assert!(compile_preference(&p).is_err());
    }

    #[test]
    fn invalid_between_rejected() {
        let p = pref_of("SELECT * FROM t PREFERRING x BETWEEN 10, 5;");
        assert!(compile_preference(&p).is_err());
    }

    #[test]
    fn unresolved_named_preference_rejected() {
        let p = PrefExpr::Named("cheap".into());
        assert!(compile_preference(&p).is_err());
    }

    #[test]
    fn fold_const_for_sql_turns_date_strings_into_dates() {
        let v = fold_const_for_sql(&Expr::lit("1999/7/3")).unwrap();
        assert!(matches!(v, Value::Date(_)));
        let v = fold_const_for_sql(&Expr::lit(14)).unwrap();
        assert_eq!(v, Value::Int(14));
    }
}
