//! Level-column synthesis and dominance-condition construction.
//!
//! Every base preference contributes one computed column to the auxiliary
//! derived relation (the paper's `Makelevel`/`Diesellevel` CASE columns,
//! §3.2), such that **smaller column value = better tuple**:
//!
//! | base preference | column expression |
//! |-----------------|-------------------|
//! | `AROUND t`      | `ABS(e - t)` |
//! | `BETWEEN l, u`  | `CASE WHEN e < l THEN l - e WHEN e > u THEN e - u ELSE 0 END` |
//! | `LOWEST`        | `e` |
//! | `HIGHEST`       | `-(e)` |
//! | `POS (v...)`    | `CASE WHEN e IS NULL THEN NULL WHEN e IN (v...) THEN 1 ELSE 2 END` |
//! | `NEG (v...)`    | ... levels 1/2 swapped |
//! | `POS/POS`, `POS/NEG` | three-level CASE |
//! | `CONTAINS (t...)` | `1 +` one `CASE ... LIKE '%t%' THEN 0 ELSE 1` per term |
//! | `EXPLICIT`      | the raw attribute value (dominance uses the closure) |
//!
//! NULL attribute values produce NULL level columns; every dominance
//! comparison against NULL is UNKNOWN, so NULL-valued tuples are
//! incomparable — exactly the strict-partial-order semantics of the native
//! preference model.

use crate::compile::fold_const_for_sql;
use prefsql_parser::ast::{BinaryOp, Expr, PrefExpr, UnaryOp};
use prefsql_pref::{BasePref, PrefNode, Preference};
use prefsql_types::{Error, Result, Value};

/// Reserved prefix for generated columns and aliases; the facade strips
/// output columns carrying it, and user schemas should avoid it.
pub const GEN_PREFIX: &str = "prefsql_";

/// Name of the level column for base-preference slot `i`.
pub fn level_column_name(slot: usize) -> String {
    format!("{GEN_PREFIX}p{slot}")
}

/// Name of the grouping column for grouping expression `j`.
pub fn grouping_column_name(j: usize) -> String {
    format!("{GEN_PREFIX}g{j}")
}

/// The level/distance column expression for one base-preference leaf of
/// the (registry-resolved) preference term.
pub fn level_column_expr(leaf: &PrefExpr) -> Result<Expr> {
    let in_list = |expr: &Expr, values: &[Value]| Expr::InList {
        expr: Box::new(expr.clone()),
        list: values.iter().map(|v| Expr::Literal(v.clone())).collect(),
        negated: false,
    };
    let null_guard = |expr: &Expr| {
        (
            Expr::IsNull {
                expr: Box::new(expr.clone()),
                negated: false,
            },
            Expr::Literal(Value::Null),
        )
    };
    match leaf {
        PrefExpr::Around { expr, target } => {
            let t = fold_const_for_sql(target)?;
            Ok(Expr::Function {
                name: "abs".into(),
                args: vec![Expr::binary(
                    expr.clone(),
                    BinaryOp::Minus,
                    Expr::Literal(t),
                )],
            })
        }
        PrefExpr::Between { expr, low, up } => {
            let l = Expr::Literal(fold_const_for_sql(low)?);
            let u = Expr::Literal(fold_const_for_sql(up)?);
            Ok(Expr::Case {
                operand: None,
                branches: vec![
                    (
                        Expr::binary(expr.clone(), BinaryOp::Lt, l.clone()),
                        Expr::binary(l, BinaryOp::Minus, expr.clone()),
                    ),
                    (
                        Expr::binary(expr.clone(), BinaryOp::Gt, u.clone()),
                        Expr::binary(expr.clone(), BinaryOp::Minus, u),
                    ),
                ],
                else_result: Some(Box::new(Expr::lit(0))),
            })
        }
        PrefExpr::Lowest { expr } => Ok(expr.clone()),
        PrefExpr::Highest { expr } => Ok(Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(expr.clone()),
        }),
        PrefExpr::Pos { expr, values } => Ok(Expr::Case {
            operand: None,
            branches: vec![null_guard(expr), (in_list(expr, values), Expr::lit(1))],
            else_result: Some(Box::new(Expr::lit(2))),
        }),
        PrefExpr::Neg { expr, values } => Ok(Expr::Case {
            operand: None,
            branches: vec![null_guard(expr), (in_list(expr, values), Expr::lit(2))],
            else_result: Some(Box::new(Expr::lit(1))),
        }),
        PrefExpr::PosPos {
            expr,
            first,
            second,
        } => Ok(Expr::Case {
            operand: None,
            branches: vec![
                null_guard(expr),
                (in_list(expr, first), Expr::lit(1)),
                (in_list(expr, second), Expr::lit(2)),
            ],
            else_result: Some(Box::new(Expr::lit(3))),
        }),
        PrefExpr::PosNeg { expr, pos, neg } => Ok(Expr::Case {
            operand: None,
            branches: vec![
                null_guard(expr),
                (in_list(expr, pos), Expr::lit(1)),
                (in_list(expr, neg), Expr::lit(3)),
            ],
            else_result: Some(Box::new(Expr::lit(2))),
        }),
        PrefExpr::Contains { expr, terms } => {
            // 1 + Σ (term missing ? 1 : 0); NULL text yields NULL.
            let mut sum = Expr::lit(1);
            for t in terms {
                let like = Expr::Like {
                    expr: Box::new(expr.clone()),
                    pattern: Box::new(Expr::lit(format!("%{t}%"))),
                    negated: false,
                };
                let miss = Expr::Case {
                    operand: None,
                    branches: vec![(like, Expr::lit(0))],
                    else_result: Some(Box::new(Expr::lit(1))),
                };
                sum = Expr::binary(sum, BinaryOp::Plus, miss);
            }
            Ok(Expr::Case {
                operand: None,
                branches: vec![null_guard(expr)],
                else_result: Some(Box::new(sum)),
            })
        }
        // EXPLICIT keeps the raw value; dominance enumerates the closure.
        PrefExpr::Explicit { expr, .. } => Ok(expr.clone()),
        PrefExpr::Named(n) => Err(Error::Plan(format!(
            "named preference '{n}' must be resolved before level synthesis"
        ))),
        PrefExpr::Pareto(_) | PrefExpr::Prioritized(_) => Err(Error::Plan(
            "level columns are synthesized per base preference, not per \
             composite term"
                .into(),
        )),
    }
}

// -------------------------------------------------------------- dominance

fn qcol(qual: &str, slot: usize) -> Expr {
    Expr::qcol(qual, level_column_name(slot))
}

pub(crate) fn and(l: Expr, r: Expr) -> Expr {
    Expr::binary(l, BinaryOp::And, r)
}

pub(crate) fn or(l: Expr, r: Expr) -> Expr {
    Expr::binary(l, BinaryOp::Or, r)
}

pub(crate) fn and_all(mut parts: Vec<Expr>) -> Expr {
    match parts.len() {
        0 => Expr::lit(true),
        1 => parts.pop().expect("len checked"),
        _ => {
            let first = parts.remove(0);
            parts.into_iter().fold(first, and)
        }
    }
}

pub(crate) fn or_all(mut parts: Vec<Expr>) -> Expr {
    match parts.len() {
        0 => Expr::lit(false),
        1 => parts.pop().expect("len checked"),
        _ => {
            let first = parts.remove(0);
            parts.into_iter().fold(first, or)
        }
    }
}

pub(crate) fn both_null(a: Expr, b: Expr) -> Expr {
    and(
        Expr::IsNull {
            expr: Box::new(a),
            negated: false,
        },
        Expr::IsNull {
            expr: Box::new(b),
            negated: false,
        },
    )
}

/// SQL condition: the tuple bound to `winner` strictly dominates the tuple
/// bound to `loser` under the compiled preference (structural recursion
/// over the Pareto/prioritization tree, comparing level columns).
pub fn dominance_condition(pref: &Preference, winner: &str, loser: &str) -> Expr {
    node_better(pref, pref.root(), winner, loser)
}

fn node_better(pref: &Preference, node: &PrefNode, w: &str, l: &str) -> Expr {
    match node {
        PrefNode::Base { slot } => base_better(&pref.bases()[*slot], *slot, w, l),
        PrefNode::Pareto(children) => {
            // better-or-equiv in all children AND strictly better in one.
            let mut all = Vec::with_capacity(children.len());
            let mut one = Vec::with_capacity(children.len());
            for c in children {
                all.push(or(node_better(pref, c, w, l), node_equiv(c, w, l)));
                one.push(node_better(pref, c, w, l));
            }
            and(and_all(all), or_all(one))
        }
        PrefNode::Prioritized(children) => {
            // b1 OR (e1 AND b2) OR (e1 AND e2 AND b3) ...
            let mut disjuncts = Vec::with_capacity(children.len());
            let mut prefix_equiv: Vec<Expr> = Vec::new();
            for c in children {
                let mut conj = prefix_equiv.clone();
                conj.push(node_better(pref, c, w, l));
                disjuncts.push(and_all(conj));
                prefix_equiv.push(node_equiv(c, w, l));
            }
            or_all(disjuncts)
        }
    }
}

fn node_equiv(node: &PrefNode, w: &str, l: &str) -> Expr {
    match node {
        PrefNode::Base { slot } => base_equiv(*slot, w, l),
        PrefNode::Pareto(children) | PrefNode::Prioritized(children) => {
            and_all(children.iter().map(|c| node_equiv(c, w, l)).collect())
        }
    }
}

fn base_better(base: &BasePref, slot: usize, w: &str, l: &str) -> Expr {
    match base {
        BasePref::Explicit { .. } => {
            // Disjunction over the transitive closure:
            // (w = better AND l = worse) OR ...
            let pairs = base.explicit_closure();
            or_all(
                pairs
                    .into_iter()
                    .map(|(b, wv)| {
                        and(
                            Expr::binary(qcol(w, slot), BinaryOp::Eq, Expr::Literal(b)),
                            Expr::binary(qcol(l, slot), BinaryOp::Eq, Expr::Literal(wv)),
                        )
                    })
                    .collect(),
            )
        }
        _ => Expr::binary(qcol(w, slot), BinaryOp::Lt, qcol(l, slot)),
    }
}

/// Equivalence of two tuples at one base preference: equal level columns,
/// or both NULL (NULL-valued tuples are mutually substitutable, matching
/// the native model).
fn base_equiv(slot: usize, w: &str, l: &str) -> Expr {
    or(
        Expr::binary(qcol(w, slot), BinaryOp::Eq, qcol(l, slot)),
        both_null(qcol(w, slot), qcol(l, slot)),
    )
}

// ------------------------------------------------------ quality functions

/// Translate a `TOP`/`LEVEL`/`DISTANCE` call into an expression over the
/// level columns of the relation aliased `qual`. `aux` is the auxiliary
/// derived-table query, needed for the data-dependent optimum of
/// `LOWEST`/`HIGHEST` (emitted as a scalar `SELECT MIN(...)` sub-query).
pub fn quality_expr(
    func: &str,
    slot: usize,
    base: &BasePref,
    qual: &str,
    aux: &prefsql_parser::ast::Query,
) -> Result<Expr> {
    let col = qcol(qual, slot);
    let min_subquery = || {
        let alias = format!("{GEN_PREFIX}a3");
        let q = prefsql_parser::ast::Query {
            select: vec![prefsql_parser::ast::SelectItem::Expr {
                expr: Expr::Function {
                    name: "min".into(),
                    args: vec![Expr::qcol(alias.clone(), level_column_name(slot))],
                },
                alias: None,
            }],
            from: vec![prefsql_parser::ast::TableRef::Derived {
                query: Box::new(aux.clone()),
                alias,
            }],
            ..Default::default()
        };
        Expr::ScalarSubquery(Box::new(q))
    };
    match (func, base) {
        ("level", BasePref::Pos { .. })
        | ("level", BasePref::Neg { .. })
        | ("level", BasePref::PosPos { .. })
        | ("level", BasePref::PosNeg { .. })
        | ("level", BasePref::Contains { .. }) => Ok(col),
        ("level", BasePref::Explicit { .. }) => {
            // Map each known value to its depth in the closure DAG;
            // unmentioned values are undominated, hence level 1.
            let closure = base.explicit_closure();
            let mut values: Vec<Value> = Vec::new();
            for (b, w) in &closure {
                if !values.contains(b) {
                    values.push(b.clone());
                }
                if !values.contains(w) {
                    values.push(w.clone());
                }
            }
            let branches = values
                .into_iter()
                .map(|v| {
                    let depth = base.level(&v).unwrap_or(1);
                    (Expr::Literal(v), Expr::lit(depth))
                })
                .collect();
            Ok(Expr::Case {
                operand: Some(Box::new(col)),
                branches,
                else_result: Some(Box::new(Expr::lit(1))),
            })
        }
        ("level", _) => Err(Error::Plan(
            "LEVEL() applies to categorical preferences; use DISTANCE() for \
             numeric preferences"
                .into(),
        )),
        ("distance", BasePref::Around { .. }) | ("distance", BasePref::Between { .. }) => Ok(col),
        ("distance", BasePref::Lowest) | ("distance", BasePref::Highest) => {
            Ok(Expr::binary(col, BinaryOp::Minus, min_subquery()))
        }
        ("distance", _) => Err(Error::Plan(
            "DISTANCE() applies to numeric preferences; use LEVEL() for \
             categorical preferences"
                .into(),
        )),
        ("top", BasePref::Around { .. }) | ("top", BasePref::Between { .. }) => {
            Ok(Expr::binary(col, BinaryOp::Eq, Expr::lit(0)))
        }
        ("top", BasePref::Lowest) | ("top", BasePref::Highest) => {
            Ok(Expr::binary(col, BinaryOp::Eq, min_subquery()))
        }
        ("top", BasePref::Explicit { .. }) => {
            // Top iff the value is never on the worse side of the closure.
            let closure = base.explicit_closure();
            let mut dominated: Vec<Value> = Vec::new();
            for (_, w) in closure {
                if !dominated.contains(&w) {
                    dominated.push(w);
                }
            }
            if dominated.is_empty() {
                return Ok(Expr::lit(true));
            }
            Ok(Expr::InList {
                expr: Box::new(col),
                list: dominated.into_iter().map(Expr::Literal).collect(),
                negated: true,
            })
        }
        ("top", _) => Ok(Expr::binary(col, BinaryOp::Eq, Expr::lit(1))),
        (other, _) => Err(Error::Plan(format!("unknown quality function '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::parse_expression;

    fn around_leaf() -> PrefExpr {
        PrefExpr::Around {
            expr: Expr::col("duration"),
            target: Box::new(Expr::lit(14)),
        }
    }

    #[test]
    fn around_level_is_abs_distance() {
        let e = level_column_expr(&around_leaf()).unwrap();
        assert_eq!(e.to_string(), "abs((duration - 14))");
    }

    #[test]
    fn around_date_target_emits_date_literal() {
        let leaf = PrefExpr::Around {
            expr: Expr::col("start_day"),
            target: Box::new(Expr::lit("1999/7/3")),
        };
        let e = level_column_expr(&leaf).unwrap();
        assert_eq!(e.to_string(), "abs((start_day - DATE '1999-07-03'))");
    }

    #[test]
    fn pos_level_is_the_paper_case_expression() {
        let leaf = PrefExpr::Pos {
            expr: Expr::col("make"),
            values: vec![Value::str("Audi")],
        };
        let e = level_column_expr(&leaf).unwrap();
        let printed = e.to_string();
        assert!(
            printed.contains("WHEN make IN ('Audi') THEN 1"),
            "{printed}"
        );
        assert!(printed.contains("ELSE 2"), "{printed}");
        assert!(printed.contains("make IS NULL THEN NULL"), "{printed}");
    }

    #[test]
    fn between_level_cases_both_sides() {
        let leaf = PrefExpr::Between {
            expr: Expr::col("price"),
            low: Box::new(Expr::lit(1500)),
            up: Box::new(Expr::lit(2000)),
        };
        let printed = level_column_expr(&leaf).unwrap().to_string();
        assert!(
            printed.contains("(price < 1500) THEN (1500 - price)"),
            "{printed}"
        );
        assert!(
            printed.contains("(price > 2000) THEN (price - 2000)"),
            "{printed}"
        );
        assert!(printed.contains("ELSE 0"), "{printed}");
    }

    #[test]
    fn contains_level_counts_misses() {
        let leaf = PrefExpr::Contains {
            expr: Expr::col("body"),
            terms: vec!["skyline".into()],
        };
        let printed = level_column_expr(&leaf).unwrap().to_string();
        assert!(printed.contains("LIKE '%skyline%'"), "{printed}");
    }

    #[test]
    fn level_exprs_parse_back() {
        // Everything we emit must be valid SQL for the host engine.
        for leaf in [
            around_leaf(),
            PrefExpr::Lowest {
                expr: Expr::col("mileage"),
            },
            PrefExpr::Highest {
                expr: Expr::col("power"),
            },
            PrefExpr::PosNeg {
                expr: Expr::col("category"),
                pos: vec![Value::str("roadster")],
                neg: vec![Value::str("passenger")],
            },
            PrefExpr::Contains {
                expr: Expr::col("body"),
                terms: vec!["a".into(), "b".into()],
            },
        ] {
            let e = level_column_expr(&leaf).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expression(&printed)
                .unwrap_or_else(|err| panic!("reparse failed for {printed}: {err}"));
            assert_eq!(reparsed.to_string(), printed);
        }
    }

    #[test]
    fn composite_terms_rejected() {
        let composite = PrefExpr::Pareto(vec![around_leaf(), around_leaf()]);
        assert!(level_column_expr(&composite).is_err());
    }
}
