//! Property tests tying the quality functions (§2.2.3) to the order
//! semantics: TOP/LEVEL/DISTANCE must be *monotone witnesses* of the
//! better-than relation — if `a` is better than `b`, then `a`'s quality
//! measures can never be worse than `b`'s.

use prefsql_pref::BasePref;
use prefsql_types::Value;
use proptest::prelude::*;

fn arb_categorical() -> impl Strategy<Value = BasePref> {
    let vals = || {
        proptest::collection::vec(0i64..6, 1..3)
            .prop_map(|v| v.into_iter().map(Value::Int).collect::<Vec<_>>())
    };
    prop_oneof![
        vals().prop_map(|values| BasePref::Pos { values }),
        vals().prop_map(|values| BasePref::Neg { values }),
        (vals(), vals()).prop_map(|(first, second)| BasePref::PosPos { first, second }),
        (vals(), vals()).prop_map(|(pos, neg)| BasePref::PosNeg { pos, neg }),
    ]
}

fn arb_numeric() -> impl Strategy<Value = BasePref> {
    prop_oneof![
        (-50.0f64..50.0).prop_map(|t| BasePref::Around { target: t }),
        (-50.0f64..0.0, 0.0f64..50.0).prop_map(|(l, u)| BasePref::Between { low: l, up: u }),
    ]
}

fn arb_val() -> impl Strategy<Value = Value> {
    (-60i64..60).prop_map(Value::Int)
}

proptest! {
    /// LEVEL is a monotone witness: better value ⇒ strictly smaller level.
    #[test]
    fn level_witnesses_better(p in arb_categorical(), a in arb_val(), b in arb_val()) {
        if p.better(&a, &b) {
            let la = p.level(&a).expect("non-null value has a level");
            let lb = p.level(&b).expect("non-null value has a level");
            prop_assert!(la < lb, "better {a} has level {la}, worse {b} has {lb}");
        }
        if p.equiv(&a, &b) {
            prop_assert_eq!(p.level(&a), p.level(&b));
        }
    }

    /// DISTANCE is a monotone witness for the numeric preferences.
    #[test]
    fn distance_witnesses_better(p in arb_numeric(), a in arb_val(), b in arb_val()) {
        if p.better(&a, &b) {
            let da = p.distance(&a, None).expect("non-null numeric value");
            let db = p.distance(&b, None).expect("non-null numeric value");
            prop_assert!(da < db);
        }
    }

    /// TOP values are maximal: nothing can be better than a perfect match.
    #[test]
    fn top_values_are_undominated(p in arb_numeric(), a in arb_val(), b in arb_val()) {
        if p.top(&a, None) {
            prop_assert!(!p.better(&b, &a), "{b} beats the perfect match {a}");
        }
    }

    #[test]
    fn categorical_top_is_level_one(p in arb_categorical(), a in arb_val()) {
        prop_assert_eq!(p.top(&a, None), p.level(&a) == Some(1));
    }

    /// LOWEST/HIGHEST distances are relative to the best value present.
    #[test]
    fn relative_distance_is_zero_at_the_best(vals in proptest::collection::vec(-50i64..50, 1..20)) {
        for p in [BasePref::Lowest, BasePref::Highest] {
            let best = vals
                .iter()
                .map(|&v| Value::Int(v))
                .min_by(|a, b| {
                    p.score(a)
                        .partial_cmp(&p.score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty");
            prop_assert_eq!(p.distance(&best, Some(&best)), Some(0.0));
            prop_assert!(p.top(&best, Some(&best)));
            for &v in &vals {
                let v = Value::Int(v);
                let d = p.distance(&v, Some(&best)).expect("non-null");
                prop_assert!(d >= 0.0, "distance must be non-negative, got {d}");
            }
        }
    }

    /// CONTAINS level = 1 + number of missing terms, bounded by the term
    /// count.
    #[test]
    fn contains_level_bounds(terms in proptest::collection::vec("[a-c]{1,3}", 1..4), text in "[a-c ]{0,12}") {
        let p = BasePref::Contains { terms: terms.clone() };
        let lvl = p.level(&Value::str(text.clone())).expect("non-null text");
        prop_assert!(lvl >= 1);
        prop_assert!(lvl <= 1 + terms.len() as i64);
        // All terms present => level 1.
        let all = terms.join(" ");
        prop_assert_eq!(p.level(&Value::str(all)), Some(1));
    }
}

#[test]
fn explicit_levels_follow_chain_depth() {
    let p = BasePref::Explicit {
        edges: vec![
            (Value::Int(1), Value::Int(2)),
            (Value::Int(2), Value::Int(3)),
            (Value::Int(3), Value::Int(4)),
            (Value::Int(1), Value::Int(5)),
        ],
    };
    assert_eq!(p.level(&Value::Int(1)), Some(1));
    assert_eq!(p.level(&Value::Int(2)), Some(2));
    assert_eq!(p.level(&Value::Int(3)), Some(3));
    assert_eq!(p.level(&Value::Int(4)), Some(4));
    assert_eq!(p.level(&Value::Int(5)), Some(2));
    assert_eq!(p.level(&Value::Int(99)), Some(1)); // unmentioned: undominated
    assert!(p.top(&Value::Int(1), None));
    assert!(!p.top(&Value::Int(4), None));
}
