//! Maximal-set (generalized skyline) algorithms.
//!
//! Three implementations with identical semantics:
//!
//! * [`maximal_naive`] — the paper's "abstract selection method" (§3.2):
//!   keep a tuple iff no other tuple is better. O(n²) comparisons, no
//!   extra memory. This is also the computational shape of the SQL
//!   `NOT EXISTS` rewrite.
//! * [`maximal_bnl`] — block-nested-loops \[BKS01\]: maintain a window of
//!   incomparable tuples; each candidate is compared against the window,
//!   evicting dominated window entries.
//! * [`maximal_sfs`] — sort-filter-skyline: pre-sort by a topological
//!   order compatible with dominance (lexicographic over base-preference
//!   scores), then run the window filter. Sorting makes most dominated
//!   candidates die on their first window probe.
//! * [`maximal_parallel`] — the decomposable-window formulation of
//!   \[BKS01\]: partition the candidates across OS threads, skyline each
//!   partition locally, then merge-filter the union of the local
//!   skylines. Dominance is transitive, so checking survivors against
//!   the union of local skylines is exact.
//!
//! The ablation benchmark A1 compares them against the rewrite; the
//! `parallel_skyline` bench target covers the threaded window.

use crate::base::BasePref;
use crate::compose::Preference;
use prefsql_types::Value;
use std::cmp::Ordering;

/// Which maximal-set algorithm evaluates a preference.
///
/// `Naive`, `Bnl` and `Sfs` force one implementation; [`SkylineAlgo::Auto`]
/// (the default) picks among them per evaluation with [`choose_algo`],
/// based on input cardinality and the shape of the preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkylineAlgo {
    /// The paper's abstract selection method (§3.2): O(n²) nested loop.
    Naive,
    /// Block-nested-loops \[BKS01\].
    Bnl,
    /// Sort-filter-skyline (pre-sort by a dominance-compatible order).
    Sfs,
    /// Cost-based selection among the three, per input.
    #[default]
    Auto,
}

impl SkylineAlgo {
    /// Short lowercase label (`naive`/`bnl`/`sfs`/`auto`).
    pub fn label(self) -> &'static str {
        match self {
            SkylineAlgo::Naive => "naive",
            SkylineAlgo::Bnl => "bnl",
            SkylineAlgo::Sfs => "sfs",
            SkylineAlgo::Auto => "auto",
        }
    }

    /// Parse a label produced by [`SkylineAlgo::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "naive" => Some(SkylineAlgo::Naive),
            "bnl" => Some(SkylineAlgo::Bnl),
            "sfs" => Some(SkylineAlgo::Sfs),
            "auto" => Some(SkylineAlgo::Auto),
            _ => None,
        }
    }
}

/// Below this cardinality the O(n²) nested loop wins: no window
/// bookkeeping, no pre-sort, perfect cache locality.
const NAIVE_CUTOFF: usize = 64;

/// Below this candidate count [`SkylineAlgo::Auto`] never parallelizes:
/// thread spawn + merge-filter overhead beats the window work saved.
pub const PARALLEL_CUTOFF: usize = 1024;

/// Minimum rows per partition worth dedicating a thread to.
const MIN_PARTITION: usize = 256;

/// The parallel degree [`SkylineAlgo::Auto`] runs `n` candidates at,
/// given the session's thread knob: `1` (serial) below
/// [`PARALLEL_CUTOFF`], otherwise `threads` clamped so every partition
/// keeps at least `MIN_PARTITION` (256) rows.
pub fn choose_degree(n: usize, threads: usize) -> usize {
    if threads <= 1 || n < PARALLEL_CUTOFF {
        1
    } else {
        threads.min(n / MIN_PARTITION).max(1)
    }
}

/// Cost-based algorithm selection for [`SkylineAlgo::Auto`]: pick the
/// concrete algorithm from the input cardinality `n` and the preference
/// shape. Small inputs run the naive nested loop; larger inputs run SFS
/// when every base preference is scorable (the pre-sort is then a true
/// topological order and most dominated tuples die on their first window
/// probe), and BNL otherwise (`EXPLICIT` bases have no scores, so the SFS
/// pre-sort would degenerate to an arbitrary order).
pub fn choose_algo(n: usize, pref: &Preference) -> SkylineAlgo {
    if n <= NAIVE_CUTOFF {
        SkylineAlgo::Naive
    } else if pref
        .bases()
        .iter()
        .any(|b| matches!(b, BasePref::Explicit { .. }))
    {
        SkylineAlgo::Bnl
    } else {
        SkylineAlgo::Sfs
    }
}

/// Run the maximal-set selection with `algo`, resolving
/// [`SkylineAlgo::Auto`] through [`choose_algo`]. All algorithms return
/// identical index sets in input order (the cross-algorithm equivalence
/// test suites depend on that).
pub fn maximal(slot_vectors: &[Vec<Value>], pref: &Preference, algo: SkylineAlgo) -> Vec<usize> {
    match algo {
        SkylineAlgo::Naive => maximal_naive(slot_vectors, pref),
        SkylineAlgo::Bnl => maximal_bnl(slot_vectors, pref),
        SkylineAlgo::Sfs => maximal_sfs(slot_vectors, pref),
        SkylineAlgo::Auto => {
            let chosen = choose_algo(slot_vectors.len(), pref);
            maximal(slot_vectors, pref, chosen)
        }
    }
}

/// [`maximal`] with a parallel-degree knob: [`SkylineAlgo::Auto`] runs
/// the threaded window ([`maximal_parallel`]) at the degree picked by
/// [`choose_degree`]; forced algorithms stay serial so the differential
/// suites can pin each implementation individually.
pub fn maximal_with_threads(
    slot_vectors: &[Vec<Value>],
    pref: &Preference,
    algo: SkylineAlgo,
    threads: usize,
) -> Vec<usize> {
    if matches!(algo, SkylineAlgo::Auto) {
        let degree = choose_degree(slot_vectors.len(), threads);
        if degree > 1 {
            return maximal_parallel(slot_vectors, pref, degree);
        }
    }
    maximal(slot_vectors, pref, algo)
}

/// The external-memory engagement test for [`SkylineAlgo::Auto`] — the
/// cost model the native operator consults per input: spill when a
/// window budget is set and the estimated candidate bytes (the run
/// encoding's own size table, [`crate::external::slot_vectors_bytes`] /
/// `tuple_spill_bytes`) exceed it. Forced algorithms (`naive`/`bnl`/
/// `sfs`) always stay in memory so the differential suites can pin each
/// implementation individually.
pub fn should_spill(
    algo: SkylineAlgo,
    candidate_bytes: usize,
    window_bytes: Option<usize>,
) -> bool {
    matches!(algo, SkylineAlgo::Auto) && window_bytes.is_some_and(|b| candidate_bytes > b)
}

/// One pass of the BNL window filter over `candidates` (global indices
/// into `slot_vectors`): dominated candidates are dropped, candidates
/// evict dominated window entries. Returns the window in insertion
/// order — callers sort when they need input order.
fn window_filter(
    slot_vectors: &[Vec<Value>],
    pref: &Preference,
    candidates: impl IntoIterator<Item = usize>,
) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'candidates: for i in candidates {
        let cand = &slot_vectors[i];
        let mut k = 0;
        while k < window.len() {
            let w = &slot_vectors[window[k]];
            if pref.better(w, cand) {
                continue 'candidates; // dominated: drop the candidate
            }
            if pref.better(cand, w) {
                window.swap_remove(k); // candidate evicts window entry
            } else {
                k += 1;
            }
        }
        window.push(i);
    }
    window
}

/// Parallel BNL \[BKS01\]'s decomposable window: split the candidates
/// into `threads` contiguous partitions, run the window filter on each
/// partition in its own scoped OS thread, then merge-filter the union of
/// the local skylines serially.
///
/// Exactness: `better` is a strict partial order, so if a candidate `t`
/// is dominated by some `u` outside its partition, then either `u`
/// survives its own local window, or something dominating `u` does — and
/// by transitivity that survivor dominates `t`. Checking the union of
/// local skylines therefore suffices.
///
/// The requested `threads` is honored exactly (clamped only to the
/// candidate count), so tests can force partitioning on tiny inputs;
/// cost-based clamping lives in [`choose_degree`]. Returns indices
/// sorted in input order, identical to every serial algorithm.
pub fn maximal_parallel(
    slot_vectors: &[Vec<Value>],
    pref: &Preference,
    threads: usize,
) -> Vec<usize> {
    let n = slot_vectors.len();
    let degree = threads.clamp(1, n.max(1));
    if degree <= 1 {
        return maximal_bnl(slot_vectors, pref);
    }
    let chunk = n.div_ceil(degree);
    let locals: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..degree)
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || window_filter(slot_vectors, pref, lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("skyline worker panicked"))
            .collect()
    });
    let mut merged = window_filter(slot_vectors, pref, locals.into_iter().flatten());
    merged.sort_unstable();
    merged
}

/// The paper's abstract selection method: `t1` is maximal iff no `t2` in
/// the input is better. Returns indices in input order.
pub fn maximal_naive(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    (0..slot_vectors.len())
        .filter(|&i| {
            !slot_vectors
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && pref.better(other, &slot_vectors[i]))
        })
        .collect()
}

/// Block-nested-loops skyline \[BKS01\] with an unbounded window (the
/// in-memory case — the candidate sets of the paper's benchmark fit in
/// memory by construction). Returns indices sorted in input order.
pub fn maximal_bnl(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    let mut window = window_filter(slot_vectors, pref, 0..slot_vectors.len());
    window.sort_unstable();
    window
}

/// Sort-filter-skyline: pre-sort candidates lexicographically by their
/// base-preference score vectors (NULL/unscorable slots last), which is a
/// topological order for the dominance relation of scored preferences,
/// then run the BNL window filter. Returns indices sorted in input order.
///
/// For preferences containing `EXPLICIT` bases (which have no scores) the
/// pre-sort degenerates to arbitrary order among ties; the window filter
/// still checks both dominance directions, so the result stays correct.
pub fn maximal_sfs(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    let scores: Vec<Vec<Option<f64>>> = slot_vectors
        .iter()
        .map(|sv| {
            pref.bases()
                .iter()
                .zip(sv.iter())
                .map(|(b, v)| b.score(v))
                .collect()
        })
        .collect();
    let mut order: Vec<usize> = (0..slot_vectors.len()).collect();
    order.sort_by(|&a, &b| {
        for (x, y) in scores[a].iter().zip(scores[b].iter()) {
            let ord = match (x, y) {
                (Some(x), Some(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    // Evictions inside the window remain possible only among sort ties
    // (EXPLICIT bases); the filter checks both directions regardless.
    let mut window = window_filter(slot_vectors, pref, order);
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BasePref;
    use crate::compose::PrefNode;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pareto(d: usize) -> Preference {
        let root = if d == 1 {
            PrefNode::Base { slot: 0 }
        } else {
            PrefNode::Pareto((0..d).map(|slot| PrefNode::Base { slot }).collect())
        };
        Preference::new(root, vec![BasePref::Lowest; d]).unwrap()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| Value::Int(rng.gen_range(0..50))).collect())
            .collect()
    }

    #[test]
    fn all_three_agree_on_random_pareto_inputs() {
        for seed in 0..10 {
            for d in [1, 2, 3, 5] {
                let pts = random_points(120, d, seed * 31 + d as u64);
                let p = pareto(d);
                let a = maximal_naive(&pts, &p);
                let b = maximal_bnl(&pts, &p);
                let c = maximal_sfs(&pts, &p);
                assert_eq!(a, b, "naive vs bnl, d={d} seed={seed}");
                assert_eq!(a, c, "naive vs sfs, d={d} seed={seed}");
            }
        }
    }

    #[test]
    fn agree_on_prioritized_preference() {
        let p = Preference::new(
            PrefNode::Prioritized(vec![
                PrefNode::Base { slot: 0 },
                PrefNode::Pareto(vec![PrefNode::Base { slot: 1 }, PrefNode::Base { slot: 2 }]),
            ]),
            vec![BasePref::Lowest, BasePref::Lowest, BasePref::Highest],
        )
        .unwrap();
        for seed in 0..10 {
            let pts = random_points(150, 3, seed);
            let a = maximal_naive(&pts, &p);
            let b = maximal_bnl(&pts, &p);
            let c = maximal_sfs(&pts, &p);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn agree_with_explicit_base() {
        let p = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Explicit {
                    edges: vec![
                        (Value::Int(0), Value::Int(1)),
                        (Value::Int(1), Value::Int(2)),
                    ],
                },
                BasePref::Lowest,
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Vec<Value>> = (0..100)
            .map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..4)),
                    Value::Int(rng.gen_range(0..4)),
                ]
            })
            .collect();
        let a = maximal_naive(&pts, &p);
        let b = maximal_bnl(&pts, &p);
        let c = maximal_sfs(&pts, &p);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn maxima_of_identical_points_are_all_kept() {
        let p = pareto(2);
        let pts = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(1)],
        ];
        assert_eq!(maximal_naive(&pts, &p), vec![0, 1]);
        assert_eq!(maximal_bnl(&pts, &p), vec![0, 1]);
        assert_eq!(maximal_sfs(&pts, &p), vec![0, 1]);
    }

    #[test]
    fn anti_correlated_data_has_large_skyline() {
        // x + y = const: nothing dominates anything.
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(50 - i)])
            .collect();
        assert_eq!(maximal_bnl(&pts, &p).len(), 50);
    }

    #[test]
    fn correlated_data_has_tiny_skyline() {
        // y = x: total order, single maximum.
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        assert_eq!(maximal_bnl(&pts, &p), vec![0]);
    }

    #[test]
    fn auto_selection_matches_forced_algorithms() {
        for (n, seed) in [(20usize, 3u64), (200, 4)] {
            for d in [1, 2, 4] {
                let pts = random_points(n, d, seed);
                let p = pareto(d);
                let auto = maximal(&pts, &p, SkylineAlgo::Auto);
                assert_eq!(auto, maximal_naive(&pts, &p), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn choose_algo_heuristics() {
        let p = pareto(2);
        assert_eq!(choose_algo(10, &p), SkylineAlgo::Naive);
        assert_eq!(choose_algo(10_000, &p), SkylineAlgo::Sfs);
        let explicit = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Explicit {
                    edges: vec![(Value::Int(0), Value::Int(1))],
                },
                BasePref::Lowest,
            ],
        )
        .unwrap();
        assert_eq!(choose_algo(10_000, &explicit), SkylineAlgo::Bnl);
    }

    #[test]
    fn parallel_agrees_with_serial_at_every_degree() {
        for seed in 0..6 {
            for d in [1, 2, 3] {
                let pts = random_points(140, d, seed * 17 + d as u64);
                let p = pareto(d);
                let serial = maximal_naive(&pts, &p);
                // Degrees beyond the candidate count must clamp, not panic.
                for threads in [1usize, 2, 3, 8, 200] {
                    assert_eq!(
                        maximal_parallel(&pts, &p, threads),
                        serial,
                        "parallel({threads}) vs naive, d={d} seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_handles_degenerate_inputs() {
        let p = pareto(2);
        assert_eq!(maximal_parallel(&[], &p, 8), Vec::<usize>::new());
        let one = vec![vec![Value::Int(1), Value::Int(2)]];
        assert_eq!(maximal_parallel(&one, &p, 8), vec![0]);
        // All-identical points: every copy survives on every thread count.
        let pts = vec![vec![Value::Int(3), Value::Int(3)]; 10];
        for threads in [1, 2, 4, 16] {
            assert_eq!(
                maximal_parallel(&pts, &p, threads),
                (0..10).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn parallel_agrees_with_explicit_bases() {
        let p = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Explicit {
                    edges: vec![
                        (Value::Int(0), Value::Int(1)),
                        (Value::Int(1), Value::Int(2)),
                    ],
                },
                BasePref::Lowest,
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Vec<Value>> = (0..200)
            .map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..4)),
                    Value::Int(rng.gen_range(0..4)),
                ]
            })
            .collect();
        let serial = maximal_naive(&pts, &p);
        for threads in [2, 5, 8] {
            assert_eq!(maximal_parallel(&pts, &p, threads), serial);
        }
    }

    #[test]
    fn choose_degree_cost_model() {
        // Serial below the cutoff or with a serial knob.
        assert_eq!(choose_degree(100_000, 1), 1);
        assert_eq!(choose_degree(PARALLEL_CUTOFF - 1, 8), 1);
        // Above the cutoff: the knob, clamped to MIN_PARTITION-sized work.
        assert_eq!(choose_degree(PARALLEL_CUTOFF, 2), 2);
        assert_eq!(choose_degree(64_000, 8), 8);
        assert_eq!(choose_degree(2_048, 64), 8); // 2048 / 256
        assert_eq!(choose_degree(PARALLEL_CUTOFF, 4096), 4);
    }

    #[test]
    fn maximal_with_threads_routes_by_algo_and_degree() {
        let p = pareto(2);
        let pts = random_points(PARALLEL_CUTOFF + 100, 2, 9);
        let expected = maximal_bnl(&pts, &p);
        // Auto over the cutoff with a wide knob takes the parallel path...
        assert_eq!(
            maximal_with_threads(&pts, &p, SkylineAlgo::Auto, 8),
            expected
        );
        // ...and stays serial when forced or when the knob is 1.
        assert_eq!(
            maximal_with_threads(&pts, &p, SkylineAlgo::Sfs, 8),
            expected
        );
        assert_eq!(
            maximal_with_threads(&pts, &p, SkylineAlgo::Auto, 1),
            expected
        );
        let small = random_points(30, 2, 10);
        assert_eq!(
            maximal_with_threads(&small, &p, SkylineAlgo::Auto, 8),
            maximal_naive(&small, &p)
        );
    }

    #[test]
    fn should_spill_requires_auto_and_an_exceeded_budget() {
        assert!(should_spill(SkylineAlgo::Auto, 10_000, Some(4_096)));
        assert!(!should_spill(SkylineAlgo::Auto, 4_000, Some(4_096)));
        assert!(!should_spill(SkylineAlgo::Auto, 10_000, None));
        // Forced algorithms never take the external path.
        for algo in [SkylineAlgo::Naive, SkylineAlgo::Bnl, SkylineAlgo::Sfs] {
            assert!(!should_spill(algo, 10_000, Some(64)));
        }
    }

    #[test]
    fn external_dispatch_under_should_spill_matches_in_memory() {
        let p = pareto(2);
        let pts = random_points(400, 2, 15);
        let expected = maximal_naive(&pts, &p);
        let bytes = crate::external::slot_vectors_bytes(&pts);
        // The budgets the engagement test fires at run the external
        // window to the same winners as the in-memory dispatch.
        assert!(should_spill(SkylineAlgo::Auto, bytes, Some(64)));
        let (got, metrics) = crate::external::maximal_external(&pts, &p, 64).unwrap();
        assert_eq!(got, expected);
        assert!(metrics.passes >= 1);
        // ...and the budgets it declines keep the in-memory result.
        assert!(!should_spill(SkylineAlgo::Auto, bytes, Some(1 << 20)));
        assert_eq!(
            maximal_with_threads(&pts, &p, SkylineAlgo::Auto, 1),
            expected
        );
    }

    #[test]
    fn labels_round_trip() {
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::Auto,
        ] {
            assert_eq!(SkylineAlgo::parse(algo.label()), Some(algo));
        }
        assert_eq!(SkylineAlgo::parse("warp"), None);
        assert_eq!(SkylineAlgo::default(), SkylineAlgo::Auto);
    }

    proptest! {
        // The defining property of the maximal set: m is in the result iff
        // nothing in the input is better than m.
        #[test]
        fn bnl_result_is_exactly_the_maximal_set(
            pts in proptest::collection::vec(
                proptest::collection::vec(0i64..10, 3),
                0..60
            )
        ) {
            let pts: Vec<Vec<Value>> =
                pts.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
            let p = pareto(3);
            let result = maximal_bnl(&pts, &p);
            for (i, cand) in pts.iter().enumerate() {
                let dominated = pts.iter().any(|o| p.better(o, cand));
                prop_assert_eq!(result.contains(&i), !dominated);
            }
        }

        #[test]
        fn sfs_agrees_with_naive(
            pts in proptest::collection::vec(
                proptest::collection::vec(0i64..8, 2),
                0..50
            )
        ) {
            let pts: Vec<Vec<Value>> =
                pts.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
            let p = pareto(2);
            prop_assert_eq!(maximal_sfs(&pts, &p), maximal_naive(&pts, &p));
        }
    }
}
