//! Maximal-set (generalized skyline) algorithms.
//!
//! Three implementations with identical semantics:
//!
//! * [`maximal_naive`] — the paper's "abstract selection method" (§3.2):
//!   keep a tuple iff no other tuple is better. O(n²) comparisons, no
//!   extra memory. This is also the computational shape of the SQL
//!   `NOT EXISTS` rewrite.
//! * [`maximal_bnl`] — block-nested-loops \[BKS01\]: maintain a window of
//!   incomparable tuples; each candidate is compared against the window,
//!   evicting dominated window entries.
//! * [`maximal_sfs`] — sort-filter-skyline: pre-sort by a topological
//!   order compatible with dominance (lexicographic over base-preference
//!   scores), then run the window filter. Sorting makes most dominated
//!   candidates die on their first window probe.
//!
//! The ablation benchmark A1 compares them against the rewrite.

use crate::base::BasePref;
use crate::compose::Preference;
use prefsql_types::Value;
use std::cmp::Ordering;

/// Which maximal-set algorithm evaluates a preference.
///
/// `Naive`, `Bnl` and `Sfs` force one implementation; [`SkylineAlgo::Auto`]
/// (the default) picks among them per evaluation with [`choose_algo`],
/// based on input cardinality and the shape of the preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkylineAlgo {
    /// The paper's abstract selection method (§3.2): O(n²) nested loop.
    Naive,
    /// Block-nested-loops \[BKS01\].
    Bnl,
    /// Sort-filter-skyline (pre-sort by a dominance-compatible order).
    Sfs,
    /// Cost-based selection among the three, per input.
    #[default]
    Auto,
}

impl SkylineAlgo {
    /// Short lowercase label (`naive`/`bnl`/`sfs`/`auto`).
    pub fn label(self) -> &'static str {
        match self {
            SkylineAlgo::Naive => "naive",
            SkylineAlgo::Bnl => "bnl",
            SkylineAlgo::Sfs => "sfs",
            SkylineAlgo::Auto => "auto",
        }
    }

    /// Parse a label produced by [`SkylineAlgo::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "naive" => Some(SkylineAlgo::Naive),
            "bnl" => Some(SkylineAlgo::Bnl),
            "sfs" => Some(SkylineAlgo::Sfs),
            "auto" => Some(SkylineAlgo::Auto),
            _ => None,
        }
    }
}

/// Below this cardinality the O(n²) nested loop wins: no window
/// bookkeeping, no pre-sort, perfect cache locality.
const NAIVE_CUTOFF: usize = 64;

/// Cost-based algorithm selection for [`SkylineAlgo::Auto`]: pick the
/// concrete algorithm from the input cardinality `n` and the preference
/// shape. Small inputs run the naive nested loop; larger inputs run SFS
/// when every base preference is scorable (the pre-sort is then a true
/// topological order and most dominated tuples die on their first window
/// probe), and BNL otherwise (`EXPLICIT` bases have no scores, so the SFS
/// pre-sort would degenerate to an arbitrary order).
pub fn choose_algo(n: usize, pref: &Preference) -> SkylineAlgo {
    if n <= NAIVE_CUTOFF {
        SkylineAlgo::Naive
    } else if pref
        .bases()
        .iter()
        .any(|b| matches!(b, BasePref::Explicit { .. }))
    {
        SkylineAlgo::Bnl
    } else {
        SkylineAlgo::Sfs
    }
}

/// Run the maximal-set selection with `algo`, resolving
/// [`SkylineAlgo::Auto`] through [`choose_algo`]. All algorithms return
/// identical index sets in input order (the cross-algorithm equivalence
/// test suites depend on that).
pub fn maximal(slot_vectors: &[Vec<Value>], pref: &Preference, algo: SkylineAlgo) -> Vec<usize> {
    match algo {
        SkylineAlgo::Naive => maximal_naive(slot_vectors, pref),
        SkylineAlgo::Bnl => maximal_bnl(slot_vectors, pref),
        SkylineAlgo::Sfs => maximal_sfs(slot_vectors, pref),
        SkylineAlgo::Auto => {
            let chosen = choose_algo(slot_vectors.len(), pref);
            maximal(slot_vectors, pref, chosen)
        }
    }
}

/// The paper's abstract selection method: `t1` is maximal iff no `t2` in
/// the input is better. Returns indices in input order.
pub fn maximal_naive(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    (0..slot_vectors.len())
        .filter(|&i| {
            !slot_vectors
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && pref.better(other, &slot_vectors[i]))
        })
        .collect()
}

/// Block-nested-loops skyline \[BKS01\] with an unbounded window (the
/// in-memory case — the candidate sets of the paper's benchmark fit in
/// memory by construction). Returns indices sorted in input order.
pub fn maximal_bnl(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'candidates: for (i, cand) in slot_vectors.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            let w = &slot_vectors[window[k]];
            if pref.better(w, cand) {
                continue 'candidates; // dominated: drop the candidate
            }
            if pref.better(cand, w) {
                window.swap_remove(k); // candidate evicts window entry
            } else {
                k += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Sort-filter-skyline: pre-sort candidates lexicographically by their
/// base-preference score vectors (NULL/unscorable slots last), which is a
/// topological order for the dominance relation of scored preferences,
/// then run the BNL window filter. Returns indices sorted in input order.
///
/// For preferences containing `EXPLICIT` bases (which have no scores) the
/// pre-sort degenerates to arbitrary order among ties; the window filter
/// still checks both dominance directions, so the result stays correct.
pub fn maximal_sfs(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    let scores: Vec<Vec<Option<f64>>> = slot_vectors
        .iter()
        .map(|sv| {
            pref.bases()
                .iter()
                .zip(sv.iter())
                .map(|(b, v)| b.score(v))
                .collect()
        })
        .collect();
    let mut order: Vec<usize> = (0..slot_vectors.len()).collect();
    order.sort_by(|&a, &b| {
        for (x, y) in scores[a].iter().zip(scores[b].iter()) {
            let ord = match (x, y) {
                (Some(x), Some(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    let mut window: Vec<usize> = Vec::new();
    'candidates: for &i in &order {
        let cand = &slot_vectors[i];
        let mut k = 0;
        while k < window.len() {
            let w = &slot_vectors[window[k]];
            if pref.better(w, cand) {
                continue 'candidates;
            }
            if pref.better(cand, w) {
                // Only possible among sort ties (EXPLICIT bases).
                window.swap_remove(k);
            } else {
                k += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BasePref;
    use crate::compose::PrefNode;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pareto(d: usize) -> Preference {
        let root = if d == 1 {
            PrefNode::Base { slot: 0 }
        } else {
            PrefNode::Pareto((0..d).map(|slot| PrefNode::Base { slot }).collect())
        };
        Preference::new(root, vec![BasePref::Lowest; d]).unwrap()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| Value::Int(rng.gen_range(0..50))).collect())
            .collect()
    }

    #[test]
    fn all_three_agree_on_random_pareto_inputs() {
        for seed in 0..10 {
            for d in [1, 2, 3, 5] {
                let pts = random_points(120, d, seed * 31 + d as u64);
                let p = pareto(d);
                let a = maximal_naive(&pts, &p);
                let b = maximal_bnl(&pts, &p);
                let c = maximal_sfs(&pts, &p);
                assert_eq!(a, b, "naive vs bnl, d={d} seed={seed}");
                assert_eq!(a, c, "naive vs sfs, d={d} seed={seed}");
            }
        }
    }

    #[test]
    fn agree_on_prioritized_preference() {
        let p = Preference::new(
            PrefNode::Prioritized(vec![
                PrefNode::Base { slot: 0 },
                PrefNode::Pareto(vec![PrefNode::Base { slot: 1 }, PrefNode::Base { slot: 2 }]),
            ]),
            vec![BasePref::Lowest, BasePref::Lowest, BasePref::Highest],
        )
        .unwrap();
        for seed in 0..10 {
            let pts = random_points(150, 3, seed);
            let a = maximal_naive(&pts, &p);
            let b = maximal_bnl(&pts, &p);
            let c = maximal_sfs(&pts, &p);
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn agree_with_explicit_base() {
        let p = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Explicit {
                    edges: vec![
                        (Value::Int(0), Value::Int(1)),
                        (Value::Int(1), Value::Int(2)),
                    ],
                },
                BasePref::Lowest,
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Vec<Value>> = (0..100)
            .map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..4)),
                    Value::Int(rng.gen_range(0..4)),
                ]
            })
            .collect();
        let a = maximal_naive(&pts, &p);
        let b = maximal_bnl(&pts, &p);
        let c = maximal_sfs(&pts, &p);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn maxima_of_identical_points_are_all_kept() {
        let p = pareto(2);
        let pts = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(1)],
        ];
        assert_eq!(maximal_naive(&pts, &p), vec![0, 1]);
        assert_eq!(maximal_bnl(&pts, &p), vec![0, 1]);
        assert_eq!(maximal_sfs(&pts, &p), vec![0, 1]);
    }

    #[test]
    fn anti_correlated_data_has_large_skyline() {
        // x + y = const: nothing dominates anything.
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(50 - i)])
            .collect();
        assert_eq!(maximal_bnl(&pts, &p).len(), 50);
    }

    #[test]
    fn correlated_data_has_tiny_skyline() {
        // y = x: total order, single maximum.
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        assert_eq!(maximal_bnl(&pts, &p), vec![0]);
    }

    #[test]
    fn auto_selection_matches_forced_algorithms() {
        for (n, seed) in [(20usize, 3u64), (200, 4)] {
            for d in [1, 2, 4] {
                let pts = random_points(n, d, seed);
                let p = pareto(d);
                let auto = maximal(&pts, &p, SkylineAlgo::Auto);
                assert_eq!(auto, maximal_naive(&pts, &p), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn choose_algo_heuristics() {
        let p = pareto(2);
        assert_eq!(choose_algo(10, &p), SkylineAlgo::Naive);
        assert_eq!(choose_algo(10_000, &p), SkylineAlgo::Sfs);
        let explicit = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Explicit {
                    edges: vec![(Value::Int(0), Value::Int(1))],
                },
                BasePref::Lowest,
            ],
        )
        .unwrap();
        assert_eq!(choose_algo(10_000, &explicit), SkylineAlgo::Bnl);
    }

    #[test]
    fn labels_round_trip() {
        for algo in [
            SkylineAlgo::Naive,
            SkylineAlgo::Bnl,
            SkylineAlgo::Sfs,
            SkylineAlgo::Auto,
        ] {
            assert_eq!(SkylineAlgo::parse(algo.label()), Some(algo));
        }
        assert_eq!(SkylineAlgo::parse("warp"), None);
        assert_eq!(SkylineAlgo::default(), SkylineAlgo::Auto);
    }

    proptest! {
        // The defining property of the maximal set: m is in the result iff
        // nothing in the input is better than m.
        #[test]
        fn bnl_result_is_exactly_the_maximal_set(
            pts in proptest::collection::vec(
                proptest::collection::vec(0i64..10, 3),
                0..60
            )
        ) {
            let pts: Vec<Vec<Value>> =
                pts.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
            let p = pareto(3);
            let result = maximal_bnl(&pts, &p);
            for (i, cand) in pts.iter().enumerate() {
                let dominated = pts.iter().any(|o| p.better(o, cand));
                prop_assert_eq!(result.contains(&i), !dominated);
            }
        }

        #[test]
        fn sfs_agrees_with_naive(
            pts in proptest::collection::vec(
                proptest::collection::vec(0i64..8, 2),
                0..50
            )
        ) {
            let pts: Vec<Vec<Value>> =
                pts.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
            let p = pareto(2);
            prop_assert_eq!(maximal_sfs(&pts, &p), maximal_naive(&pts, &p));
        }
    }
}
