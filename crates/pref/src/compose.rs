//! Complex preference composition (paper §2.2.2): Pareto accumulation
//! (`AND`) and prioritization (`CASCADE`).
//!
//! A [`Preference`] evaluates over *slot vectors*: the engine (or a test)
//! evaluates each base preference's attribute expression against a tuple
//! once, producing one [`Value`] per base preference. The composition tree
//! then compares slot vectors without ever re-touching tuples. This keeps
//! the preference algebra independent of the SQL layer.

use crate::base::BasePref;
use prefsql_types::{Error, Result, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// A node of the preference composition tree. Leaves index into the slot
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub enum PrefNode {
    /// A base preference applied to slot `slot`.
    Base {
        /// Index into the slot vector.
        slot: usize,
    },
    /// Pareto accumulation: all children equally important.
    Pareto(Vec<PrefNode>),
    /// Prioritization: earlier children dominate later ones.
    Prioritized(Vec<PrefNode>),
}

/// A complete complex preference: a composition tree plus the base
/// preferences its leaves refer to.
///
/// ```
/// use prefsql_pref::{BasePref, PrefNode, Preference};
/// use prefsql_types::Value;
///
/// // HIGHEST(memory) AND HIGHEST(cpu) — the paper's computer example.
/// let p = Preference::new(
///     PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
///     vec![BasePref::Highest, BasePref::Highest],
/// ).unwrap();
///
/// let big_slow = vec![Value::Int(1024), Value::Int(800)];
/// let small_fast = vec![Value::Int(512), Value::Int(1200)];
/// let small_slow = vec![Value::Int(512), Value::Int(800)];
/// assert!(!p.better(&big_slow, &small_fast)); // incomparable trade-off
/// assert!(p.better(&big_slow, &small_slow));  // dominates
/// ```
#[derive(Debug)]
pub struct Preference {
    root: PrefNode,
    bases: Vec<BasePref>,
    /// Dominance tests performed through [`Preference::better`] — the
    /// paper's real cost unit. Every skyline algorithm (in-memory,
    /// external, incremental maintenance) funnels through `better`, so
    /// this one counter observes them all. Relaxed atomics: the parallel
    /// skyline shares one `&Preference` across scoped threads and only
    /// the total matters.
    comparisons: AtomicU64,
}

impl Clone for Preference {
    fn clone(&self) -> Self {
        Preference {
            root: self.root.clone(),
            bases: self.bases.clone(),
            // A clone is a fresh preference instance: it starts with a
            // zeroed comparison tally of its own.
            comparisons: AtomicU64::new(0),
        }
    }
}

// Value equality ignores the instrumentation counter: two preferences
// are the same preference iff they order tuples identically.
impl PartialEq for Preference {
    fn eq(&self, other: &Preference) -> bool {
        self.root == other.root && self.bases == other.bases
    }
}

impl Preference {
    /// Build a preference, validating that every leaf slot refers to a base
    /// preference and every base preference is internally consistent.
    pub fn new(root: PrefNode, bases: Vec<BasePref>) -> Result<Self> {
        fn check(node: &PrefNode, n: usize) -> Result<()> {
            match node {
                PrefNode::Base { slot } => {
                    if *slot >= n {
                        return Err(Error::Plan(format!(
                            "preference leaf references slot {slot} but only {n} bases exist"
                        )));
                    }
                    Ok(())
                }
                PrefNode::Pareto(children) | PrefNode::Prioritized(children) => {
                    if children.len() < 2 {
                        return Err(Error::Plan(
                            "Pareto/prioritized composition needs at least two children".into(),
                        ));
                    }
                    children.iter().try_for_each(|c| check(c, n))
                }
            }
        }
        check(&root, bases.len())?;
        for b in &bases {
            b.validate()?;
        }
        Ok(Preference {
            root,
            bases,
            comparisons: AtomicU64::new(0),
        })
    }

    /// A single-base preference.
    pub fn single(base: BasePref) -> Result<Self> {
        Preference::new(PrefNode::Base { slot: 0 }, vec![base])
    }

    /// The composition tree.
    pub fn root(&self) -> &PrefNode {
        &self.root
    }

    /// The base preferences, slot-ordered.
    pub fn bases(&self) -> &[BasePref] {
        &self.bases
    }

    /// Number of slots a slot vector must have.
    pub fn arity(&self) -> usize {
        self.bases.len()
    }

    /// Strict dominance: is slot vector `a` better than `b`?
    pub fn better(&self, a: &[Value], b: &[Value]) -> bool {
        self.comparisons.fetch_add(1, Ordering::Relaxed);
        self.node_better(&self.root, a, b)
    }

    /// Dominance tests performed so far through [`Preference::better`].
    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Ordering::Relaxed)
    }

    /// Read and reset the dominance-test tally (per-statement harvesting:
    /// the executor drains this into its stats after each run).
    pub fn take_comparisons(&self) -> u64 {
        self.comparisons.swap(0, Ordering::Relaxed)
    }

    /// Substitutability: are `a` and `b` interchangeable?
    pub fn equiv(&self, a: &[Value], b: &[Value]) -> bool {
        self.node_equiv(&self.root, a, b)
    }

    /// `a` is better than or equivalent to `b`.
    pub fn better_or_equiv(&self, a: &[Value], b: &[Value]) -> bool {
        self.node_better(&self.root, a, b) || self.node_equiv(&self.root, a, b)
    }

    fn node_better(&self, node: &PrefNode, a: &[Value], b: &[Value]) -> bool {
        match node {
            PrefNode::Base { slot } => self.bases[*slot].better(&a[*slot], &b[*slot]),
            // Pareto (§2.2.2): better in at least one component, equal or
            // better in every other.
            PrefNode::Pareto(children) => {
                let mut strictly = false;
                for c in children {
                    if self.node_better(c, a, b) {
                        strictly = true;
                    } else if !self.node_equiv(c, a, b) {
                        return false;
                    }
                }
                strictly
            }
            // Prioritization: lexicographic over (better, equiv).
            PrefNode::Prioritized(children) => {
                for c in children {
                    if self.node_better(c, a, b) {
                        return true;
                    }
                    if !self.node_equiv(c, a, b) {
                        return false;
                    }
                }
                false
            }
        }
    }

    fn node_equiv(&self, node: &PrefNode, a: &[Value], b: &[Value]) -> bool {
        match node {
            PrefNode::Base { slot } => self.bases[*slot].equiv(&a[*slot], &b[*slot]),
            PrefNode::Pareto(children) | PrefNode::Prioritized(children) => {
                children.iter().all(|c| self.node_equiv(c, a, b))
            }
        }
    }

    /// True iff `v` is a *perfect match*: best possible in every base
    /// preference (used for the BMO short-circuit; `LOWEST`/`HIGHEST` are
    /// never statically perfect since their optimum is data-dependent).
    pub fn is_perfect(&self, v: &[Value]) -> bool {
        self.bases.iter().zip(v.iter()).all(|(b, val)| match b {
            BasePref::Lowest | BasePref::Highest => false,
            BasePref::Explicit { .. } => false,
            _ => b.top(val, None),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vi(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    fn pareto2() -> Preference {
        // HIGHEST(memory) AND HIGHEST(cpu): the computer example.
        Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![BasePref::Highest, BasePref::Highest],
        )
        .unwrap()
    }

    #[test]
    fn pareto_dominance() {
        let p = pareto2();
        assert!(p.better(&vi(&[4, 4]), &vi(&[3, 4])));
        assert!(p.better(&vi(&[4, 4]), &vi(&[3, 3])));
        assert!(!p.better(&vi(&[4, 3]), &vi(&[3, 4]))); // incomparable
        assert!(!p.better(&vi(&[3, 4]), &vi(&[4, 3])));
        assert!(!p.better(&vi(&[4, 4]), &vi(&[4, 4]))); // irreflexive
        assert!(p.equiv(&vi(&[4, 4]), &vi(&[4, 4])));
    }

    #[test]
    fn prioritized_is_lexicographic() {
        // HIGHEST(memory) CASCADE POS(color in black, brown).
        let p = Preference::new(
            PrefNode::Prioritized(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Highest,
                BasePref::Pos {
                    values: vec![Value::str("black"), Value::str("brown")],
                },
            ],
        )
        .unwrap();
        let big_red = vec![Value::Int(8), Value::str("red")];
        let small_black = vec![Value::Int(4), Value::str("black")];
        let big_black = vec![Value::Int(8), Value::str("black")];
        // Memory dominates regardless of color.
        assert!(p.better(&big_red, &small_black));
        // Equal memory: color decides.
        assert!(p.better(&big_black, &big_red));
        assert!(!p.better(&big_red, &big_black));
    }

    #[test]
    fn nested_composition() {
        // (A AND B) CASCADE C — the Opel query shape.
        let p = Preference::new(
            PrefNode::Prioritized(vec![
                PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
                PrefNode::Base { slot: 2 },
            ]),
            vec![
                BasePref::Around { target: 40000.0 },
                BasePref::Highest,
                BasePref::Pos {
                    values: vec![Value::str("red")],
                },
            ],
        )
        .unwrap();
        let a = vec![Value::Int(40000), Value::Int(150), Value::str("blue")];
        let b = vec![Value::Int(40000), Value::Int(150), Value::str("red")];
        let c = vec![Value::Int(39000), Value::Int(150), Value::str("red")];
        // Pareto level ties between a and b; color promotes b.
        assert!(p.better(&b, &a));
        // Pareto level strictly prefers a and b over c; color is irrelevant.
        assert!(p.better(&a, &c));
        assert!(p.better(&b, &c));
        assert!(!p.better(&c, &b));
    }

    #[test]
    fn dominance_tests_are_counted() {
        let p = pareto2();
        assert_eq!(p.comparisons(), 0);
        p.better(&vi(&[4, 4]), &vi(&[3, 4]));
        p.better(&vi(&[4, 3]), &vi(&[3, 4]));
        assert_eq!(p.comparisons(), 2);
        // Clones start a fresh tally; equality ignores the counter.
        let cloned = p.clone();
        assert_eq!(cloned.comparisons(), 0);
        assert_eq!(p, cloned);
        // Harvesting drains the tally.
        assert_eq!(p.take_comparisons(), 2);
        assert_eq!(p.comparisons(), 0);
    }

    #[test]
    fn validation_errors() {
        assert!(Preference::new(PrefNode::Base { slot: 1 }, vec![BasePref::Lowest]).is_err());
        assert!(Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }]),
            vec![BasePref::Lowest]
        )
        .is_err());
        assert!(Preference::new(
            PrefNode::Base { slot: 0 },
            vec![BasePref::Between { low: 5.0, up: 1.0 }]
        )
        .is_err());
    }

    #[test]
    fn perfect_match_detection() {
        let p = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Around { target: 14.0 },
                BasePref::Pos {
                    values: vec![Value::str("java")],
                },
            ],
        )
        .unwrap();
        assert!(p.is_perfect(&[Value::Int(14), Value::str("java")]));
        assert!(!p.is_perfect(&[Value::Int(13), Value::str("java")]));
        // HIGHEST is never statically perfect.
        let h = Preference::single(BasePref::Highest).unwrap();
        assert!(!h.is_perfect(&[Value::Int(1_000_000)]));
    }

    // ---- property tests: composition preserves the SPO axioms ----

    fn arb_tree(n_slots: usize) -> impl Strategy<Value = PrefNode> {
        let leaf = (0..n_slots).prop_map(|slot| PrefNode::Base { slot });
        leaf.prop_recursive(3, 12, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 2..4).prop_map(PrefNode::Pareto),
                proptest::collection::vec(inner, 2..4).prop_map(PrefNode::Prioritized),
            ]
        })
    }

    fn arb_pref() -> impl Strategy<Value = Preference> {
        let bases = proptest::collection::vec(
            prop_oneof![
                Just(BasePref::Lowest),
                Just(BasePref::Highest),
                (-10.0f64..10.0).prop_map(|t| BasePref::Around { target: t }),
                proptest::collection::vec(-3i64..3, 1..3).prop_map(|vs| BasePref::Pos {
                    values: vs.into_iter().map(Value::Int).collect()
                }),
            ],
            3,
        );
        bases.prop_flat_map(|bs| {
            arb_tree(bs.len()).prop_map(move |t| Preference::new(t, bs.clone()).unwrap())
        })
    }

    fn arb_slots() -> impl Strategy<Value = Vec<Value>> {
        proptest::collection::vec(
            prop_oneof![(-4i64..4).prop_map(Value::Int), Just(Value::Null)],
            3,
        )
    }

    proptest! {
        #[test]
        fn composed_better_is_irreflexive(p in arb_pref(), a in arb_slots()) {
            prop_assert!(!p.better(&a, &a));
        }

        #[test]
        fn composed_better_is_asymmetric(p in arb_pref(), a in arb_slots(), b in arb_slots()) {
            if p.better(&a, &b) {
                prop_assert!(!p.better(&b, &a));
            }
        }

        #[test]
        fn composed_better_is_transitive(
            p in arb_pref(),
            a in arb_slots(),
            b in arb_slots(),
            c in arb_slots()
        ) {
            if p.better(&a, &b) && p.better(&b, &c) {
                prop_assert!(p.better(&a, &c));
            }
        }

        #[test]
        fn composed_equiv_substitution(
            p in arb_pref(),
            a in arb_slots(),
            b in arb_slots(),
            c in arb_slots()
        ) {
            if p.equiv(&a, &b) {
                prop_assert_eq!(p.better(&a, &c), p.better(&b, &c));
                prop_assert_eq!(p.better(&c, &a), p.better(&c, &b));
            }
        }
    }
}
