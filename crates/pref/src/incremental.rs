//! Incremental skyline maintenance — the delta algebra behind
//! `MATERIALIZED PREFERENCE VIEW`.
//!
//! The view stores one [`MatViewEntry`] per base-table row, mirroring row
//! ids 1:1 and in order. The functions here maintain the invariant
//!
//! ```text
//! e.dominators == |{ w : w.winner && better(w.slots, e.slots) }|
//! e.winner     ⇔  e.qualifies && e.dominators == 0
//! ```
//!
//! for every qualifying entry `e` across INSERT, DELETE and UPDATE,
//! without recomputing the skyline:
//!
//! * **Insert** ([`apply_insert`]): count the winners dominating the new
//!   tuple `t`. If any exist, `t` just records that count. Otherwise `t`
//!   becomes a winner, evicts the winners it dominates (their count
//!   becomes exactly 1 — only `t` beats them, or they would not have been
//!   winners), and every other qualifying non-winner `e` adjusts by
//!   `[better(t,e)] − |{evicted w : better(w,e)}|`. Transitivity of the
//!   strict partial order (`better(t,w) ∧ better(w,e) ⇒ better(t,e)`)
//!   guarantees the adjustment never drives a count to zero incorrectly.
//!   Cost: O(n·(1 + evicted)) comparisons per insert.
//! * **Delete** ([`apply_delete`]): removing non-winners is free (they
//!   dominate nothing that counts). For each deleted *winner*, surviving
//!   qualifying entries decrement by the number of deleted winners that
//!   dominated them. Entries whose count reaches zero are *candidates*
//!   for promotion — but they may dominate each other, so the promoted
//!   set is the maximal set over the candidates ([`maximal`]); every
//!   non-promoted candidate (and every other non-winner) then counts the
//!   newly promoted winners that dominate it.
//! * **Update** ([`apply_replace`]): a delete followed by an insert at
//!   the same entry position, so entry order keeps mirroring
//!   [`Table::replace_row`](prefsql_storage::Table::replace_row)'s
//!   in-place semantics.
//!
//! [`rebuild`] recomputes the whole state from scratch (CREATE/REFRESH
//! and the differential oracle of the maintenance proptests).

use crate::algo::{maximal, SkylineAlgo};
use crate::compose::Preference;
use prefsql_storage::MatViewEntry;
use std::collections::HashSet;

/// Recompute winner flags and domination counts from scratch: the maximal
/// set over qualifying entries, then one count pass. O(n·|winners|) after
/// the skyline itself. Used by CREATE / REFRESH and as the test oracle.
pub fn rebuild(entries: &mut [MatViewEntry], pref: &Preference) {
    let qualifying: Vec<usize> = (0..entries.len())
        .filter(|&i| entries[i].qualifies)
        .collect();
    let slots: Vec<Vec<prefsql_types::Value>> = qualifying
        .iter()
        .map(|&i| entries[i].slots.clone())
        .collect();
    let winners: HashSet<usize> = maximal(&slots, pref, SkylineAlgo::Auto)
        .into_iter()
        .map(|qi| qualifying[qi])
        .collect();
    for i in 0..entries.len() {
        if !entries[i].qualifies {
            entries[i].winner = false;
            entries[i].dominators = 0;
            continue;
        }
        let count = winners
            .iter()
            .filter(|&&w| w != i && pref.better(&entries[w].slots, &entries[i].slots))
            .count() as u32;
        entries[i].winner = winners.contains(&i);
        entries[i].dominators = count;
    }
}

/// Append `entry` and integrate it into the maintained state.
pub fn apply_insert(entries: &mut Vec<MatViewEntry>, entry: MatViewEntry, pref: &Preference) {
    entries.push(entry);
    let last = entries.len() - 1;
    integrate(entries, last, pref);
}

/// Remove the entries at `doomed` (duplicates tolerated), maintaining the
/// invariant for the survivors, then compact the vector exactly like
/// [`Table::delete_rows`](prefsql_storage::Table::delete_rows) compacts
/// row ids: surviving entries keep their relative order.
pub fn apply_delete(entries: &mut Vec<MatViewEntry>, doomed: &[usize], pref: &Preference) {
    let doomed: HashSet<usize> = doomed
        .iter()
        .copied()
        .filter(|&i| i < entries.len())
        .collect();
    if doomed.is_empty() {
        return;
    }
    retract(entries, &doomed, pref);
    let mut keep = Vec::with_capacity(entries.len() - doomed.len());
    for (i, e) in entries.drain(..).enumerate() {
        if !doomed.contains(&i) {
            keep.push(e);
        }
    }
    *entries = keep;
}

/// Replace the entry at `pos` with `entry` in place (an UPDATE of the
/// base row): retract the old entry, then integrate the new one at the
/// same position so entry order keeps mirroring row ids.
pub fn apply_replace(
    entries: &mut [MatViewEntry],
    pos: usize,
    entry: MatViewEntry,
    pref: &Preference,
) {
    let mut single = HashSet::new();
    single.insert(pos);
    retract(entries, &single, pref);
    entries[pos] = entry;
    integrate(entries, pos, pref);
}

/// Insert phase: `entries[pos]` is a fresh entry (winner/dominators not
/// yet meaningful); fold it into the maintained state.
fn integrate(entries: &mut [MatViewEntry], pos: usize, pref: &Preference) {
    entries[pos].winner = false;
    entries[pos].dominators = 0;
    if !entries[pos].qualifies {
        return;
    }
    // Count the winners dominating the newcomer.
    let dominated_by = (0..entries.len())
        .filter(|&w| {
            w != pos && entries[w].winner && pref.better(&entries[w].slots, &entries[pos].slots)
        })
        .count() as u32;
    if dominated_by > 0 {
        entries[pos].dominators = dominated_by;
        return;
    }
    // The newcomer enters the skyline: evict the winners it dominates.
    entries[pos].winner = true;
    let evicted: Vec<usize> = (0..entries.len())
        .filter(|&w| {
            w != pos && entries[w].winner && pref.better(&entries[pos].slots, &entries[w].slots)
        })
        .collect();
    for &w in &evicted {
        // Winners had count 0; the only winner beating them now is `pos`
        // (any other winner beating them would have beaten them before).
        entries[w].winner = false;
        entries[w].dominators = 1;
    }
    // Every other qualifying non-winner adjusts: +1 if the newcomer beats
    // it, −1 per evicted ex-winner that beat it. Transitivity keeps the
    // result non-negative and never incorrectly zero.
    for e in 0..entries.len() {
        if e == pos || !entries[e].qualifies || entries[e].winner || evicted.contains(&e) {
            continue;
        }
        let gained = u32::from(pref.better(&entries[pos].slots, &entries[e].slots));
        let lost = evicted
            .iter()
            .filter(|&&w| pref.better(&entries[w].slots, &entries[e].slots))
            .count() as u32;
        entries[e].dominators = entries[e].dominators + gained - lost;
    }
}

/// Delete phase: neutralize the `doomed` entries (they stop competing)
/// and repair the survivors' counts, promoting where counts reach zero.
/// Does not remove the doomed entries — callers compact or replace.
fn retract(entries: &mut [MatViewEntry], doomed: &HashSet<usize>, pref: &Preference) {
    // Only doomed *winners* affect anyone else's bookkeeping.
    let dead_winners: Vec<usize> = doomed
        .iter()
        .copied()
        .filter(|&i| entries[i].winner)
        .collect();
    for &d in doomed {
        entries[d].qualifies = false;
        entries[d].winner = false;
        entries[d].dominators = 0;
    }
    if dead_winners.is_empty() {
        return;
    }
    // Survivors stop counting the dead winners.
    for e in 0..entries.len() {
        if doomed.contains(&e) || !entries[e].qualifies || entries[e].winner {
            continue;
        }
        let lost = dead_winners
            .iter()
            .filter(|&&w| pref.better(&entries[w].slots, &entries[e].slots))
            .count() as u32;
        entries[e].dominators -= lost;
    }
    // Count-zero survivors are promotion candidates — but they may
    // dominate each other, so promote only the maximal set among them.
    let zero: Vec<usize> = (0..entries.len())
        .filter(|&e| {
            !doomed.contains(&e)
                && entries[e].qualifies
                && !entries[e].winner
                && entries[e].dominators == 0
        })
        .collect();
    if zero.is_empty() {
        return;
    }
    let zero_slots: Vec<Vec<prefsql_types::Value>> =
        zero.iter().map(|&e| entries[e].slots.clone()).collect();
    let promoted: Vec<usize> = maximal(&zero_slots, pref, SkylineAlgo::Auto)
        .into_iter()
        .map(|zi| zero[zi])
        .collect();
    for &p in &promoted {
        entries[p].winner = true;
    }
    // Remaining non-winners now count the newly promoted winners.
    for e in 0..entries.len() {
        if doomed.contains(&e) || !entries[e].qualifies || entries[e].winner {
            continue;
        }
        let gained = promoted
            .iter()
            .filter(|&&p| pref.better(&entries[p].slots, &entries[e].slots))
            .count() as u32;
        entries[e].dominators += gained;
    }
}

/// Debug/test helper: assert the maintained invariant holds for every
/// entry. Returns a description of the first violation, if any.
pub fn check_invariant(entries: &[MatViewEntry], pref: &Preference) -> Option<String> {
    for (i, e) in entries.iter().enumerate() {
        if !e.qualifies {
            if e.winner || e.dominators != 0 {
                return Some(format!("entry {i}: non-qualifying but winner/counted"));
            }
            continue;
        }
        let expect = entries
            .iter()
            .enumerate()
            .filter(|&(w, we)| w != i && we.winner && pref.better(&we.slots, &e.slots))
            .count() as u32;
        if e.dominators != expect {
            return Some(format!(
                "entry {i}: dominators {} but {} winners dominate it",
                e.dominators, expect
            ));
        }
        if e.winner != (e.dominators == 0) {
            return Some(format!(
                "entry {i}: winner={} with dominators={}",
                e.winner, e.dominators
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BasePref;
    use crate::compose::PrefNode;
    use prefsql_types::{tuple, Value};

    /// LOWEST x AND LOWEST y — the classic 2-d skyline.
    fn pareto2() -> Preference {
        Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![BasePref::Lowest, BasePref::Lowest],
        )
        .unwrap()
    }

    fn entry(x: i64, y: i64) -> MatViewEntry {
        MatViewEntry {
            output: tuple![x, y],
            slots: vec![Value::Int(x), Value::Int(y)],
            qualifies: true,
            winner: false,
            dominators: 0,
        }
    }

    fn winners(entries: &[MatViewEntry]) -> Vec<(i64, i64)> {
        entries
            .iter()
            .filter(|e| e.winner)
            .map(|e| (e.slots[0].as_int().unwrap(), e.slots[1].as_int().unwrap()))
            .collect()
    }

    #[test]
    fn insert_dominated_is_a_noop_on_the_skyline() {
        let p = pareto2();
        let mut es = vec![entry(1, 1)];
        rebuild(&mut es, &p);
        apply_insert(&mut es, entry(5, 5), &p);
        assert_eq!(winners(&es), vec![(1, 1)]);
        assert_eq!(es[1].dominators, 1);
        assert_eq!(check_invariant(&es, &p), None);
    }

    #[test]
    fn insert_evicts_dominated_winners() {
        let p = pareto2();
        let mut es = vec![entry(3, 5), entry(5, 3), entry(8, 8)];
        rebuild(&mut es, &p);
        assert_eq!(winners(&es), vec![(3, 5), (5, 3)]);
        assert_eq!(es[2].dominators, 2);
        // (2,2) dominates everything.
        apply_insert(&mut es, entry(2, 2), &p);
        assert_eq!(winners(&es), vec![(2, 2)]);
        assert_eq!(es[0].dominators, 1);
        assert_eq!(es[1].dominators, 1);
        assert_eq!(es[2].dominators, 1); // lost both ex-winners, gained (2,2)
        assert_eq!(check_invariant(&es, &p), None);
    }

    #[test]
    fn delete_of_winner_promotes_maximal_candidates_only() {
        let p = pareto2();
        // (1,1) dominates both (2,3) and (3,4); (2,3) dominates (3,4).
        let mut es = vec![entry(1, 1), entry(2, 3), entry(3, 4)];
        rebuild(&mut es, &p);
        assert_eq!(winners(&es), vec![(1, 1)]);
        apply_delete(&mut es, &[0], &p);
        // Both counts hit zero, but only (2,3) may be promoted.
        assert_eq!(winners(&es), vec![(2, 3)]);
        assert_eq!(es.len(), 2);
        assert_eq!(es[1].dominators, 1);
        assert_eq!(check_invariant(&es, &p), None);
    }

    #[test]
    fn delete_of_non_winner_is_free() {
        let p = pareto2();
        let mut es = vec![entry(1, 1), entry(4, 4), entry(0, 9)];
        rebuild(&mut es, &p);
        apply_delete(&mut es, &[1], &p);
        assert_eq!(winners(&es), vec![(1, 1), (0, 9)]);
        assert_eq!(check_invariant(&es, &p), None);
    }

    #[test]
    fn replace_moves_a_row_across_the_skyline_boundary() {
        let p = pareto2();
        let mut es = vec![entry(2, 2), entry(5, 5)];
        rebuild(&mut es, &p);
        // Update the dominated row to dominate everything.
        apply_replace(&mut es, 1, entry(1, 1), &p);
        assert_eq!(winners(&es), vec![(1, 1)]);
        assert_eq!(es[0].dominators, 1);
        // And push the ex-winner out again.
        apply_replace(&mut es, 1, entry(9, 9), &p);
        assert_eq!(winners(&es), vec![(2, 2)]);
        assert_eq!(check_invariant(&es, &p), None);
    }

    #[test]
    fn non_qualifying_entries_never_compete() {
        let p = pareto2();
        let mut hidden = entry(0, 0);
        hidden.qualifies = false;
        let mut es = vec![hidden, entry(3, 3)];
        rebuild(&mut es, &p);
        assert_eq!(winners(&es), vec![(3, 3)]);
        apply_insert(&mut es, entry(4, 4), &p);
        assert_eq!(winners(&es), vec![(3, 3)]);
        assert_eq!(check_invariant(&es, &p), None);
    }

    /// Randomized differential: a long interleaving of inserts, deletes
    /// and replaces stays identical (winners, counts, order) to a full
    /// rebuild after every step.
    #[test]
    fn random_interleaving_matches_rebuild() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = pareto2();
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut es: Vec<MatViewEntry> = Vec::new();
            for _ in 0..120 {
                let roll: u32 = rng.gen_range(0..10);
                if roll < 5 || es.is_empty() {
                    let mut e = entry(rng.gen_range(0..12), rng.gen_range(0..12));
                    e.qualifies = rng.gen_range(0..8) != 0;
                    apply_insert(&mut es, e, &p);
                } else if roll < 8 {
                    let n = rng.gen_range(1..=2.min(es.len()));
                    let doomed: Vec<usize> = (0..n).map(|_| rng.gen_range(0..es.len())).collect();
                    apply_delete(&mut es, &doomed, &p);
                } else {
                    let pos = rng.gen_range(0..es.len());
                    let mut e = entry(rng.gen_range(0..12), rng.gen_range(0..12));
                    e.qualifies = rng.gen_range(0..8) != 0;
                    apply_replace(&mut es, pos, e, &p);
                }
                if let Some(err) = check_invariant(&es, &p) {
                    panic!("seed {seed}: {err}");
                }
                let mut oracle = es.clone();
                rebuild(&mut oracle, &p);
                let got: Vec<_> = es.iter().map(|e| (e.winner, e.dominators)).collect();
                let want: Vec<_> = oracle.iter().map(|e| (e.winner, e.dominators)).collect();
                assert_eq!(got, want, "seed {seed}: incremental state diverged");
            }
        }
    }
}
