//! Base preference types (paper §2.2.1) and their quality semantics
//! (§2.2.3).
//!
//! Every base preference except `EXPLICIT` induces a *weak order*: tuples
//! are ranked by a numeric score where **lower is better**. This is exactly
//! what makes the paper's rewrite work — the score becomes a computed
//! `level`/`distance` column in the auxiliary relation and dominance becomes
//! plain `<`/`<=` comparisons. `EXPLICIT` is a general finite SPO given by
//! better-than edges; its dominance relation is the transitive closure of
//! those edges.

use prefsql_types::{Error, Result, Value};
use std::collections::{HashMap, HashSet};

/// A built-in base preference over a single attribute expression.
///
/// ```
/// use prefsql_pref::BasePref;
/// use prefsql_types::Value;
///
/// // `duration AROUND 14`: closer to 14 is better.
/// let p = BasePref::Around { target: 14.0 };
/// assert!(p.better(&Value::Int(13), &Value::Int(10)));
/// assert!(p.equiv(&Value::Int(13), &Value::Int(15))); // both distance 1
/// assert_eq!(p.distance(&Value::Int(10), None), Some(4.0));
/// assert!(p.top(&Value::Int(14), None));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum BasePref {
    /// `AROUND target`: the closer to `target` the better
    /// (distance `|v − target|`).
    Around {
        /// The desired value (numeric; dates compare by day count).
        target: f64,
    },
    /// `BETWEEN low, up`: perfect inside the interval, outside the closer
    /// to the violated limit the better.
    Between {
        /// Interval lower bound.
        low: f64,
        /// Interval upper bound.
        up: f64,
    },
    /// `LOWEST`: the smaller the better.
    Lowest,
    /// `HIGHEST`: the larger the better.
    Highest,
    /// POS: values in the set are preferred over all others (level 1 vs 2).
    Pos {
        /// The preferred values.
        values: Vec<Value>,
    },
    /// NEG: values *not* in the set are preferred (level 1 vs 2).
    Neg {
        /// The disliked values.
        values: Vec<Value>,
    },
    /// POS/POS: first-choice set (level 1), second-choice set (level 2),
    /// everything else (level 3).
    PosPos {
        /// First-choice values.
        first: Vec<Value>,
        /// Second-choice values.
        second: Vec<Value>,
    },
    /// POS/NEG: first-choice set (level 1), neutral values (level 2), the
    /// disliked set (level 3).
    PosNeg {
        /// First-choice values.
        pos: Vec<Value>,
        /// Disliked values.
        neg: Vec<Value>,
    },
    /// EXPLICIT: a finite better-than graph; dominance is its transitive
    /// closure. Values not mentioned in the graph are incomparable to all
    /// others (strict SPO semantics).
    Explicit {
        /// The user-stated `(better, worse)` edges.
        edges: Vec<(Value, Value)>,
    },
    /// CONTAINS: full-text preference — the more search terms occur in the
    /// text (case-insensitive substring match), the better.
    Contains {
        /// The search terms.
        terms: Vec<String>,
    },
}

impl BasePref {
    /// The *score* of a value: lower is better, `None` means the value does
    /// not participate in the order (NULL, wrong type, or an `EXPLICIT`
    /// preference, which is not a weak order).
    pub fn score(&self, v: &Value) -> Option<f64> {
        if v.is_null() {
            return None;
        }
        match self {
            BasePref::Around { target } => v.as_f64().map(|x| (x - target).abs()),
            BasePref::Between { low, up } => v.as_f64().map(|x| {
                if x < *low {
                    low - x
                } else if x > *up {
                    x - up
                } else {
                    0.0
                }
            }),
            BasePref::Lowest => v.as_f64(),
            BasePref::Highest => v.as_f64().map(|x| -x),
            BasePref::Pos { .. }
            | BasePref::Neg { .. }
            | BasePref::PosPos { .. }
            | BasePref::PosNeg { .. }
            | BasePref::Contains { .. } => self.level(v).map(|l| l as f64),
            BasePref::Explicit { .. } => None,
        }
    }

    /// The categorical *level* of a value (1 = best), per §2.2.3. Defined
    /// for the categorical preferences (POS/NEG families, CONTAINS,
    /// EXPLICIT); `None` for NULL or for the numeric preferences, whose
    /// quality measure is [`BasePref::distance`].
    pub fn level(&self, v: &Value) -> Option<i64> {
        if v.is_null() {
            return None;
        }
        let contains = |set: &[Value], v: &Value| set.iter().any(|s| s.key_eq(v));
        match self {
            BasePref::Pos { values } => Some(if contains(values, v) { 1 } else { 2 }),
            BasePref::Neg { values } => Some(if contains(values, v) { 2 } else { 1 }),
            BasePref::PosPos { first, second } => Some(if contains(first, v) {
                1
            } else if contains(second, v) {
                2
            } else {
                3
            }),
            BasePref::PosNeg { pos, neg } => Some(if contains(pos, v) {
                1
            } else if contains(neg, v) {
                3
            } else {
                2
            }),
            BasePref::Contains { terms } => {
                let text = v.as_str()?.to_ascii_lowercase();
                let missing = terms
                    .iter()
                    .filter(|t| !text.contains(&t.to_ascii_lowercase()))
                    .count() as i64;
                Some(1 + missing)
            }
            BasePref::Explicit { .. } => Some(self.explicit_depth(v)),
            BasePref::Around { .. }
            | BasePref::Between { .. }
            | BasePref::Lowest
            | BasePref::Highest => None,
        }
    }

    /// The numeric *distance* of a value from the preference's optimum
    /// (0 = perfect), per §2.2.3. For `LOWEST`/`HIGHEST` the optimum is
    /// data-dependent; pass the best value present as `best`.
    pub fn distance(&self, v: &Value, best: Option<&Value>) -> Option<f64> {
        match self {
            BasePref::Around { .. } | BasePref::Between { .. } => self.score(v),
            BasePref::Lowest | BasePref::Highest => {
                let s = self.score(v)?;
                let b = best.and_then(|b| self.score(b))?;
                Some(s - b)
            }
            _ => None,
        }
    }

    /// `TOP`: is the value a perfect match (§2.2.3)?
    ///
    /// For `LOWEST`/`HIGHEST`, perfection is relative to the best value
    /// present in the result, passed as `best`.
    pub fn top(&self, v: &Value, best: Option<&Value>) -> bool {
        match self {
            BasePref::Around { .. } | BasePref::Between { .. } => self.score(v) == Some(0.0),
            BasePref::Lowest | BasePref::Highest => {
                matches!(self.distance(v, best), Some(d) if d == 0.0)
            }
            BasePref::Explicit { .. } => self.explicit_depth_opt(v) == Some(1),
            _ => self.level(v) == Some(1),
        }
    }

    /// Strict better-than: `a <P b` reversed — true iff `a` is better
    /// than `b`. NULLs are incomparable to everything (keeps the SPO).
    pub fn better(&self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            BasePref::Explicit { .. } => self.explicit_better(a, b),
            _ => match (self.score(a), self.score(b)) {
                (Some(x), Some(y)) => x < y,
                _ => false,
            },
        }
    }

    /// Substitutability: `a` and `b` are interchangeable w.r.t. this
    /// preference (same score; same value for `EXPLICIT`). Used by Pareto
    /// and prioritized composition ("equal or better").
    pub fn equiv(&self, a: &Value, b: &Value) -> bool {
        if a.is_null() && b.is_null() {
            return true;
        }
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            BasePref::Explicit { .. } => a.key_eq(b),
            _ => match (self.score(a), self.score(b)) {
                (Some(x), Some(y)) => x == y,
                _ => a.key_eq(b),
            },
        }
    }

    /// Validate internal consistency (e.g. the `EXPLICIT` graph must be
    /// cycle-free — a cyclic "better-than" graph is not a partial order,
    /// and `BETWEEN` needs `low <= up`).
    pub fn validate(&self) -> Result<()> {
        match self {
            BasePref::Between { low, up } if low > up => Err(Error::Plan(format!(
                "BETWEEN preference has low {low} > up {up}"
            ))),
            BasePref::Explicit { edges } => {
                let closure = transitive_closure(edges);
                for (a, b) in &closure {
                    if closure.contains(&(b.clone(), a.clone())) {
                        return Err(Error::Plan(format!(
                            "EXPLICIT preference graph has a cycle involving \
                             '{a}' and '{b}' — not a strict partial order"
                        )));
                    }
                }
                Ok(())
            }
            BasePref::Contains { terms } if terms.is_empty() => Err(Error::Plan(
                "CONTAINS preference needs at least one search term".into(),
            )),
            _ => Ok(()),
        }
    }

    /// The transitive closure of an `EXPLICIT` graph as `(better, worse)`
    /// pairs — also used by the rewriter to emit pairwise SQL conditions.
    pub fn explicit_closure(&self) -> Vec<(Value, Value)> {
        match self {
            BasePref::Explicit { edges } => {
                let mut v: Vec<(Value, Value)> = transitive_closure(edges).into_iter().collect();
                v.sort_by(|(a1, b1), (a2, b2)| a1.total_cmp(a2).then_with(|| b1.total_cmp(b2)));
                v
            }
            _ => Vec::new(),
        }
    }

    fn explicit_better(&self, a: &Value, b: &Value) -> bool {
        match self {
            BasePref::Explicit { edges } => {
                transitive_closure(edges).contains(&(a.clone(), b.clone()))
            }
            _ => false,
        }
    }

    /// Depth of a value in the EXPLICIT DAG: 1 = maximal (nothing better),
    /// deeper = longer chain of better values above it. Values not
    /// mentioned in the graph are undominated, hence depth 1.
    fn explicit_depth(&self, v: &Value) -> i64 {
        self.explicit_depth_opt(v).unwrap_or(1)
    }

    fn explicit_depth_opt(&self, v: &Value) -> Option<i64> {
        let BasePref::Explicit { edges } = self else {
            return None;
        };
        // Longest chain ending at v, via memoized DFS over the edge list.
        fn depth(
            v: &Value,
            preds: &HashMap<Value, Vec<Value>>,
            memo: &mut HashMap<Value, i64>,
        ) -> i64 {
            if let Some(&d) = memo.get(v) {
                return d;
            }
            let d = preds
                .get(v)
                .map(|ps| 1 + ps.iter().map(|p| depth(p, preds, memo)).max().unwrap_or(0))
                .unwrap_or(1);
            memo.insert(v.clone(), d);
            d
        }
        let mut preds: HashMap<Value, Vec<Value>> = HashMap::new();
        for (better, worse) in edges {
            preds.entry(worse.clone()).or_default().push(better.clone());
        }
        let mut memo = HashMap::new();
        Some(depth(v, &preds, &mut memo))
    }
}

/// Transitive closure of a better-than edge list (Warshall over the value
/// universe mentioned in the edges).
fn transitive_closure(edges: &[(Value, Value)]) -> HashSet<(Value, Value)> {
    let mut closure: HashSet<(Value, Value)> = edges.iter().cloned().collect();
    let mut universe: Vec<Value> = Vec::new();
    for (a, b) in edges {
        if !universe.iter().any(|u| u.key_eq(a)) {
            universe.push(a.clone());
        }
        if !universe.iter().any(|u| u.key_eq(b)) {
            universe.push(b.clone());
        }
    }
    for k in &universe {
        for i in &universe {
            for j in &universe {
                if closure.contains(&(i.clone(), k.clone()))
                    && closure.contains(&(k.clone(), j.clone()))
                {
                    closure.insert((i.clone(), j.clone()));
                }
            }
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn around_prefers_closer_values() {
        let p = BasePref::Around { target: 14.0 };
        assert!(p.better(&v(14), &v(13)));
        assert!(p.better(&v(13), &v(10)));
        assert!(p.better(&v(15), &v(10)));
        assert!(!p.better(&v(13), &v(15))); // both distance 1 -> equivalent
        assert!(p.equiv(&v(13), &v(15)));
        assert_eq!(p.score(&v(10)), Some(4.0));
    }

    #[test]
    fn between_interval_is_perfect_inside() {
        let p = BasePref::Between {
            low: 1500.0,
            up: 2000.0,
        };
        assert_eq!(p.score(&v(1700)), Some(0.0));
        assert_eq!(p.score(&v(1400)), Some(100.0));
        assert_eq!(p.score(&v(2200)), Some(200.0));
        assert!(p.better(&v(1500), &v(1400)));
        assert!(p.equiv(&v(1500), &v(2000)));
        assert!(p.top(&v(1999), None));
        assert!(!p.top(&v(2001), None));
    }

    #[test]
    fn between_validation() {
        assert!(BasePref::Between { low: 2.0, up: 1.0 }.validate().is_err());
        assert!(BasePref::Between { low: 1.0, up: 2.0 }.validate().is_ok());
    }

    #[test]
    fn lowest_and_highest() {
        let lo = BasePref::Lowest;
        assert!(lo.better(&v(1), &v(2)));
        let hi = BasePref::Highest;
        assert!(hi.better(&v(2), &v(1)));
        assert_eq!(lo.distance(&v(5), Some(&v(2))), Some(3.0));
        assert_eq!(hi.distance(&v(2), Some(&v(5))), Some(3.0));
        assert!(hi.top(&v(5), Some(&v(5))));
        assert!(!hi.top(&v(2), Some(&v(5))));
    }

    #[test]
    fn pos_neg_levels() {
        let pos = BasePref::Pos {
            values: vec![Value::str("java"), Value::str("C++")],
        };
        assert_eq!(pos.level(&Value::str("java")), Some(1));
        assert_eq!(pos.level(&Value::str("cobol")), Some(2));
        assert!(pos.better(&Value::str("C++"), &Value::str("cobol")));
        assert!(pos.equiv(&Value::str("java"), &Value::str("C++")));

        let neg = BasePref::Neg {
            values: vec![Value::str("downtown")],
        };
        assert_eq!(neg.level(&Value::str("suburb")), Some(1));
        assert_eq!(neg.level(&Value::str("downtown")), Some(2));
        assert!(neg.better(&Value::str("suburb"), &Value::str("downtown")));
    }

    #[test]
    fn pospos_three_levels() {
        // Oldtimer example: white else yellow.
        let p = BasePref::PosPos {
            first: vec![Value::str("white")],
            second: vec![Value::str("yellow")],
        };
        assert_eq!(p.level(&Value::str("white")), Some(1));
        assert_eq!(p.level(&Value::str("yellow")), Some(2));
        assert_eq!(p.level(&Value::str("red")), Some(3));
        assert!(p.better(&Value::str("white"), &Value::str("yellow")));
        assert!(p.better(&Value::str("yellow"), &Value::str("red")));
        assert!(p.better(&Value::str("white"), &Value::str("red")));
        assert!(p.equiv(&Value::str("red"), &Value::str("green")));
    }

    #[test]
    fn posneg_neutral_middle() {
        // Opel example: roadster else not passenger.
        let p = BasePref::PosNeg {
            pos: vec![Value::str("roadster")],
            neg: vec![Value::str("passenger")],
        };
        assert_eq!(p.level(&Value::str("roadster")), Some(1));
        assert_eq!(p.level(&Value::str("pickup")), Some(2));
        assert_eq!(p.level(&Value::str("passenger")), Some(3));
    }

    #[test]
    fn explicit_transitive_closure() {
        let p = BasePref::Explicit {
            edges: vec![
                (Value::str("red"), Value::str("blue")),
                (Value::str("blue"), Value::str("grey")),
            ],
        };
        p.validate().unwrap();
        assert!(p.better(&Value::str("red"), &Value::str("blue")));
        assert!(p.better(&Value::str("red"), &Value::str("grey"))); // transitivity
        assert!(!p.better(&Value::str("grey"), &Value::str("red")));
        // Unmentioned values are incomparable.
        assert!(!p.better(&Value::str("red"), &Value::str("green")));
        assert!(!p.better(&Value::str("green"), &Value::str("grey")));
        assert_eq!(p.explicit_closure().len(), 3);
        assert_eq!(p.level(&Value::str("red")), Some(1));
        assert_eq!(p.level(&Value::str("blue")), Some(2));
        assert_eq!(p.level(&Value::str("grey")), Some(3));
        assert_eq!(p.level(&Value::str("green")), Some(1)); // undominated
    }

    #[test]
    fn explicit_cycle_rejected() {
        let p = BasePref::Explicit {
            edges: vec![
                (Value::str("a"), Value::str("b")),
                (Value::str("b"), Value::str("c")),
                (Value::str("c"), Value::str("a")),
            ],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn contains_counts_matched_terms() {
        let p = BasePref::Contains {
            terms: vec!["skyline".into(), "pareto".into()],
        };
        assert_eq!(p.level(&Value::str("The Skyline operator")), Some(2));
        assert_eq!(
            p.level(&Value::str("skyline and PARETO optimality")),
            Some(1)
        );
        assert_eq!(p.level(&Value::str("nothing relevant")), Some(3));
        assert!(p.better(&Value::str("skyline pareto"), &Value::str("skyline only")));
        assert!(BasePref::Contains { terms: vec![] }.validate().is_err());
    }

    #[test]
    fn nulls_are_incomparable() {
        let p = BasePref::Lowest;
        assert!(!p.better(&Value::Null, &v(1)));
        assert!(!p.better(&v(1), &Value::Null));
        assert!(p.equiv(&Value::Null, &Value::Null));
        assert!(!p.equiv(&Value::Null, &v(1)));
        assert_eq!(p.score(&Value::Null), None);
    }

    #[test]
    fn date_values_score_by_day() {
        use prefsql_types::Date;
        let target = Date::parse("1999-07-03").unwrap();
        let p = BasePref::Around {
            target: target.days() as f64,
        };
        let d1 = Value::Date(Date::parse("1999-07-05").unwrap());
        assert_eq!(p.score(&d1), Some(2.0));
    }

    fn arb_base() -> impl Strategy<Value = BasePref> {
        prop_oneof![
            (-100.0f64..100.0).prop_map(|t| BasePref::Around { target: t }),
            (-100.0f64..0.0, 0.0f64..100.0).prop_map(|(l, u)| BasePref::Between { low: l, up: u }),
            Just(BasePref::Lowest),
            Just(BasePref::Highest),
            proptest::collection::vec(-5i64..5, 1..4).prop_map(|vs| BasePref::Pos {
                values: vs.into_iter().map(Value::Int).collect()
            }),
            (
                proptest::collection::vec(-5i64..0, 1..3),
                proptest::collection::vec(0i64..5, 1..3)
            )
                .prop_map(|(a, b)| BasePref::PosNeg {
                    pos: a.into_iter().map(Value::Int).collect(),
                    neg: b.into_iter().map(Value::Int).collect(),
                }),
        ]
    }

    fn arb_val() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-100i64..100).prop_map(Value::Int),
            (-100.0f64..100.0).prop_map(Value::Float),
            Just(Value::Null),
        ]
    }

    proptest! {
        // `better` must be a strict partial order on every base preference.
        #[test]
        fn better_is_irreflexive(p in arb_base(), a in arb_val()) {
            prop_assert!(!p.better(&a, &a));
        }

        #[test]
        fn better_is_asymmetric(p in arb_base(), a in arb_val(), b in arb_val()) {
            if p.better(&a, &b) {
                prop_assert!(!p.better(&b, &a));
            }
        }

        #[test]
        fn better_is_transitive(
            p in arb_base(),
            a in arb_val(),
            b in arb_val(),
            c in arb_val()
        ) {
            if p.better(&a, &b) && p.better(&b, &c) {
                prop_assert!(p.better(&a, &c));
            }
        }

        #[test]
        fn equiv_is_an_equivalence_compatible_with_better(
            p in arb_base(),
            a in arb_val(),
            b in arb_val(),
            c in arb_val()
        ) {
            prop_assert!(p.equiv(&a, &a));
            prop_assert_eq!(p.equiv(&a, &b), p.equiv(&b, &a));
            // Substitution property: equivalents relate identically.
            if p.equiv(&a, &b) {
                prop_assert_eq!(p.better(&a, &c), p.better(&b, &c));
                prop_assert_eq!(p.better(&c, &a), p.better(&c, &b));
            }
        }
    }
}
