//! The Best-Matches-Only (BMO) query model (paper §2.2.5).
//!
//! Given the slot vectors of the WHERE-qualified candidate tuples, BMO
//! returns exactly the non-dominated ("maximal") ones. The paper's
//! perfect-match short-circuit is an optimization, not a semantic change:
//! a perfect match dominates every non-perfect tuple, so when perfect
//! matches exist they *are* the maximal set (provided no tuple opts out of
//! comparability via NULL slots — the implementation guards for that).

use crate::compose::Preference;
use prefsql_types::Value;
use std::collections::HashMap;

/// Indices of the maximal slot vectors under `pref`, in input order.
///
/// `BUT ONLY` thresholds must be applied by the caller *before* calling
/// this function ("consider all other values within the quality threshold,
/// but discard worse values on the fly" — §2.2.5).
///
/// ```
/// use prefsql_pref::{bmo, BasePref, Preference};
/// use prefsql_types::Value;
///
/// let p = Preference::single(BasePref::Lowest).unwrap();
/// let candidates = vec![
///     vec![Value::Int(5)],
///     vec![Value::Int(3)],
///     vec![Value::Int(3)],
/// ];
/// assert_eq!(bmo(&candidates, &p), vec![1, 2]); // both minima survive
/// ```
pub fn bmo(slot_vectors: &[Vec<Value>], pref: &Preference) -> Vec<usize> {
    // Perfect-match short-circuit (§2.2.5, step 1). Sound only when no
    // candidate has a NULL slot: NULL-slotted tuples are incomparable to
    // everything and must survive as maximal.
    let any_null = slot_vectors.iter().any(|v| v.iter().any(Value::is_null));
    if !any_null {
        let perfect: Vec<usize> = slot_vectors
            .iter()
            .enumerate()
            .filter(|(_, v)| pref.is_perfect(v))
            .map(|(i, _)| i)
            .collect();
        if !perfect.is_empty() {
            return perfect;
        }
    }
    crate::algo::maximal_naive(slot_vectors, pref)
}

/// Per-group BMO for the `GROUPING` clause: dominance is only tested
/// between tuples that agree on the grouping key ("performing with soft
/// constraints what GROUP BY does with hard constraints").
///
/// `keys[i]` is the evaluated grouping-attribute vector of candidate `i`.
/// Results come back sorted in input order.
pub fn bmo_grouped(
    slot_vectors: &[Vec<Value>],
    keys: &[Vec<Value>],
    pref: &Preference,
) -> Vec<usize> {
    assert_eq!(
        slot_vectors.len(),
        keys.len(),
        "one grouping key per candidate"
    );
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, key) in keys.iter().enumerate() {
        groups.entry(normalize_key(key)).or_default().push(i);
    }
    let mut out = Vec::new();
    for members in groups.values() {
        let local: Vec<Vec<Value>> = members.iter().map(|&i| slot_vectors[i].clone()).collect();
        for local_idx in bmo(&local, pref) {
            out.push(members[local_idx]);
        }
    }
    out.sort_unstable();
    out
}

/// Normalize a grouping key so that values that compare `key_eq` (e.g.
/// `Int(5)` and `Float(5.0)`) land in the same hash bucket *and* compare
/// equal under `==`.
fn normalize_key(key: &[Value]) -> Vec<Value> {
    key.iter()
        .map(|v| match v {
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() && f.abs() < i64::MAX as f64 => {
                Value::Int(*f as i64)
            }
            other => other.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::BasePref;
    use crate::compose::PrefNode;

    fn slots(rows: &[&[i64]]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    fn pareto_lowest2() -> Preference {
        Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![BasePref::Lowest, BasePref::Lowest],
        )
        .unwrap()
    }

    #[test]
    fn bmo_returns_pareto_front() {
        let sv = slots(&[&[1, 5], &[2, 2], &[5, 1], &[3, 3], &[5, 5]]);
        let max = bmo(&sv, &pareto_lowest2());
        // (3,3) dominated by (2,2); (5,5) dominated by everything.
        assert_eq!(max, vec![0, 1, 2]);
    }

    #[test]
    fn perfect_match_shortcuts() {
        let p = Preference::new(
            PrefNode::Pareto(vec![PrefNode::Base { slot: 0 }, PrefNode::Base { slot: 1 }]),
            vec![
                BasePref::Around { target: 14.0 },
                BasePref::Pos {
                    values: vec![Value::str("java")],
                },
            ],
        )
        .unwrap();
        let sv = vec![
            vec![Value::Int(14), Value::str("java")], // perfect
            vec![Value::Int(14), Value::str("cobol")],
            vec![Value::Int(13), Value::str("java")],
        ];
        assert_eq!(bmo(&sv, &p), vec![0]);
    }

    #[test]
    fn null_slots_survive_as_incomparable() {
        let p = Preference::single(BasePref::Around { target: 10.0 }).unwrap();
        let sv = vec![
            vec![Value::Int(10)], // perfect
            vec![Value::Null],    // incomparable — must survive
            vec![Value::Int(12)], // dominated
        ];
        assert_eq!(bmo(&sv, &p), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(bmo(&[], &pareto_lowest2()).is_empty());
    }

    #[test]
    fn single_candidate_is_maximal() {
        let sv = slots(&[&[100, 100]]);
        assert_eq!(bmo(&sv, &pareto_lowest2()), vec![0]);
    }

    #[test]
    fn grouped_bmo_isolates_groups() {
        // LOWEST(price) GROUPING make: cheapest per make.
        let p = Preference::single(BasePref::Lowest).unwrap();
        let sv = slots(&[&[30], &[20], &[50], &[40], &[20]]);
        let keys = vec![
            vec![Value::str("audi")],
            vec![Value::str("audi")],
            vec![Value::str("bmw")],
            vec![Value::str("bmw")],
            vec![Value::str("vw")],
        ];
        let max = bmo_grouped(&sv, &keys, &p);
        assert_eq!(max, vec![1, 3, 4]);
    }

    #[test]
    fn grouped_bmo_unifies_numeric_keys() {
        let p = Preference::single(BasePref::Lowest).unwrap();
        let sv = slots(&[&[3], &[1]]);
        let keys = vec![vec![Value::Int(5)], vec![Value::Float(5.0)]];
        // 5 and 5.0 are the same group: only the cheaper survives.
        assert_eq!(bmo_grouped(&sv, &keys, &p), vec![1]);
    }

    #[test]
    fn grouped_ties_keep_all_maxima() {
        let p = Preference::single(BasePref::Lowest).unwrap();
        let sv = slots(&[&[10], &[10]]);
        let keys = vec![vec![Value::str("a")], vec![Value::str("a")]];
        assert_eq!(bmo_grouped(&sv, &keys, &p), vec![0, 1]);
    }
}
