//! External-memory skyline: multi-pass block-nested-loops with a
//! bounded window and spill-to-disk overflow runs — \[BKS01\]'s original
//! formulation, where the candidate set need not fit in memory.
//!
//! # The multi-pass loop
//!
//! ```text
//!            input stream (pass 0)          run k (pass k+1)
//!                  │                              │
//!                  ▼                              ▼
//!          ┌──────────────────── window (≤ budget bytes) ───┐
//!          │ dominated candidate → dropped                  │
//!          │ candidate dominates entry → entry evicted      │
//!          │ incomparable, window full → spilled to run k+1 │
//!          └──────────────┬───────────────────────┬─────────┘
//!                 winners │                       │ overflow
//!                         ▼                       ▼
//!                   result set           re-fed next pass …
//!                                        until the run is empty
//! ```
//!
//! # Why tuples exit early (the timestamp bookkeeping)
//!
//! Every window entry records how many tuples had already been spilled
//! to the pass's overflow run when it entered (`seen_spills`). A tuple
//! spilled *after* an entry arrived was compared against it at spill
//! time — so an entry only still owes comparisons to the first
//! `seen_spills` tuples of the run. Re-feeding a run in write order
//! therefore lets a carried entry be confirmed **maximal and output
//! mid-pass** as soon as the read position reaches its `seen_spills`,
//! freeing window space; entries that entered before the pass's first
//! spill are maximal at end of pass. Dominance checks run in both
//! directions on every comparison, so no domination is ever missed —
//! only repeated comparisons are skipped.
//!
//! The window always admits at least one tuple even when a single tuple
//! exceeds the budget, which guarantees every pass retires at least one
//! candidate and the loop terminates.
//!
//! Results are identical — same set, same input order — to every
//! in-memory algorithm in [`crate::algo`]; the repo's differential
//! harness pins that across random composition trees and window budgets.

use crate::compose::Preference;
use prefsql_storage::spill::{tuple_spill_bytes, RunReader, RunWriter, SpillManager};
use prefsql_types::{Error, Result, Tuple, Value};

// The metrics type moved next to the spill substrate it describes (the
// Grace hash join in the engine reports it too); re-exported here so
// `prefsql_pref::SpillMetrics` keeps working.
pub use prefsql_storage::spill::SpillMetrics;

/// One window slot of the external BNL.
struct WinEntry {
    /// Input sequence number (winners are returned in this order).
    seq: u64,
    /// Tuples already spilled in the entry's pass when it entered — the
    /// prefix of the overflow run it has not been compared against.
    seen_spills: u64,
    /// True once the entry survived into a later pass.
    carried: bool,
    /// Byte weight charged against the window budget.
    bytes: usize,
    row: Tuple,
}

/// Spilled tuples buffered into frames of this many before hitting the
/// run writer — one frame header and one write call per batch instead
/// of per tuple.
const SPILL_BATCH: usize = 256;

/// The bounded-window, spill-backed skyline state machine.
///
/// Feed candidate rows with [`ExternalSkyline::push`] /
/// [`ExternalSkyline::push_batch`] (pass 0), then call
/// [`ExternalSkyline::finish`] to drive the overflow passes and collect
/// the maximal set. Rows carry their base-preference *slot values* as a
/// contiguous column range starting at `slot_start` (the native operator
/// plans them that way; standalone callers put the slots first).
pub struct ExternalSkyline<'a> {
    pref: &'a Preference,
    slot_start: usize,
    budget: usize,
    spill: SpillManager,
    window: Vec<WinEntry>,
    window_bytes: usize,
    run: Option<RunWriter>,
    /// Tuples awaiting their batched write to the current run.
    spill_buf: Vec<Tuple>,
    spilled_this_pass: u64,
    winners: Vec<(u64, Tuple)>,
    next_seq: u64,
    passes: u32,
}

impl<'a> ExternalSkyline<'a> {
    /// A machine with a fresh [`SpillManager`] (runs under the system
    /// temp dir) and a window budget of `window_bytes`.
    pub fn new(pref: &'a Preference, slot_start: usize, window_bytes: usize) -> Result<Self> {
        Ok(Self::with_manager(
            pref,
            slot_start,
            window_bytes,
            SpillManager::new()?,
        ))
    }

    /// A machine spilling through a caller-provided manager — the native
    /// operator shares one manager between its `BUT ONLY` spool run and
    /// the skyline passes so the metrics cover both.
    pub fn with_manager(
        pref: &'a Preference,
        slot_start: usize,
        window_bytes: usize,
        spill: SpillManager,
    ) -> Self {
        ExternalSkyline {
            pref,
            slot_start,
            budget: window_bytes,
            spill,
            window: Vec::new(),
            window_bytes: 0,
            run: None,
            spill_buf: Vec::new(),
            spilled_this_pass: 0,
            winners: Vec::new(),
            next_seq: 0,
            passes: 0,
        }
    }

    fn slots_of(row: &Tuple, slot_start: usize, arity: usize) -> &[Value] {
        &row.values()[slot_start..slot_start + arity]
    }

    /// Compare `row` against the window: drop it if dominated, evict
    /// entries it dominates, then keep it in the window (budget
    /// permitting) or spill it to the current pass's overflow run.
    fn process(&mut self, row: Tuple, seq: u64) -> Result<()> {
        let arity = self.pref.arity();
        let slots = Self::slots_of(&row, self.slot_start, arity);
        let mut k = 0;
        while k < self.window.len() {
            let w_slots = Self::slots_of(&self.window[k].row, self.slot_start, arity);
            if self.pref.better(w_slots, slots) {
                return Ok(()); // dominated: the candidate dies here
            }
            if self.pref.better(slots, w_slots) {
                let evicted = self.window.swap_remove(k);
                self.window_bytes -= evicted.bytes;
            } else {
                k += 1;
            }
        }
        let bytes = tuple_spill_bytes(&row);
        if self.window.is_empty() || self.window_bytes + bytes <= self.budget {
            self.window.push(WinEntry {
                seq,
                seen_spills: self.spilled_this_pass,
                carried: false,
                bytes,
                row,
            });
            self.window_bytes += bytes;
        } else {
            // The sequence number rides along as an appended column so a
            // later pass can restore input order.
            let mut values = row.into_values();
            values.push(Value::Int(seq as i64));
            self.spill_buf.push(Tuple::new(values));
            self.spilled_this_pass += 1;
            if self.spill_buf.len() >= SPILL_BATCH {
                self.flush_spills()?;
            }
        }
        Ok(())
    }

    /// Write the buffered spills to the current run (opening it on the
    /// pass's first flush) as one frame.
    fn flush_spills(&mut self) -> Result<()> {
        if self.spill_buf.is_empty() {
            return Ok(());
        }
        let writer = match self.run.as_mut() {
            Some(w) => w,
            None => self.run.insert(self.spill.begin_run()?),
        };
        writer.write_batch(&self.spill_buf)?;
        self.spill_buf.clear();
        Ok(())
    }

    /// Feed one candidate row (pass 0).
    pub fn push(&mut self, row: Tuple) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.process(row, seq)
    }

    /// Feed a batch of candidate rows (pass 0) — the native operator
    /// hands over whole `next_batch` buffers.
    pub fn push_batch(&mut self, rows: impl IntoIterator<Item = Tuple>) -> Result<()> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Move the carried entries whose owed run prefix ends at `pos` out
    /// of the window — they have now been compared against everything
    /// still alive, so they are maximal.
    fn release_carried(&mut self, pos: u64) {
        let mut k = 0;
        while k < self.window.len() {
            if self.window[k].carried && self.window[k].seen_spills <= pos {
                let e = self.window.swap_remove(k);
                self.window_bytes -= e.bytes;
                self.winners.push((e.seq, e.row));
            } else {
                k += 1;
            }
        }
    }

    /// End of a pass: entries that entered before the pass's first spill
    /// (and all remaining carried ones) are maximal; the rest survive
    /// into the next pass as carried entries.
    fn harvest_pass(&mut self) {
        let mut kept = Vec::new();
        let mut kept_bytes = 0;
        for mut e in self.window.drain(..) {
            if e.carried || e.seen_spills == 0 {
                self.winners.push((e.seq, e.row));
            } else {
                e.carried = true;
                kept_bytes += e.bytes;
                kept.push(e);
            }
        }
        self.window = kept;
        self.window_bytes = kept_bytes;
    }

    /// Drive the overflow passes until no run remains, then return the
    /// maximal rows as `(input sequence, row)` pairs sorted by sequence
    /// — i.e. in input order, like every in-memory algorithm — plus the
    /// spill metrics.
    pub fn finish(mut self) -> Result<(Vec<(u64, Tuple)>, SpillMetrics)> {
        self.passes = 1;
        loop {
            self.flush_spills()?;
            let run = match self.run.take() {
                Some(writer) => {
                    let run = writer.finish()?;
                    self.spill.record_run(&run);
                    Some(run)
                }
                None => None,
            };
            self.harvest_pass();
            let Some(run) = run else {
                // Nothing spilled this pass: every survivor was compared
                // against the whole remaining stream — all harvested.
                debug_assert!(self.window.is_empty());
                break;
            };
            self.passes += 1;
            self.spilled_this_pass = 0;
            let mut reader = RunReader::open(&run)?;
            let mut pos: u64 = 0;
            while let Some(stamped) = reader.next_tuple()? {
                self.release_carried(pos);
                let mut values = stamped.into_values();
                let seq = match values.pop() {
                    Some(Value::Int(s)) => s as u64,
                    other => {
                        return Err(Error::Io(format!(
                            "corrupt spill run: missing sequence column, got {other:?}"
                        )))
                    }
                };
                self.process(Tuple::new(values), seq)?;
                pos += 1;
            }
            drop(reader);
            run.delete()?;
        }
        self.winners.sort_unstable_by_key(|(seq, _)| *seq);
        let metrics = SpillMetrics {
            runs_written: self.spill.runs_written(),
            bytes_spilled: self.spill.bytes_spilled(),
            passes: self.passes,
            spill_dir: (self.spill.runs_written() > 0).then(|| self.spill.dir().to_path_buf()),
        };
        Ok((std::mem::take(&mut self.winners), metrics))
        // `self.spill` drops here, removing the run directory.
    }
}

/// Estimated spill bytes of a slot-vector candidate set — the quantity
/// [`crate::algo::should_spill`] weighs against the window budget,
/// summed from the run encoding's own size table so the estimate can't
/// drift from the true on-disk size.
pub fn slot_vectors_bytes(slot_vectors: &[Vec<Value>]) -> usize {
    use prefsql_storage::spill::value_spill_bytes;
    slot_vectors
        .iter()
        .map(|sv| 4 + sv.iter().map(value_spill_bytes).sum::<usize>())
        .sum()
}

/// The external-memory maximal-set selection over materialized slot
/// vectors: multi-pass BNL with a window bounded at `window_bytes`.
/// Returns winner indices sorted in input order — identical to
/// [`crate::algo::maximal_bnl`] — plus the spill metrics.
pub fn maximal_external(
    slot_vectors: &[Vec<Value>],
    pref: &Preference,
    window_bytes: usize,
) -> Result<(Vec<usize>, SpillMetrics)> {
    let mut machine = ExternalSkyline::new(pref, 0, window_bytes)?;
    for sv in slot_vectors {
        machine.push(Tuple::new(sv.clone()))?;
    }
    let (winners, metrics) = machine.finish()?;
    Ok((
        winners.into_iter().map(|(seq, _)| seq as usize).collect(),
        metrics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::maximal_naive;
    use crate::base::BasePref;
    use crate::compose::PrefNode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pareto(d: usize) -> Preference {
        let root = if d == 1 {
            PrefNode::Base { slot: 0 }
        } else {
            PrefNode::Pareto((0..d).map(|slot| PrefNode::Base { slot }).collect())
        };
        Preference::new(root, vec![BasePref::Lowest; d]).unwrap()
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| Value::Int(rng.gen_range(0..50))).collect())
            .collect()
    }

    #[test]
    fn agrees_with_naive_across_window_budgets() {
        for seed in 0..6 {
            for d in [1, 2, 3] {
                let pts = random_points(150, d, seed * 13 + d as u64);
                let p = pareto(d);
                let expected = maximal_naive(&pts, &p);
                // Budgets from "everything fits" down to "one tuple".
                for budget in [1 << 20, 4096, 256, 64, 0] {
                    let (got, _) = maximal_external(&pts, &p, budget).unwrap();
                    assert_eq!(got, expected, "budget={budget} d={d} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn anti_correlated_data_forces_many_passes() {
        // x + y = const: nothing dominates anything, so the whole input
        // is the skyline and a small window must spill and re-feed.
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..300)
            .map(|i| vec![Value::Int(i), Value::Int(300 - i)])
            .collect();
        let (got, metrics) = maximal_external(&pts, &p, 256).unwrap();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
        assert!(metrics.runs_written >= 2, "{metrics:?}");
        assert!(metrics.passes >= 3, "{metrics:?}");
        assert!(metrics.bytes_spilled > 0, "{metrics:?}");
        let dir = metrics.spill_dir.expect("spilling records its directory");
        assert!(!dir.exists(), "finish() must remove the spill directory");
    }

    #[test]
    fn fitting_input_never_spills() {
        let p = pareto(2);
        let pts = random_points(100, 2, 9);
        let (got, metrics) = maximal_external(&pts, &p, 1 << 20).unwrap();
        assert_eq!(got, maximal_naive(&pts, &p));
        assert_eq!(metrics.runs_written, 0);
        assert_eq!(metrics.bytes_spilled, 0);
        assert_eq!(metrics.passes, 1);
        assert_eq!(metrics.spill_dir, None);
    }

    #[test]
    fn duplicates_survive_spilling_together() {
        let p = pareto(2);
        // All-identical points are pairwise incomparable: every copy is
        // maximal, and a tiny window spills most of them repeatedly.
        let pts = vec![vec![Value::Int(3), Value::Int(3)]; 40];
        let (got, metrics) = maximal_external(&pts, &p, 0).unwrap();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        assert!(metrics.passes >= 2, "{metrics:?}");
    }

    #[test]
    fn correlated_data_single_winner_any_budget() {
        let p = pareto(2);
        let pts: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        for budget in [0, 64, 1 << 20] {
            let (got, _) = maximal_external(&pts, &p, budget).unwrap();
            assert_eq!(got, vec![0], "budget={budget}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let p = pareto(2);
        let (got, metrics) = maximal_external(&[], &p, 0).unwrap();
        assert!(got.is_empty());
        assert_eq!(metrics.passes, 1);
        let one = vec![vec![Value::Int(1), Value::Int(2)]];
        let (got, _) = maximal_external(&one, &p, 0).unwrap();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn prioritized_preference_with_nulls_agrees() {
        let p = Preference::new(
            PrefNode::Prioritized(vec![
                PrefNode::Base { slot: 0 },
                PrefNode::Pareto(vec![PrefNode::Base { slot: 1 }, PrefNode::Base { slot: 2 }]),
            ]),
            vec![BasePref::Lowest, BasePref::Lowest, BasePref::Highest],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let pts: Vec<Vec<Value>> = (0..180)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        if rng.gen_range(0..5) == 0 {
                            Value::Null
                        } else {
                            Value::Int(rng.gen_range(0..8))
                        }
                    })
                    .collect()
            })
            .collect();
        let expected = maximal_naive(&pts, &p);
        for budget in [0, 128, 1024] {
            let (got, _) = maximal_external(&pts, &p, budget).unwrap();
            assert_eq!(got, expected, "budget={budget}");
        }
    }

    /// Slot columns need not start at 0: rows with payload columns in
    /// front (the native operator's layout) select the same winners.
    #[test]
    fn slot_offset_layout_matches_plain_layout() {
        let p = pareto(2);
        let pts = random_points(120, 2, 5);
        let expected = maximal_naive(&pts, &p);
        let mut machine = ExternalSkyline::new(&p, 2, 96).unwrap();
        for (i, sv) in pts.iter().enumerate() {
            // payload: (id, name), then the two slot columns.
            let mut values = vec![Value::Int(i as i64), Value::Str(format!("row{i}"))];
            values.extend(sv.iter().cloned());
            machine.push(Tuple::new(values)).unwrap();
        }
        let (winners, _) = machine.finish().unwrap();
        let got: Vec<usize> = winners.iter().map(|(seq, _)| *seq as usize).collect();
        assert_eq!(got, expected);
        // Winner rows come back intact, payload included.
        for (seq, row) in winners {
            assert_eq!(row[0], Value::Int(seq as i64));
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn slot_vectors_bytes_matches_tuple_estimate() {
        // Every Value variant, so the estimate can't silently diverge
        // from the run encoding for any type.
        let pts = vec![
            vec![Value::Int(1), Value::Str("abc".into())],
            vec![Value::Null, Value::Float(2.0)],
            vec![
                Value::Bool(true),
                Value::Date(prefsql_types::Date::from_days(10_000)),
            ],
        ];
        let by_tuple: usize = pts
            .iter()
            .map(|sv| tuple_spill_bytes(&Tuple::new(sv.clone())))
            .sum();
        assert_eq!(slot_vectors_bytes(&pts), by_tuple);
    }
}
