//! # prefsql-pref
//!
//! The preference model of the paper (§2.1–§2.2): preferences as **strict
//! partial orders** over attribute values.
//!
//! * [`BasePref`] — every built-in base preference type (`AROUND`,
//!   `BETWEEN`, `LOWEST`, `HIGHEST`, `POS`, `NEG`, `POS/POS`, `POS/NEG`,
//!   `EXPLICIT`, `CONTAINS`) with its *better-than* relation, its numeric
//!   level/distance semantics and the quality functions `TOP`, `LEVEL`,
//!   `DISTANCE` (§2.2.3);
//! * [`Preference`] — complex preferences assembled with **Pareto
//!   accumulation** (`AND`) and **prioritization** (`CASCADE`), evaluated
//!   over *slot vectors* (the base-preference expressions of a tuple,
//!   pre-evaluated by the engine);
//! * [`bmo()`](bmo::bmo) — the Best-Matches-Only query model (§2.2.5);
//! * [`algo`] — maximal-set algorithms: the paper's abstract nested-loop
//!   selection method (§3.2), BNL \[BKS01\] and SFS, used as native
//!   baselines in the ablation experiments, plus [`SkylineAlgo`] with a
//!   cost-based [`SkylineAlgo::Auto`] mode that picks among them from
//!   input cardinality and preference shape — and, above
//!   [`PARALLEL_CUTOFF`] candidates, runs the decomposable window
//!   ([`maximal_parallel`]) across scoped OS threads;
//! * [`external`] — the external-memory skyline: \[BKS01\]'s multi-pass
//!   BNL with a bounded window and spill-to-disk overflow runs
//!   ([`ExternalSkyline`]), engaged by [`should_spill`] when the
//!   estimated candidate bytes exceed the session's window budget;
//! * [`incremental`] — the skyline delta algebra behind
//!   `MATERIALIZED PREFERENCE VIEW`: per-winner domination counts let
//!   INSERT/DELETE/UPDATE maintain the BMO result without recomputation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod base;
pub mod bmo;
pub mod compose;
pub mod external;
pub mod incremental;

pub use algo::{
    choose_algo, choose_degree, maximal, maximal_bnl, maximal_naive, maximal_parallel, maximal_sfs,
    maximal_with_threads, should_spill, SkylineAlgo, PARALLEL_CUTOFF,
};
pub use base::BasePref;
pub use bmo::{bmo, bmo_grouped};
pub use compose::{PrefNode, Preference};
pub use external::{maximal_external, ExternalSkyline, SpillMetrics};
pub use incremental::{apply_delete, apply_insert, apply_replace, check_invariant, rebuild};
