//! Materialized preference views: stored state for incremental skyline
//! maintenance.
//!
//! A `CREATE MATERIALIZED PREFERENCE VIEW` stores, per base-table row, the
//! evaluated preference slot vector plus bookkeeping that makes DML
//! maintenance incremental: each qualifying row carries the number of
//! *winners* that dominate it. The invariant maintained by the engine is
//!
//! ```text
//! e.dominators == |{ w : w.winner && better(w.slots, e.slots) }|
//! e.winner     ⇔  e.qualifies && e.dominators == 0
//! ```
//!
//! which lets an INSERT run one dominance pass against the current entries
//! and a DELETE of a winner promote exactly the rows it exclusively
//! dominated — no full recomputation. The storage layer only holds the
//! data; the dominance algebra lives in `prefsql-pref` and the hook points
//! in `prefsql-engine` (the crate dependency order forbids anything
//! smarter here, just like [`crate::catalog::ViewDef`] stores SQL text).

use prefsql_types::{Schema, Tuple, Value};

/// Per-base-row state tracked by a materialized preference view.
///
/// Entries mirror the base table's row ids 1:1 and in order, so reading
/// the view (winners, in entry order) is byte-identical to running the
/// defining BMO query from scratch — the order contract every skyline
/// algorithm in `prefsql-pref` honours.
#[derive(Debug, Clone, PartialEq)]
pub struct MatViewEntry {
    /// The base-table row (the view serves winners un-projected; readers
    /// apply the definition's projection on top).
    pub output: Tuple,
    /// The evaluated base-preference expressions of this row.
    pub slots: Vec<Value>,
    /// True iff the row passed the view's WHERE clause. Non-qualifying
    /// rows are tracked (to keep ids aligned) but never compete.
    pub qualifies: bool,
    /// True iff the row is currently in the BMO result.
    pub winner: bool,
    /// Number of winners strictly better than this row (0 for winners).
    pub dominators: u32,
}

/// A stored materialized preference view.
#[derive(Debug, Clone, PartialEq)]
pub struct MatViewDef {
    /// View name (lower-cased).
    pub name: String,
    /// The defining query in canonical SQL text (used for plan matching
    /// and for recompiling the preference on maintenance).
    pub sql: String,
    /// The single base table the view reads (lower-cased).
    pub base_table: String,
    /// The qualified base-table schema entry rows carry (the schema the
    /// defining query's slot expressions evaluate against).
    pub schema: Schema,
    /// One entry per base-table row, in row-id order.
    pub entries: Vec<MatViewEntry>,
    /// True when maintenance could not keep the view current (e.g. the
    /// base table was dropped, or a maintenance step failed). Stale views
    /// refuse reads until `REFRESH MATERIALIZED PREFERENCE VIEW` rebuilds
    /// them.
    pub stale: bool,
}

impl MatViewDef {
    /// The current view contents: winners, in entry (= base row) order.
    pub fn winners(&self) -> Vec<Tuple> {
        self.entries
            .iter()
            .filter(|e| e.winner)
            .map(|e| e.output.clone())
            .collect()
    }

    /// Number of rows currently served by the view.
    pub fn winner_count(&self) -> usize {
        self.entries.iter().filter(|e| e.winner).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{tuple, Column, DataType};

    #[test]
    fn winners_preserve_entry_order() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        let entry = |x: i64, winner: bool| MatViewEntry {
            output: tuple![x],
            slots: vec![Value::Int(x)],
            qualifies: true,
            winner,
            dominators: u32::from(!winner),
        };
        let v = MatViewDef {
            name: "v".into(),
            sql: "SELECT x FROM t PREFERRING LOWEST x".into(),
            base_table: "t".into(),
            schema,
            entries: vec![entry(3, true), entry(9, false), entry(3, true)],
            stale: false,
        };
        assert_eq!(v.winners(), vec![tuple![3], tuple![3]]);
        assert_eq!(v.winner_count(), 2);
    }
}
