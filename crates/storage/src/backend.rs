//! The storage-backend seam: one trait, two row stores.
//!
//! [`StorageBackend`] is the access-path boundary the paper's
//! host-DBMS portability story implies (Preference SQL as a layer over
//! Oracle/DB2): everything above it — catalog, planner, operators —
//! addresses rows by *rid* (dense `0..row_count`, insertion order) and
//! never sees how they are stored. Two implementations:
//!
//! * [`MemBackend`] — the original in-memory `Vec<Tuple>`; the default,
//!   byte-identical to the pre-seam engine. Exposes its slice through
//!   [`StorageBackend::as_mem`] so scans keep the zero-copy fast path.
//! * [`PagedBackend`] — slotted pages in a per-table heap file
//!   ([`crate::page`], [`crate::heap`]) cached by a shared pinning
//!   [`BufferPool`]. Base tables can exceed both RAM and the pool;
//!   placement is append-only (tail page or a fresh page, oversized
//!   tuples in jumbo chains) so a file scan by page order *is* rid
//!   order, including after reopen.
//!
//! Deletes compact: both backends renumber survivors densely, matching
//! the engine's "rid = position" contract (the paged store rewrites its
//! file; the deferred cost model matches the in-memory drain). Clones
//! of a paged backend share the heap file and pool (`Arc`) but snapshot
//! the row directory — the catalog's `Clone` is only used for
//! whole-catalog copies in tests, never for live aliasing.

use crate::codec;
use crate::heap::HeapFile;
use crate::page::{self, JUMBO_PAYLOAD, MAX_INLINE_TUPLE};
use crate::pool::BufferPool;
use prefsql_types::{Error, Result, Tuple};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Row storage behind a [`crate::Table`]; see the module docs.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// `"mem"` or `"paged"` — EXPLAIN's `backend=` label.
    fn label(&self) -> &'static str;

    /// Number of stored rows (rids are dense `0..row_count`).
    fn row_count(&self) -> usize;

    /// Fetch one row by rid.
    fn fetch(&self, rid: usize) -> Result<Tuple>;

    /// Append up to `max` rows starting at rid `*pos` onto `out`,
    /// advancing `*pos`. Returns `false` once the scan is exhausted.
    fn scan(&self, pos: &mut usize, out: &mut Vec<Tuple>, max: usize) -> Result<bool>;

    /// Append a row; returns its rid (always the previous row count).
    fn insert(&mut self, row: Tuple) -> Result<usize>;

    /// Remove the rows in `doomed`, compacting rids; returns how many
    /// were removed.
    fn delete(&mut self, doomed: &HashSet<usize>) -> Result<usize>;

    /// Replace the row at `rid` in place (same rid afterwards).
    fn replace(&mut self, rid: usize, row: Tuple) -> Result<()>;

    /// The backing slice, for the in-memory backend only — the scan
    /// operators' zero-copy fast path.
    fn as_mem(&self) -> Option<&[Tuple]> {
        None
    }

    /// Clone into a fresh box (backends are held as trait objects).
    fn boxed_clone(&self) -> Box<dyn StorageBackend>;

    /// Release cached resources (DROP TABLE): a paged backend drops its
    /// pool pages without write-back.
    fn release(&self) -> Result<()> {
        Ok(())
    }

    /// Persist dirty state (tests and reopen paths): a paged backend
    /// flushes its pool pages and syncs the heap file.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

impl Clone for Box<dyn StorageBackend> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// The in-memory row store: a plain `Vec<Tuple>`.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    rows: Vec<Tuple>,
}

impl StorageBackend for MemBackend {
    fn label(&self) -> &'static str {
        "mem"
    }

    fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn fetch(&self, rid: usize) -> Result<Tuple> {
        self.rows
            .get(rid)
            .cloned()
            .ok_or_else(|| Error::Io(format!("row {rid} out of bounds")))
    }

    fn scan(&self, pos: &mut usize, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        if *pos >= self.rows.len() {
            return Ok(false);
        }
        let end = (*pos + max).min(self.rows.len());
        out.extend_from_slice(&self.rows[*pos..end]);
        *pos = end;
        Ok(true)
    }

    fn insert(&mut self, row: Tuple) -> Result<usize> {
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    fn delete(&mut self, doomed: &HashSet<usize>) -> Result<usize> {
        let before = self.rows.len();
        let mut rid = 0;
        self.rows.retain(|_| {
            let keep = !doomed.contains(&rid);
            rid += 1;
            keep
        });
        Ok(before - self.rows.len())
    }

    fn replace(&mut self, rid: usize, row: Tuple) -> Result<()> {
        *self
            .rows
            .get_mut(rid)
            .ok_or_else(|| Error::Io(format!("row {rid} out of bounds")))? = row;
        Ok(())
    }

    fn as_mem(&self) -> Option<&[Tuple]> {
        Some(&self.rows)
    }

    fn boxed_clone(&self) -> Box<dyn StorageBackend> {
        Box::new(self.clone())
    }
}

/// Where one rid lives in the heap file.
#[derive(Debug, Clone, Copy)]
enum RowLoc {
    /// Slot `slot` of slotted page `page`.
    Slot { page: u32, slot: u16 },
    /// A jumbo chain starting at `page`.
    Jumbo { page: u32 },
}

/// The paged heap-file row store; see the module docs.
#[derive(Debug, Clone)]
pub struct PagedBackend {
    file: Arc<HeapFile>,
    pool: Arc<BufferPool>,
    /// rid → location; insertion order, rebuilt on open by page order.
    dir: Vec<RowLoc>,
    /// Pages allocated so far.
    pages: u32,
    /// The tail slotted page new rows may still append to. `None` after
    /// a jumbo allocation — appending behind a jumbo chain would break
    /// "page order = rid order" on reopen.
    tail: Option<u32>,
}

impl PagedBackend {
    /// An empty paged store over a (fresh) heap file.
    pub fn create(file: Arc<HeapFile>, pool: Arc<BufferPool>) -> Self {
        PagedBackend {
            file,
            pool,
            dir: Vec::new(),
            pages: 0,
            tail: None,
        }
    }

    /// Open an existing heap file, rebuilding the rid directory by
    /// scanning pages in order (which is insertion order by
    /// construction).
    pub fn open(file: Arc<HeapFile>, pool: Arc<BufferPool>) -> Result<Self> {
        let pages = file.page_count()?;
        let mut dir = Vec::new();
        let mut tail = None;
        let mut skip_until = 0u32;
        for page_no in 0..pages {
            if page_no < skip_until {
                continue;
            }
            let (kind, slots, total) = pool.with_page(&file, page_no, |p| {
                let k = page::kind(p);
                Ok((
                    k,
                    if k == page::KIND_SLOTTED {
                        page::slot_count(p)
                    } else {
                        0
                    },
                    if k == page::KIND_JUMBO_FIRST {
                        page::jumbo_total(p)?
                    } else {
                        0
                    },
                ))
            })?;
            match kind {
                page::KIND_SLOTTED => {
                    for slot in 0..slots {
                        dir.push(RowLoc::Slot {
                            page: page_no,
                            slot,
                        });
                    }
                    tail = Some(page_no);
                }
                page::KIND_JUMBO_FIRST => {
                    dir.push(RowLoc::Jumbo { page: page_no });
                    skip_until = page_no + page::jumbo_pages(total);
                    tail = None;
                }
                other => {
                    return Err(Error::Io(format!(
                        "corrupt heap file: unexpected page kind {other} at page {page_no}"
                    )))
                }
            }
        }
        Ok(PagedBackend {
            file,
            pool,
            dir,
            pages,
            tail,
        })
    }

    /// The heap file this table stores rows in.
    pub fn heap_file(&self) -> &Arc<HeapFile> {
        &self.file
    }

    fn encode(row: &Tuple) -> Result<Vec<u8>> {
        let mut bytes = Vec::with_capacity(codec::tuple_spill_bytes(row));
        codec::encode_tuple(&mut bytes, row)?;
        Ok(bytes)
    }

    /// Append an encoded tuple, returning its location.
    fn place(&mut self, bytes: &[u8]) -> Result<RowLoc> {
        if bytes.len() > MAX_INLINE_TUPLE {
            let first = self.pages;
            let total = bytes.len();
            for (i, chunk) in bytes.chunks(JUMBO_PAYLOAD).enumerate() {
                let page_no = first + i as u32;
                self.pool.with_page_mut(&self.file, page_no, true, |p| {
                    page::init_jumbo(p, i == 0, total as u32, chunk);
                    Ok(())
                })?;
            }
            self.pages = first + page::jumbo_pages(total);
            self.tail = None;
            return Ok(RowLoc::Jumbo { page: first });
        }
        // Tail page if the tuple fits, else a fresh slotted page —
        // never an earlier page, so scan order stays insertion order.
        if let Some(page_no) = self.tail {
            let placed = self.pool.with_page_mut(&self.file, page_no, false, |p| {
                if page::fits(p, bytes.len()) {
                    Ok(Some(page::append_slot(p, bytes)?))
                } else {
                    Ok(None)
                }
            })?;
            if let Some(slot) = placed {
                return Ok(RowLoc::Slot {
                    page: page_no,
                    slot,
                });
            }
        }
        let page_no = self.pages;
        let slot = self.pool.with_page_mut(&self.file, page_no, true, |p| {
            page::init_slotted(p);
            page::append_slot(p, bytes)
        })?;
        self.pages = page_no + 1;
        self.tail = Some(page_no);
        Ok(RowLoc::Slot {
            page: page_no,
            slot,
        })
    }

    fn fetch_loc(&self, loc: RowLoc) -> Result<Tuple> {
        match loc {
            RowLoc::Slot { page, slot } => self.pool.with_page(&self.file, page, |p| {
                let mut bytes = page::read_slot(p, slot)?;
                codec::decode_tuple(&mut bytes)
            }),
            RowLoc::Jumbo { page } => {
                let total = self.pool.with_page(&self.file, page, page::jumbo_total)?;
                let mut bytes = Vec::with_capacity(total);
                for i in 0..page::jumbo_pages(total) {
                    self.pool.with_page(&self.file, page + i, |p| {
                        bytes.extend_from_slice(page::jumbo_chunk(p, total - bytes.len()));
                        Ok(())
                    })?;
                }
                codec::decode_tuple(&mut &bytes[..])
            }
        }
    }

    /// Rewrite the whole heap file from `rows` (delete compaction,
    /// replaces that outgrow their page). The cached pages of the old
    /// layout are dead and dropped without write-back.
    fn rewrite(&mut self, rows: Vec<Tuple>) -> Result<()> {
        self.pool.forget_file(self.file.id())?;
        self.file.truncate()?;
        self.dir.clear();
        self.pages = 0;
        self.tail = None;
        for row in rows {
            let bytes = Self::encode(&row)?;
            let loc = self.place(&bytes)?;
            self.dir.push(loc);
        }
        Ok(())
    }

    /// Materialize every row in rid order (rewrite paths).
    fn all_rows(&self) -> Result<Vec<Tuple>> {
        let mut rows = Vec::with_capacity(self.dir.len());
        let mut pos = 0;
        while self.scan(&mut pos, &mut rows, 4096)? {}
        Ok(rows)
    }
}

impl StorageBackend for PagedBackend {
    fn label(&self) -> &'static str {
        "paged"
    }

    fn row_count(&self) -> usize {
        self.dir.len()
    }

    fn fetch(&self, rid: usize) -> Result<Tuple> {
        let loc = *self
            .dir
            .get(rid)
            .ok_or_else(|| Error::Io(format!("row {rid} out of bounds")))?;
        self.fetch_loc(loc)
    }

    fn scan(&self, pos: &mut usize, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        if *pos >= self.dir.len() {
            return Ok(false);
        }
        let end = (*pos + max).min(self.dir.len());
        while *pos < end {
            match self.dir[*pos] {
                RowLoc::Slot { page, .. } => {
                    // Decode every requested slot of this page under one
                    // pin — consecutive rids share pages by construction.
                    self.pool.with_page(&self.file, page, |p| {
                        while *pos < end {
                            let RowLoc::Slot { page: lp, slot } = self.dir[*pos] else {
                                break;
                            };
                            if lp != page {
                                break;
                            }
                            let mut bytes = page::read_slot(p, slot)?;
                            out.push(codec::decode_tuple(&mut bytes)?);
                            *pos += 1;
                        }
                        Ok(())
                    })?;
                }
                loc @ RowLoc::Jumbo { .. } => {
                    out.push(self.fetch_loc(loc)?);
                    *pos += 1;
                }
            }
        }
        Ok(true)
    }

    fn insert(&mut self, row: Tuple) -> Result<usize> {
        let bytes = Self::encode(&row)?;
        let loc = self.place(&bytes)?;
        self.dir.push(loc);
        Ok(self.dir.len() - 1)
    }

    fn delete(&mut self, doomed: &HashSet<usize>) -> Result<usize> {
        if doomed.is_empty() {
            return Ok(0);
        }
        let before = self.dir.len();
        let mut survivors = Vec::with_capacity(before.saturating_sub(doomed.len()));
        for (rid, &loc) in self.dir.iter().enumerate() {
            if !doomed.contains(&rid) {
                survivors.push(self.fetch_loc(loc)?);
            }
        }
        let removed = before - survivors.len();
        self.rewrite(survivors)?;
        Ok(removed)
    }

    fn replace(&mut self, rid: usize, row: Tuple) -> Result<()> {
        let loc = *self
            .dir
            .get(rid)
            .ok_or_else(|| Error::Io(format!("row {rid} out of bounds")))?;
        let bytes = Self::encode(&row)?;
        if let RowLoc::Slot { page, slot } = loc {
            if bytes.len() <= MAX_INLINE_TUPLE {
                let done = self.pool.with_page_mut(&self.file, page, false, |p| {
                    page::replace_slot(p, slot, &bytes)
                })?;
                if done {
                    return Ok(());
                }
            }
        }
        // The new encoding doesn't fit where the old row lived (or
        // crosses the jumbo boundary): rewrite the file with the row
        // substituted.
        let mut rows = self.all_rows()?;
        rows[rid] = row;
        self.rewrite(rows)
    }

    fn boxed_clone(&self) -> Box<dyn StorageBackend> {
        Box::new(self.clone())
    }

    fn release(&self) -> Result<()> {
        self.pool.forget_file(self.file.id())
    }

    fn flush(&self) -> Result<()> {
        self.pool.flush_file(self.file.id())?;
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::pool::BufferPool;
    use prefsql_types::knobs::MIN_POOL_BYTES;
    use prefsql_types::{tuple, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fixture(tag: &str, pool_bytes: usize) -> (Arc<HeapFile>, Arc<BufferPool>) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "prefsql-backend-test-{}-{}-{tag}.heap",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        (
            Arc::new(HeapFile::create(path, true).unwrap()),
            Arc::new(BufferPool::new(pool_bytes)),
        )
    }

    fn rows_of(b: &dyn StorageBackend) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut pos = 0;
        while b.scan(&mut pos, &mut out, 7).unwrap() {}
        out
    }

    #[test]
    fn paged_matches_mem_through_dml() {
        let (file, pool) = fixture("dml", MIN_POOL_BYTES);
        let mut mem = MemBackend::default();
        let mut paged = PagedBackend::create(file, pool);
        for i in 0..200i64 {
            let row = tuple![i, format!("name-{i}"), i % 7 == 0];
            assert_eq!(mem.insert(row.clone()).unwrap(), paged.insert(row).unwrap());
        }
        assert_eq!(rows_of(&mem), rows_of(&paged));
        assert_eq!(mem.fetch(123).unwrap(), paged.fetch(123).unwrap());
        // Replace in place (same size class) and with growth.
        let small = tuple![1i64, "x", false];
        let big = tuple![1i64, "y".repeat(500), true];
        for b in [&mut mem as &mut dyn StorageBackend, &mut paged] {
            b.replace(5, small.clone()).unwrap();
            b.replace(6, big.clone()).unwrap();
        }
        assert_eq!(rows_of(&mem), rows_of(&paged));
        // Compacting delete keeps order and renumbers densely.
        let doomed: HashSet<usize> = [0, 5, 6, 199, 57].into_iter().collect();
        assert_eq!(mem.delete(&doomed).unwrap(), paged.delete(&doomed).unwrap());
        assert_eq!(mem.row_count(), 195);
        assert_eq!(rows_of(&mem), rows_of(&paged));
    }

    #[test]
    fn jumbo_tuples_round_trip_and_keep_order() {
        let (file, pool) = fixture("jumbo", MIN_POOL_BYTES);
        let mut paged = PagedBackend::create(file, pool);
        let giant = "g".repeat(3 * PAGE_SIZE); // 3-page jumbo chain
        paged.insert(tuple![1i64, "before"]).unwrap();
        paged.insert(tuple![2i64, giant.clone()]).unwrap();
        paged.insert(tuple![3i64, "after"]).unwrap();
        let rows = rows_of(&paged);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], tuple![1i64, "before"]);
        assert_eq!(rows[1][1], Value::str(giant));
        assert_eq!(rows[2], tuple![3i64, "after"]);
        // The small row after the chain went to a fresh page, so page
        // order equals rid order for the reopen scan below.
        assert!(matches!(paged.dir[2], RowLoc::Slot { page, slot: 0 } if page > 1));
    }

    #[test]
    fn writeback_survives_a_cold_reopen() {
        // Write through one pool, then read the file back through a
        // *fresh* handle and pool — nothing can come from a warm cache,
        // so this pins that flush really put the dirty pages on disk.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "prefsql-backend-test-{}-{}-reopen.heap",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let expect;
        {
            let file = Arc::new(HeapFile::create(&path, false).unwrap());
            let pool = Arc::new(BufferPool::new(MIN_POOL_BYTES));
            let mut paged = PagedBackend::create(file, pool);
            let giant = "j".repeat(PAGE_SIZE * 2);
            for i in 0..100i64 {
                paged.insert(tuple![i, format!("row-{i}")]).unwrap();
            }
            paged.insert(tuple![100i64, giant]).unwrap();
            paged.insert(tuple![101i64, "tail"]).unwrap();
            expect = rows_of(&paged);
            paged.flush().unwrap();
        }
        let file = Arc::new(HeapFile::open(&path, true).unwrap());
        let pool = Arc::new(BufferPool::new(MIN_POOL_BYTES));
        let reopened = PagedBackend::open(file, pool).unwrap();
        assert_eq!(reopened.row_count(), 102);
        assert_eq!(rows_of(&reopened), expect);
    }

    #[test]
    fn table_100x_the_pool_scans_correctly() {
        // 4-page pool, ~400-page table: the scan must survive constant
        // eviction and still come back in insertion order.
        let (file, pool) = fixture("bigscan", MIN_POOL_BYTES);
        let mut paged = PagedBackend::create(file, Arc::clone(&pool));
        let pad = "p".repeat(80); // ~100 B/tuple → ~40 tuples/page
        let n = 16_000i64;
        for i in 0..n {
            paged.insert(tuple![i, pad.clone()]).unwrap();
        }
        assert!(
            paged.pages >= 400,
            "table only {} pages — not 100× the pool",
            paged.pages
        );
        let rows = rows_of(&paged);
        assert_eq!(rows.len(), n as usize);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64));
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "a 100× scan must evict: {s:?}");
    }

    #[test]
    fn clones_share_the_heap_file() {
        let (file, pool) = fixture("clone", MIN_POOL_BYTES);
        let mut paged = PagedBackend::create(file, pool);
        paged.insert(tuple![1i64]).unwrap();
        let snapshot = paged.boxed_clone();
        paged.insert(tuple![2i64]).unwrap();
        // The snapshot's directory is frozen at clone time...
        assert_eq!(snapshot.row_count(), 1);
        assert_eq!(paged.row_count(), 2);
        // ...and still reads its row through the shared file.
        assert_eq!(snapshot.fetch(0).unwrap(), tuple![1i64]);
    }
}
