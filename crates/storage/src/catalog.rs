//! The catalog: name → table / view resolution.
//!
//! Views are stored as SQL text and expanded by the engine's planner (the
//! storage layer cannot parse SQL — that would invert the crate dependency
//! order). This matches how the paper's rewriter materializes its `Aux`
//! relation through `CREATE VIEW`.

use crate::matview::MatViewDef;
use crate::table::Table;
use prefsql_types::{Error, Result};
use std::collections::HashMap;

/// A stored view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name (lower-cased).
    pub name: String,
    /// The defining query, as SQL text.
    pub sql: String,
}

/// Maps names to tables and views.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, ViewDef>,
    matviews: HashMap<String, MatViewDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. Fails if any relation of that name exists.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_owned();
        if self.contains(&name) {
            return Err(Error::Catalog(format!("relation '{name}' already exists")));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a view. Fails if any relation of that name exists.
    pub fn create_view(&mut self, name: impl Into<String>, sql: impl Into<String>) -> Result<()> {
        let name = name.into().to_ascii_lowercase();
        if self.contains(&name) {
            return Err(Error::Catalog(format!("relation '{name}' already exists")));
        }
        self.views.insert(
            name.clone(),
            ViewDef {
                name,
                sql: sql.into(),
            },
        );
        Ok(())
    }

    /// Register a materialized preference view (its name is lower-cased).
    /// Fails if any relation of that name exists.
    pub fn create_matview(&mut self, mut def: MatViewDef) -> Result<()> {
        def.name = def.name.to_ascii_lowercase();
        def.base_table = def.base_table.to_ascii_lowercase();
        if self.contains(&def.name) {
            return Err(Error::Catalog(format!(
                "relation '{}' already exists",
                def.name
            )));
        }
        self.matviews.insert(def.name.clone(), def);
        Ok(())
    }

    /// Drop a materialized preference view by name.
    pub fn drop_matview(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.matviews
            .remove(&name)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("unknown materialized preference view '{name}'")))
    }

    /// Look up a materialized preference view.
    pub fn matview(&self, name: &str) -> Option<&MatViewDef> {
        self.matviews.get(&name.to_ascii_lowercase())
    }

    /// Mutable materialized-view lookup (maintenance, REFRESH).
    pub fn matview_mut(&mut self, name: &str) -> Option<&mut MatViewDef> {
        self.matviews.get_mut(&name.to_ascii_lowercase())
    }

    /// All materialized preference view names, sorted.
    pub fn matview_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.matviews.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Names of the materialized views whose base table is `base`,
    /// sorted — the set the engine must maintain after DML on `base`.
    pub fn matviews_on(&self, base: &str) -> Vec<String> {
        let base = base.to_ascii_lowercase();
        let mut names: Vec<String> = self
            .matviews
            .values()
            .filter(|v| v.base_table == base)
            .map(|v| v.name.clone())
            .collect();
        names.sort_unstable();
        names
    }

    /// Live row count of table `name`, read from the statistics counter
    /// the table maintains at its DML choke points — the planner's
    /// cardinality source (build-side choice, EXPLAIN row counts) without
    /// touching row storage.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        self.table(name).map(Table::stat_row_count)
    }

    /// Drop a table by name.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.tables
            .remove(&name)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// Drop a view by name.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.views
            .remove(&name)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("unknown view '{name}'")))
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        let lname = name.to_ascii_lowercase();
        self.tables
            .get(&lname)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{lname}'")))
    }

    /// Mutable table lookup (INSERT, CREATE INDEX).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let lname = name.to_ascii_lowercase();
        self.tables
            .get_mut(&lname)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{lname}'")))
    }

    /// Look up a view definition.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// True if `name` refers to a table, a view, or a materialized view.
    pub fn contains(&self, name: &str) -> bool {
        let n = name.to_ascii_lowercase();
        self.tables.contains_key(&n)
            || self.views.contains_key(&n)
            || self.matviews.contains_key(&n)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// All view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{Column, DataType, Schema};

    fn t(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table(t("cars")).unwrap();
        assert!(c.table("cars").is_ok());
        assert!(c.table("CARS").is_ok()); // case-insensitive
        assert!(c.table("nope").is_err());
        assert!(c.contains("cars"));
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut c = Catalog::new();
        c.create_table(t("r")).unwrap();
        assert!(c.create_table(t("r")).is_err());
        assert!(c.create_view("r", "SELECT 1").is_err());
        c.create_view("v", "SELECT 1").unwrap();
        assert!(c.create_table(t("v")).is_err());
        assert!(c.create_view("V", "SELECT 2").is_err());
    }

    #[test]
    fn drop_table_and_view() {
        let mut c = Catalog::new();
        c.create_table(t("r")).unwrap();
        c.create_view("v", "SELECT 1").unwrap();
        c.drop_table("R").unwrap();
        assert!(!c.contains("r"));
        assert!(c.drop_table("r").is_err());
        c.drop_view("v").unwrap();
        assert!(c.view("v").is_none());
    }

    #[test]
    fn names_listing() {
        let mut c = Catalog::new();
        c.create_table(t("b")).unwrap();
        c.create_table(t("a")).unwrap();
        c.create_view("z", "SELECT 1").unwrap();
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(c.view_names(), vec!["z".to_string()]);
    }

    fn mv(name: &str, base: &str) -> MatViewDef {
        MatViewDef {
            name: name.into(),
            sql: format!("SELECT x FROM {base} PREFERRING LOWEST x"),
            base_table: base.into(),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
            entries: Vec::new(),
            stale: false,
        }
    }

    #[test]
    fn matview_registry_roundtrip() {
        let mut c = Catalog::new();
        c.create_table(t("cars")).unwrap();
        c.create_matview(mv("Best", "CARS")).unwrap();
        // Names are lower-cased and collide with every relation kind.
        assert!(c.contains("best"));
        assert!(c.create_table(t("best")).is_err());
        assert!(c.create_view("best", "SELECT 1").is_err());
        assert!(c.create_matview(mv("BEST", "cars")).is_err());
        let v = c.matview("BEST").unwrap();
        assert_eq!(v.base_table, "cars");
        c.matview_mut("best").unwrap().stale = true;
        assert!(c.matview("best").unwrap().stale);
        assert_eq!(c.matview_names(), vec!["best".to_string()]);
        c.drop_matview("Best").unwrap();
        assert!(c.drop_matview("best").is_err());
        assert!(!c.contains("best"));
    }

    #[test]
    fn matviews_on_filters_by_base_table() {
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        c.create_table(t("b")).unwrap();
        c.create_matview(mv("v2", "a")).unwrap();
        c.create_matview(mv("v1", "a")).unwrap();
        c.create_matview(mv("w", "b")).unwrap();
        assert_eq!(c.matviews_on("A"), vec!["v1".to_string(), "v2".to_string()]);
        assert_eq!(c.matviews_on("b"), vec!["w".to_string()]);
        assert!(c.matviews_on("c").is_empty());
    }

    #[test]
    fn row_count_tracks_table_statistics() {
        let mut c = Catalog::new();
        c.create_table(t("r")).unwrap();
        assert_eq!(c.row_count("r").unwrap(), 0);
        let tab = c.table_mut("r").unwrap();
        for i in 0..5 {
            tab.insert(prefsql_types::tuple![i]).unwrap();
        }
        assert_eq!(c.row_count("R").unwrap(), 5);
        c.table_mut("r").unwrap().delete_rows(&[0, 3]).unwrap();
        assert_eq!(c.row_count("r").unwrap(), 3);
        assert!(c.row_count("missing").is_err());
    }

    #[test]
    fn view_definition_roundtrip() {
        let mut c = Catalog::new();
        c.create_view("aux", "SELECT * FROM cars").unwrap();
        let v = c.view("AUX").unwrap();
        assert_eq!(v.name, "aux");
        assert_eq!(v.sql, "SELECT * FROM cars");
    }
}
