//! The shared pinning buffer pool of the paged storage backend.
//!
//! One [`BufferPool`] per engine core caches heap-file pages in a fixed
//! number of [`PAGE_SIZE`]-byte frames, shared by every session. Pages
//! are addressed by `(heap-file id, page number)`; a frame holds an
//! `Arc` to its [`HeapFile`] so a dirty page can be written back at
//! eviction time even if the owning table has since been dropped (the
//! file is unlinked only when its last handle — possibly a pool frame —
//! goes away).
//!
//! Access is closure-scoped: [`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`] pin the frame, run the caller's
//! closure over the raw page bytes, and unpin before returning. Pins
//! are therefore strictly transient — a scan decodes a page's tuples
//! into owned memory under the pin and releases it before yielding —
//! which is what lets eight sessions share a four-page pool without
//! pin deadlock. The pool serializes frame access behind one mutex
//! (IO included); that is deliberate v1 simplicity — the interesting
//! contention in this engine is above the storage layer.
//!
//! Eviction is the clock (second-chance) algorithm: every access sets a
//! frame's reference bit; the clock hand clears bits until it finds an
//! unreferenced, unpinned victim, writing it back first when dirty.
//! Hit/miss/eviction/write-back counters are kept per pool and surfaced
//! as [`PoolStats`] next to the spill metrics on the result surface.

use crate::heap::HeapFile;
use crate::page::PAGE_SIZE;
use prefsql_types::knobs::MIN_POOL_BYTES;
use prefsql_types::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Buffer-pool observability counters. Queries surface the *delta* of
/// these over their execution next to the spill metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Pool capacity, in pages.
    pub capacity_pages: usize,
    /// Page requests served from a cached frame.
    pub hits: u64,
    /// Page requests that had to read from (or allocate on) disk.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back (at eviction or an explicit flush).
    pub writebacks: u64,
}

impl PoolStats {
    /// The counter movement between an earlier snapshot and this one
    /// (capacity is carried over from `self`).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            capacity_pages: self.capacity_pages,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
        }
    }

    /// True if no page was requested between the snapshots.
    pub fn is_idle(&self) -> bool {
        self.hits == 0 && self.misses == 0
    }
}

#[derive(Debug)]
struct Frame {
    key: Option<(u64, u32)>,
    file: Option<Arc<HeapFile>>,
    data: Vec<u8>,
    dirty: bool,
    pinned: bool,
    referenced: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            key: None,
            file: None,
            data: vec![0u8; PAGE_SIZE],
            dirty: false,
            pinned: false,
            referenced: false,
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<(u64, u32), usize>,
    hand: usize,
    evictions: u64,
    writebacks: u64,
}

/// A fixed-capacity page cache with clock eviction; see the module docs.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// A pool of `bytes / PAGE_SIZE` frames, clamped to at least
    /// [`MIN_POOL_BYTES`] worth (4 pages).
    pub fn new(bytes: usize) -> Self {
        let capacity = bytes.max(MIN_POOL_BYTES) / PAGE_SIZE;
        BufferPool {
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| Frame::empty()).collect(),
                map: HashMap::new(),
                hand: 0,
                evictions: 0,
                writebacks: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn locked(&self) -> Result<MutexGuard<'_, PoolInner>> {
        self.inner
            .lock()
            .map_err(|_| Error::Concurrency("buffer pool lock poisoned".into()))
    }

    /// Pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.locked().map(|i| i.frames.len()).unwrap_or(0)
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let (capacity, evictions, writebacks) = match self.locked() {
            Ok(i) => (i.frames.len(), i.evictions, i.writebacks),
            Err(_) => (0, 0, 0),
        };
        PoolStats {
            capacity_pages: capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions,
            writebacks,
        }
    }

    /// Pin `page_no` of `file` and run `f` over its bytes.
    pub fn with_page<R>(
        &self,
        file: &Arc<HeapFile>,
        page_no: u32,
        f: impl FnOnce(&[u8]) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.locked()?;
        let idx = Self::load(&mut inner, &self.hits, &self.misses, file, page_no, false)?;
        inner.frames[idx].pinned = true;
        let result = f(&inner.frames[idx].data);
        inner.frames[idx].pinned = false;
        result
    }

    /// Pin `page_no` of `file` and run `f` over its bytes mutably; the
    /// frame is marked dirty. With `fresh`, the page is zero-initialized
    /// instead of read from disk (allocating past the current end).
    pub fn with_page_mut<R>(
        &self,
        file: &Arc<HeapFile>,
        page_no: u32,
        fresh: bool,
        f: impl FnOnce(&mut [u8]) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.locked()?;
        let idx = Self::load(&mut inner, &self.hits, &self.misses, file, page_no, fresh)?;
        inner.frames[idx].pinned = true;
        let result = f(&mut inner.frames[idx].data);
        inner.frames[idx].dirty = true;
        inner.frames[idx].pinned = false;
        result
    }

    /// Find or load the frame for `(file, page_no)`; returns its index.
    fn load(
        inner: &mut PoolInner,
        hits: &AtomicU64,
        misses: &AtomicU64,
        file: &Arc<HeapFile>,
        page_no: u32,
        fresh: bool,
    ) -> Result<usize> {
        let key = (file.id(), page_no);
        if let Some(&idx) = inner.map.get(&key) {
            hits.fetch_add(1, Ordering::Relaxed);
            inner.frames[idx].referenced = true;
            return Ok(idx);
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let idx = Self::victim(inner)?;
        Self::evict_frame(inner, idx)?;
        if fresh {
            inner.frames[idx].data.fill(0);
        } else {
            file.read_page(page_no, &mut inner.frames[idx].data)?;
        }
        let frame = &mut inner.frames[idx];
        frame.key = Some(key);
        frame.file = Some(Arc::clone(file));
        frame.dirty = false;
        frame.referenced = true;
        inner.map.insert(key, idx);
        Ok(idx)
    }

    /// The clock hand: find an unpinned victim frame, giving referenced
    /// frames a second chance.
    fn victim(inner: &mut PoolInner) -> Result<usize> {
        let n = inner.frames.len();
        if n == 0 {
            return Err(Error::Io("buffer pool has no frames".into()));
        }
        // Two full sweeps always suffice: the first clears reference
        // bits, the second takes the first unpinned frame. Only pins —
        // which are transient and held under this same lock — could
        // block every frame, and they can't while we hold it.
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &mut inner.frames[idx];
            if frame.pinned {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(Error::Io("buffer pool exhausted: all frames pinned".into()))
    }

    /// Write back (if dirty) and unmap frame `idx`.
    fn evict_frame(inner: &mut PoolInner, idx: usize) -> Result<()> {
        let (key, dirty) = (inner.frames[idx].key, inner.frames[idx].dirty);
        let Some(key) = key else { return Ok(()) };
        if dirty {
            let frame = &inner.frames[idx];
            let file = frame
                .file
                .as_ref()
                .expect("occupied frame always carries its file handle");
            file.write_page(key.1, &frame.data)?;
            inner.writebacks += 1;
        }
        inner.evictions += 1;
        inner.map.remove(&key);
        let frame = &mut inner.frames[idx];
        frame.key = None;
        frame.file = None;
        frame.dirty = false;
        Ok(())
    }

    /// Write every dirty page of heap file `file_id` back to disk (the
    /// pages stay cached, clean).
    pub fn flush_file(&self, file_id: u64) -> Result<()> {
        let mut inner = self.locked()?;
        for idx in 0..inner.frames.len() {
            let frame = &inner.frames[idx];
            if frame.dirty && frame.key.is_some_and(|(fid, _)| fid == file_id) {
                let page_no = frame.key.expect("checked above").1;
                frame
                    .file
                    .as_ref()
                    .expect("occupied frame always carries its file handle")
                    .write_page(page_no, &frame.data)?;
                inner.frames[idx].dirty = false;
                inner.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Drop every cached page of heap file `file_id` *without* write-back
    /// — the table was dropped or its file rewritten, so the cached
    /// bytes are dead.
    pub fn forget_file(&self, file_id: u64) -> Result<()> {
        let mut inner = self.locked()?;
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].key.is_some_and(|(fid, _)| fid == file_id) {
                let key = inner.frames[idx].key.expect("checked above");
                inner.map.remove(&key);
                let frame = &mut inner.frames[idx];
                frame.key = None;
                frame.file = None;
                frame.dirty = false;
                frame.referenced = false;
            }
        }
        Ok(())
    }

    /// Resize the pool to `bytes / PAGE_SIZE` frames (clamped to at
    /// least [`MIN_POOL_BYTES`]). Shrinking evicts surplus frames,
    /// writing dirty ones back.
    pub fn resize(&self, bytes: usize) -> Result<()> {
        let capacity = bytes.max(MIN_POOL_BYTES) / PAGE_SIZE;
        let mut inner = self.locked()?;
        while inner.frames.len() > capacity {
            let idx = inner.frames.len() - 1;
            Self::evict_frame(&mut inner, idx)?;
            inner.frames.pop();
        }
        while inner.frames.len() < capacity {
            inner.frames.push(Frame::empty());
        }
        inner.hand = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(tag: &str) -> Arc<HeapFile> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "prefsql-pool-test-{}-{}-{tag}.heap",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Arc::new(HeapFile::create(path, true).unwrap())
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = BufferPool::new(4 * PAGE_SIZE);
        let f = tmp_file("hitmiss");
        pool.with_page_mut(&f, 0, true, |p| {
            p[100] = 42;
            Ok(())
        })
        .unwrap();
        let v = pool.with_page(&f, 0, |p| Ok(p[100])).unwrap();
        assert_eq!(v, 42);
        let s = pool.stats();
        assert_eq!(s.capacity_pages, 4);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let pool = BufferPool::new(MIN_POOL_BYTES); // 4 frames
        let f = tmp_file("evict");
        // Dirty 8 distinct pages through a 4-frame pool.
        for page in 0..8u32 {
            pool.with_page_mut(&f, page, true, |p| {
                p[0] = crate::page::KIND_SLOTTED;
                p[1] = page as u8;
                Ok(())
            })
            .unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 8);
        assert!(s.evictions >= 4, "{s:?}");
        assert!(s.writebacks >= 4, "{s:?}");
        // Every page reads back with its payload — evicted ones from
        // disk, resident ones from the pool.
        for page in 0..8u32 {
            let v = pool.with_page(&f, page, |p| Ok(p[1])).unwrap();
            assert_eq!(v, page as u8);
        }
    }

    #[test]
    fn flush_persists_without_eviction() {
        let pool = BufferPool::new(64 * PAGE_SIZE);
        let f = tmp_file("flush");
        pool.with_page_mut(&f, 0, true, |p| {
            p[7] = 9;
            Ok(())
        })
        .unwrap();
        assert_eq!(f.page_count().unwrap(), 0, "dirty page not yet on disk");
        pool.flush_file(f.id()).unwrap();
        assert_eq!(f.page_count().unwrap(), 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[7], 9);
        assert_eq!(pool.stats().writebacks, 1);
        // A second flush is a no-op: the page is clean now.
        pool.flush_file(f.id()).unwrap();
        assert_eq!(pool.stats().writebacks, 1);
    }

    #[test]
    fn forget_discards_dirty_pages() {
        let pool = BufferPool::new(64 * PAGE_SIZE);
        let f = tmp_file("forget");
        pool.with_page_mut(&f, 0, true, |p| {
            p[0] = 1;
            Ok(())
        })
        .unwrap();
        pool.forget_file(f.id()).unwrap();
        assert_eq!(f.page_count().unwrap(), 0, "forgotten page never lands");
        // The key is gone: re-reading is a miss (and fails — no page 0).
        assert!(pool.with_page(&f, 0, |_| Ok(())).is_err());
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let pool = BufferPool::new(16 * PAGE_SIZE);
        let f = tmp_file("resize");
        for page in 0..8u32 {
            pool.with_page_mut(&f, page, true, |_| Ok(())).unwrap();
        }
        pool.resize(MIN_POOL_BYTES).unwrap();
        assert_eq!(pool.capacity_pages(), 4);
        // Shrink wrote surviving dirty pages out; data still readable.
        for page in 0..8u32 {
            pool.with_page(&f, page, |_| Ok(())).unwrap();
        }
        pool.resize(32 * PAGE_SIZE).unwrap();
        assert_eq!(pool.capacity_pages(), 32);
        // Sub-minimum resize clamps to the 4-page floor.
        pool.resize(1).unwrap();
        assert_eq!(pool.capacity_pages(), 4);
    }

    #[test]
    fn stats_delta_between_snapshots() {
        let pool = BufferPool::new(4 * PAGE_SIZE);
        let f = tmp_file("delta");
        pool.with_page_mut(&f, 0, true, |_| Ok(())).unwrap();
        let before = pool.stats();
        assert!(pool.stats().since(&before).is_idle());
        pool.with_page(&f, 0, |_| Ok(())).unwrap();
        let d = pool.stats().since(&before);
        assert_eq!((d.hits, d.misses), (1, 0));
        assert!(!d.is_idle());
    }
}
