//! Heap tables: schema-validated row storage with secondary indexes.

use crate::index::{BTreeIndex, HashIndex, IndexKind};
use prefsql_types::{Error, Result, Schema, Tuple};
use std::collections::HashMap;

/// An in-memory heap table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    hash_indexes: HashMap<String, HashIndex>,
    btree_indexes: HashMap<String, BTreeIndex>,
    /// Live row-count statistic, maintained incrementally at the insert
    /// and delete choke points. The planner reads this counter (via
    /// `Catalog::row_count`) for cardinality decisions instead of
    /// touching row storage.
    stat_rows: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            hash_indexes: HashMap::new(),
            btree_indexes: HashMap::new(),
            stat_rows: 0,
        }
    }

    /// Table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one row after validating it against the schema; maintains all
    /// indexes. Returns the new row id.
    pub fn insert(&mut self, row: Tuple) -> Result<usize> {
        row.check_against(&self.schema)?;
        let row_id = self.rows.len();
        for idx in self.hash_indexes.values_mut() {
            idx.insert(row_id, &row);
        }
        for idx in self.btree_indexes.values_mut() {
            idx.insert(row_id, &row);
        }
        self.rows.push(row);
        self.stat_rows += 1;
        Ok(row_id)
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Create a named index over `columns` (resolved by name). Existing rows
    /// are back-filled. Fails on duplicate index names or unknown columns.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        columns: &[&str],
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into().to_ascii_lowercase();
        if self.hash_indexes.contains_key(&index_name)
            || self.btree_indexes.contains_key(&index_name)
        {
            return Err(Error::Catalog(format!(
                "index '{index_name}' already exists on table '{}'",
                self.name
            )));
        }
        let key_columns: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.resolve(None, c))
            .collect::<Result<_>>()?;
        match kind {
            IndexKind::Hash => {
                let mut idx = HashIndex::new(key_columns);
                for (rid, row) in self.rows.iter().enumerate() {
                    idx.insert(rid, row);
                }
                self.hash_indexes.insert(index_name, idx);
            }
            IndexKind::BTree => {
                let mut idx = BTreeIndex::new(key_columns);
                for (rid, row) in self.rows.iter().enumerate() {
                    idx.insert(rid, row);
                }
                self.btree_indexes.insert(index_name, idx);
            }
        }
        Ok(())
    }

    /// Find a hash index whose key is exactly `columns` (schema positions).
    pub fn find_hash_index(&self, columns: &[usize]) -> Option<&HashIndex> {
        self.hash_indexes
            .values()
            .find(|i| i.key_columns() == columns)
    }

    /// Find a B-tree index whose *leading* key column is `column`.
    pub fn find_btree_index(&self, column: usize) -> Option<&BTreeIndex> {
        self.btree_indexes
            .values()
            .find(|i| i.key_columns().first() == Some(&column))
    }

    /// Names of all indexes (for EXPLAIN / introspection).
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .hash_indexes
            .keys()
            .chain(self.btree_indexes.keys())
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Fetch a row by id.
    pub fn row(&self, row_id: usize) -> &Tuple {
        &self.rows[row_id]
    }

    /// Delete every row whose id is in `row_ids`; returns the number of
    /// rows removed. Row ids are compacted and all indexes rebuilt.
    pub fn delete_rows(&mut self, row_ids: &[usize]) -> usize {
        if row_ids.is_empty() {
            return 0;
        }
        let doomed: std::collections::HashSet<usize> = row_ids.iter().copied().collect();
        let before = self.rows.len();
        let mut keep = Vec::with_capacity(before - doomed.len().min(before));
        for (rid, row) in self.rows.drain(..).enumerate() {
            if !doomed.contains(&rid) {
                keep.push(row);
            }
        }
        self.rows = keep;
        self.stat_rows = self.rows.len();
        self.rebuild_indexes();
        before - self.rows.len()
    }

    /// The live row-count statistic. Maintained at every insert/delete,
    /// so it always equals [`Table::len`] — but reading it never touches
    /// row storage, which is the contract the planner relies on.
    pub fn stat_row_count(&self) -> usize {
        self.stat_rows
    }

    /// Replace the row at `row_id` after validating the new tuple.
    /// Call [`Table::rebuild_indexes`] once after a batch of updates.
    pub fn replace_row(&mut self, row_id: usize, row: Tuple) -> Result<()> {
        row.check_against(&self.schema)?;
        if row_id >= self.rows.len() {
            return Err(Error::Exec(format!(
                "row id {row_id} out of range for table '{}'",
                self.name
            )));
        }
        self.rows[row_id] = row;
        Ok(())
    }

    /// Rebuild every index from the current rows (after deletes/updates).
    pub fn rebuild_indexes(&mut self) {
        for idx in self.hash_indexes.values_mut() {
            let mut fresh = HashIndex::new(idx.key_columns().to_vec());
            for (rid, row) in self.rows.iter().enumerate() {
                fresh.insert(rid, row);
            }
            *idx = fresh;
        }
        for idx in self.btree_indexes.values_mut() {
            let mut fresh = BTreeIndex::new(idx.key_columns().to_vec());
            for (rid, row) in self.rows.iter().enumerate() {
                fresh.insert(rid, row);
            }
            *idx = fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{tuple, Column, DataType, Value};

    fn cars() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("make", DataType::Str),
            Column::new("price", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new("cars", schema);
        t.insert(tuple![1, "audi", 40_000]).unwrap();
        t.insert(tuple![2, "bmw", 35_000]).unwrap();
        t.insert(tuple![3, "vw", 20_000]).unwrap();
        t
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = cars();
        assert!(t.insert(tuple![4, "opel", 15_000]).is_ok());
        assert!(t.insert(tuple!["bad", "opel", 1]).is_err());
        assert!(t.insert(tuple![5, "opel"]).is_err());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = cars();
        let r = t.insert(Tuple::new(vec![
            Value::Null,
            Value::str("x"),
            Value::Int(1),
        ]));
        assert!(r.is_err());
    }

    #[test]
    fn index_backfill_and_maintenance() {
        let mut t = cars();
        t.create_index("idx_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.insert(tuple![4, "audi", 45_000]).unwrap();
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[0, 3]);
    }

    #[test]
    fn btree_index_range_after_creation() {
        let mut t = cars();
        t.create_index("idx_price", &["price"], IndexKind::BTree)
            .unwrap();
        let idx = t.find_btree_index(2).unwrap();
        let rids = idx.range(Some(&Value::Int(30_000)), None);
        assert_eq!(rids, vec![1, 0]);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = cars();
        t.create_index("i", &["make"], IndexKind::Hash).unwrap();
        assert!(t.create_index("i", &["price"], IndexKind::BTree).is_err());
        assert!(t.create_index("j", &["nope"], IndexKind::Hash).is_err());
    }

    #[test]
    fn delete_rows_compacts_and_reindexes() {
        let mut t = cars();
        t.create_index("i_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.create_index("i_price", &["price"], IndexKind::BTree)
            .unwrap();
        assert_eq!(t.delete_rows(&[1]), 1); // drop the BMW
        assert_eq!(t.len(), 2);
        // Row ids compacted: vw moved from 2 to 1.
        assert_eq!(t.row(1)[1], Value::str("vw"));
        // Indexes reflect the new ids.
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("vw")]), &[1]);
        assert_eq!(idx.lookup(&[Value::str("bmw")]), &[] as &[usize]);
        let b = t.find_btree_index(2).unwrap();
        assert_eq!(b.range(None, None).len(), 2);
        // Deleting nothing is a no-op.
        assert_eq!(t.delete_rows(&[]), 0);
        // Duplicate and repeated ids are tolerated.
        assert_eq!(t.delete_rows(&[0, 0]), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_row_validates_and_reindexes() {
        let mut t = cars();
        t.create_index("i_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.replace_row(0, tuple![1, "opel", 42_000]).unwrap();
        t.rebuild_indexes();
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("opel")]), &[0]);
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[] as &[usize]);
        // Validation still applies.
        assert!(t.replace_row(0, tuple!["bad", "x", 1]).is_err());
        assert!(t.replace_row(99, tuple![9, "x", 1]).is_err());
    }

    #[test]
    fn stat_row_count_tracks_len() {
        let mut t = cars();
        assert_eq!(t.stat_row_count(), t.len());
        t.insert(tuple![4, "opel", 15_000]).unwrap();
        assert_eq!(t.stat_row_count(), 4);
        t.delete_rows(&[0, 2]);
        assert_eq!(t.stat_row_count(), t.len());
        t.replace_row(0, tuple![9, "seat", 9_000]).unwrap();
        assert_eq!(t.stat_row_count(), 2);
        // Bulk insert goes through the same choke point.
        t.insert_all(vec![tuple![5, "kia", 1], tuple![6, "fiat", 2]])
            .unwrap();
        assert_eq!(t.stat_row_count(), t.len());
    }

    #[test]
    fn index_names_sorted() {
        let mut t = cars();
        t.create_index("z", &["make"], IndexKind::Hash).unwrap();
        t.create_index("a", &["price"], IndexKind::BTree).unwrap();
        assert_eq!(t.index_names(), vec!["a".to_string(), "z".to_string()]);
    }
}
