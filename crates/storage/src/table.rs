//! Heap tables: schema-validated row storage with secondary indexes.
//!
//! A [`Table`] owns a [`StorageBackend`] — the in-memory `Vec<Tuple>`
//! by default, or the paged heap-file store — plus everything that is
//! backend-independent: the schema, validation, secondary indexes and
//! the live row-count statistic. Callers that can exploit contiguous
//! rows (the scan operators' zero-copy path) ask for [`Table::mem_rows`]
//! and fall back to the rid-based accessors ([`Table::fetch_row`],
//! [`Table::scan_batch`], [`Table::for_each_row_from`]) when the rows
//! live on disk.

use crate::backend::{MemBackend, PagedBackend, StorageBackend};
use crate::heap::HeapFile;
use crate::index::{BTreeIndex, HashIndex, IndexKind};
use crate::pool::BufferPool;
use prefsql_types::{Error, Result, Schema, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// A heap table over one of the storage backends.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    backend: Box<dyn StorageBackend>,
    hash_indexes: HashMap<String, HashIndex>,
    btree_indexes: HashMap<String, BTreeIndex>,
    /// Live row-count statistic, maintained incrementally at the insert
    /// and delete choke points. The planner reads this counter (via
    /// `Catalog::row_count`) for cardinality decisions instead of
    /// touching row storage.
    stat_rows: usize,
}

impl Table {
    /// Create an empty in-memory table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table::over(name, schema, Box::new(MemBackend::default()))
    }

    /// Create an empty paged table storing rows in `file` through the
    /// shared buffer pool.
    pub fn paged(
        name: impl Into<String>,
        schema: Schema,
        file: Arc<HeapFile>,
        pool: Arc<BufferPool>,
    ) -> Self {
        Table::over(name, schema, Box::new(PagedBackend::create(file, pool)))
    }

    /// Open an existing heap file as a paged table (reopened database).
    /// Indexes are not persisted and start empty.
    pub fn paged_open(
        name: impl Into<String>,
        schema: Schema,
        file: Arc<HeapFile>,
        pool: Arc<BufferPool>,
    ) -> Result<Self> {
        let backend = PagedBackend::open(file, pool)?;
        Ok(Table::over(name, schema, Box::new(backend)))
    }

    fn over(name: impl Into<String>, schema: Schema, backend: Box<dyn StorageBackend>) -> Self {
        let stat_rows = backend.row_count();
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            backend,
            hash_indexes: HashMap::new(),
            btree_indexes: HashMap::new(),
            stat_rows,
        }
    }

    /// Table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The backend's EXPLAIN label: `"mem"` or `"paged"`.
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// All rows as a contiguous slice, if the backend keeps them in
    /// memory — the zero-copy fast path. Paged tables return `None`;
    /// use [`Table::scan_batch`] / [`Table::fetch_row`] instead.
    pub fn mem_rows(&self) -> Option<&[Tuple]> {
        self.backend.as_mem()
    }

    /// All rows, in insertion order.
    ///
    /// # Panics
    /// On a paged table — this accessor predates the backend seam and
    /// only exists for in-memory workloads; backend-agnostic callers use
    /// [`Table::mem_rows`] or the rid-based accessors.
    pub fn rows(&self) -> &[Tuple] {
        self.backend
            .as_mem()
            .expect("Table::rows is only available on the in-memory backend")
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.backend.row_count()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch one row by id, whichever backend holds it.
    pub fn fetch_row(&self, row_id: usize) -> Result<Tuple> {
        self.backend.fetch(row_id)
    }

    /// Append up to `max` rows starting at rid `*pos` onto `out`,
    /// advancing `*pos`. Returns `false` once the scan is exhausted.
    pub fn scan_batch(&self, pos: &mut usize, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        self.backend.scan(pos, out, max)
    }

    /// Run `f` over every row from rid `from` on, in rid order. The
    /// in-memory backend iterates its slice; the paged backend decodes
    /// page-sized batches.
    pub fn for_each_row_from(
        &self,
        from: usize,
        mut f: impl FnMut(usize, &Tuple) -> Result<()>,
    ) -> Result<()> {
        if let Some(rows) = self.backend.as_mem() {
            for (i, row) in rows.iter().enumerate().skip(from) {
                f(i, row)?;
            }
            return Ok(());
        }
        let mut pos = from;
        let mut buf = Vec::new();
        loop {
            let batch_start = pos;
            buf.clear();
            if !self.backend.scan(&mut pos, &mut buf, 1024)? {
                return Ok(());
            }
            for (i, row) in buf.iter().enumerate() {
                f(batch_start + i, row)?;
            }
        }
    }

    /// Run `f` over every row, in rid order.
    pub fn for_each_row(&self, f: impl FnMut(usize, &Tuple) -> Result<()>) -> Result<()> {
        self.for_each_row_from(0, f)
    }

    /// Insert one row after validating it against the schema; maintains all
    /// indexes. Returns the new row id.
    pub fn insert(&mut self, row: Tuple) -> Result<usize> {
        row.check_against(&self.schema)?;
        for idx in self.hash_indexes.values_mut() {
            idx.insert(self.stat_rows, &row);
        }
        for idx in self.btree_indexes.values_mut() {
            idx.insert(self.stat_rows, &row);
        }
        let row_id = self.backend.insert(row)?;
        debug_assert_eq!(row_id, self.stat_rows, "backends append densely");
        self.stat_rows += 1;
        Ok(row_id)
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Create a named index over `columns` (resolved by name). Existing rows
    /// are back-filled. Fails on duplicate index names or unknown columns.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        columns: &[&str],
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into().to_ascii_lowercase();
        if self.hash_indexes.contains_key(&index_name)
            || self.btree_indexes.contains_key(&index_name)
        {
            return Err(Error::Catalog(format!(
                "index '{index_name}' already exists on table '{}'",
                self.name
            )));
        }
        let key_columns: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.resolve(None, c))
            .collect::<Result<_>>()?;
        match kind {
            IndexKind::Hash => {
                let mut idx = HashIndex::new(key_columns);
                self.for_each_row(|rid, row| {
                    idx.insert(rid, row);
                    Ok(())
                })?;
                self.hash_indexes.insert(index_name, idx);
            }
            IndexKind::BTree => {
                let mut idx = BTreeIndex::new(key_columns);
                self.for_each_row(|rid, row| {
                    idx.insert(rid, row);
                    Ok(())
                })?;
                self.btree_indexes.insert(index_name, idx);
            }
        }
        Ok(())
    }

    /// Find a hash index whose key is exactly `columns` (schema positions).
    pub fn find_hash_index(&self, columns: &[usize]) -> Option<&HashIndex> {
        self.hash_indexes
            .values()
            .find(|i| i.key_columns() == columns)
    }

    /// Find a B-tree index whose *leading* key column is `column`.
    pub fn find_btree_index(&self, column: usize) -> Option<&BTreeIndex> {
        self.btree_indexes
            .values()
            .find(|i| i.key_columns().first() == Some(&column))
    }

    /// Names of all indexes (for EXPLAIN / introspection).
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .hash_indexes
            .keys()
            .chain(self.btree_indexes.keys())
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Fetch a row by id, borrowed.
    ///
    /// # Panics
    /// On a paged table or an out-of-range id — backend-agnostic callers
    /// use [`Table::fetch_row`].
    pub fn row(&self, row_id: usize) -> &Tuple {
        &self.rows()[row_id]
    }

    /// Delete every row whose id is in `row_ids`; returns the number of
    /// rows removed. Row ids are compacted and all indexes rebuilt.
    pub fn delete_rows(&mut self, row_ids: &[usize]) -> Result<usize> {
        if row_ids.is_empty() {
            return Ok(0);
        }
        let doomed: std::collections::HashSet<usize> = row_ids.iter().copied().collect();
        let removed = self.backend.delete(&doomed)?;
        self.stat_rows = self.backend.row_count();
        self.rebuild_indexes()?;
        Ok(removed)
    }

    /// The live row-count statistic. Maintained at every insert/delete,
    /// so it always equals [`Table::len`] — but reading it never touches
    /// row storage, which is the contract the planner relies on.
    pub fn stat_row_count(&self) -> usize {
        self.stat_rows
    }

    /// Replace the row at `row_id` after validating the new tuple.
    /// Call [`Table::rebuild_indexes`] once after a batch of updates.
    pub fn replace_row(&mut self, row_id: usize, row: Tuple) -> Result<()> {
        row.check_against(&self.schema)?;
        if row_id >= self.len() {
            return Err(Error::Exec(format!(
                "row id {row_id} out of range for table '{}'",
                self.name
            )));
        }
        self.backend.replace(row_id, row)
    }

    /// Rebuild every index from the current rows (after deletes/updates).
    pub fn rebuild_indexes(&mut self) -> Result<()> {
        for idx in self.hash_indexes.values_mut() {
            let mut fresh = HashIndex::new(idx.key_columns().to_vec());
            let mut pos = 0;
            let mut buf = Vec::new();
            loop {
                let start = pos;
                buf.clear();
                if !self.backend.scan(&mut pos, &mut buf, 1024)? {
                    break;
                }
                for (i, row) in buf.iter().enumerate() {
                    fresh.insert(start + i, row);
                }
            }
            *idx = fresh;
        }
        for idx in self.btree_indexes.values_mut() {
            let mut fresh = BTreeIndex::new(idx.key_columns().to_vec());
            let mut pos = 0;
            let mut buf = Vec::new();
            loop {
                let start = pos;
                buf.clear();
                if !self.backend.scan(&mut pos, &mut buf, 1024)? {
                    break;
                }
                for (i, row) in buf.iter().enumerate() {
                    fresh.insert(start + i, row);
                }
            }
            *idx = fresh;
        }
        Ok(())
    }

    /// Release backend resources on DROP TABLE (a paged table's cached
    /// pool pages are discarded; its heap file goes when the last shared
    /// handle does).
    pub fn release_storage(&self) -> Result<()> {
        self.backend.release()
    }

    /// Persist dirty backend state (paged tables flush their pool pages
    /// and sync the heap file; in-memory tables are a no-op).
    pub fn flush_storage(&self) -> Result<()> {
        self.backend.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::knobs::MIN_POOL_BYTES;
    use prefsql_types::{tuple, Column, DataType, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cars_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("make", DataType::Str),
            Column::new("price", DataType::Int),
        ])
        .unwrap()
    }

    fn fill(t: &mut Table) {
        t.insert(tuple![1, "audi", 40_000]).unwrap();
        t.insert(tuple![2, "bmw", 35_000]).unwrap();
        t.insert(tuple![3, "vw", 20_000]).unwrap();
    }

    fn cars() -> Table {
        let mut t = Table::new("cars", cars_schema());
        fill(&mut t);
        t
    }

    fn paged_cars(tag: &str) -> Table {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "prefsql-table-test-{}-{}-{tag}.heap",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = Arc::new(HeapFile::create(path, true).unwrap());
        let pool = Arc::new(BufferPool::new(MIN_POOL_BYTES));
        let mut t = Table::paged("cars", cars_schema(), file, pool);
        fill(&mut t);
        t
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = cars();
        assert!(t.insert(tuple![4, "opel", 15_000]).is_ok());
        assert!(t.insert(tuple!["bad", "opel", 1]).is_err());
        assert!(t.insert(tuple![5, "opel"]).is_err());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = cars();
        let r = t.insert(Tuple::new(vec![
            Value::Null,
            Value::str("x"),
            Value::Int(1),
        ]));
        assert!(r.is_err());
    }

    #[test]
    fn index_backfill_and_maintenance() {
        let mut t = cars();
        t.create_index("idx_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.insert(tuple![4, "audi", 45_000]).unwrap();
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[0, 3]);
    }

    #[test]
    fn btree_index_range_after_creation() {
        let mut t = cars();
        t.create_index("idx_price", &["price"], IndexKind::BTree)
            .unwrap();
        let idx = t.find_btree_index(2).unwrap();
        let rids = idx.range(Some(&Value::Int(30_000)), None);
        assert_eq!(rids, vec![1, 0]);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = cars();
        t.create_index("i", &["make"], IndexKind::Hash).unwrap();
        assert!(t.create_index("i", &["price"], IndexKind::BTree).is_err());
        assert!(t.create_index("j", &["nope"], IndexKind::Hash).is_err());
    }

    #[test]
    fn delete_rows_compacts_and_reindexes() {
        let mut t = cars();
        t.create_index("i_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.create_index("i_price", &["price"], IndexKind::BTree)
            .unwrap();
        assert_eq!(t.delete_rows(&[1]).unwrap(), 1); // drop the BMW
        assert_eq!(t.len(), 2);
        // Row ids compacted: vw moved from 2 to 1.
        assert_eq!(t.row(1)[1], Value::str("vw"));
        // Indexes reflect the new ids.
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("vw")]), &[1]);
        assert_eq!(idx.lookup(&[Value::str("bmw")]), &[] as &[usize]);
        let b = t.find_btree_index(2).unwrap();
        assert_eq!(b.range(None, None).len(), 2);
        // Deleting nothing is a no-op.
        assert_eq!(t.delete_rows(&[]).unwrap(), 0);
        // Duplicate and repeated ids are tolerated.
        assert_eq!(t.delete_rows(&[0, 0]).unwrap(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_row_validates_and_reindexes() {
        let mut t = cars();
        t.create_index("i_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.replace_row(0, tuple![1, "opel", 42_000]).unwrap();
        t.rebuild_indexes().unwrap();
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("opel")]), &[0]);
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[] as &[usize]);
        // Validation still applies.
        assert!(t.replace_row(0, tuple!["bad", "x", 1]).is_err());
        assert!(t.replace_row(99, tuple![9, "x", 1]).is_err());
    }

    #[test]
    fn stat_row_count_tracks_len() {
        let mut t = cars();
        assert_eq!(t.stat_row_count(), t.len());
        t.insert(tuple![4, "opel", 15_000]).unwrap();
        assert_eq!(t.stat_row_count(), 4);
        t.delete_rows(&[0, 2]).unwrap();
        assert_eq!(t.stat_row_count(), t.len());
        t.replace_row(0, tuple![9, "seat", 9_000]).unwrap();
        assert_eq!(t.stat_row_count(), 2);
        // Bulk insert goes through the same choke point.
        t.insert_all(vec![tuple![5, "kia", 1], tuple![6, "fiat", 2]])
            .unwrap();
        assert_eq!(t.stat_row_count(), t.len());
    }

    #[test]
    fn index_names_sorted() {
        let mut t = cars();
        t.create_index("z", &["make"], IndexKind::Hash).unwrap();
        t.create_index("a", &["price"], IndexKind::BTree).unwrap();
        assert_eq!(t.index_names(), vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn paged_table_mirrors_the_mem_api() {
        let mut t = paged_cars("mirror");
        assert_eq!(t.backend_label(), "paged");
        assert!(t.mem_rows().is_none());
        assert_eq!(t.len(), 3);
        assert_eq!(t.fetch_row(2).unwrap(), tuple![3, "vw", 20_000]);
        // Validation is backend-independent.
        assert!(t.insert(tuple!["bad", "x", 1]).is_err());
        // Index backfill scans pages; maintenance tracks inserts.
        t.create_index("idx_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.insert(tuple![4, "audi", 45_000]).unwrap();
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[0, 3]);
        // Delete compacts, reindexes, and keeps the statistic honest.
        assert_eq!(t.delete_rows(&[1]).unwrap(), 1);
        assert_eq!(t.stat_row_count(), t.len());
        assert_eq!(t.fetch_row(1).unwrap()[1], Value::str("vw"));
        let idx = t.find_hash_index(&[1]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("vw")]), &[1]);
        // Replace in place, then scan everything in order.
        t.replace_row(0, tuple![9, "opel", 1]).unwrap();
        let mut rows = Vec::new();
        let mut pos = 0;
        while t.scan_batch(&mut pos, &mut rows, 2).unwrap() {}
        assert_eq!(
            rows,
            vec![
                tuple![9, "opel", 1],
                tuple![3, "vw", 20_000],
                tuple![4, "audi", 45_000],
            ]
        );
    }

    #[test]
    fn for_each_row_from_matches_both_backends() {
        for t in [cars(), paged_cars("foreach")] {
            let mut seen = Vec::new();
            t.for_each_row_from(1, |rid, row| {
                seen.push((rid, row[0].clone()));
                Ok(())
            })
            .unwrap();
            assert_eq!(
                seen,
                vec![(1, Value::Int(2)), (2, Value::Int(3))],
                "backend {}",
                t.backend_label()
            );
        }
    }
}
