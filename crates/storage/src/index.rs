//! Secondary indexes over heap tables.
//!
//! Two kinds, mirroring what "having the right indices available" (§3.2 of
//! the paper) means for a host DBMS:
//!
//! * [`HashIndex`] — equality lookups (`WHERE region = 'south'`);
//! * [`BTreeIndex`] — ordered lookups and range scans
//!   (`WHERE salary BETWEEN 40000 AND 60000`).
//!
//! Both map a key (one or more column values) to the row ids holding it.

use prefsql_types::{Tuple, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

/// Which physical structure an index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: equality only.
    Hash,
    /// Ordered index: equality and ranges.
    BTree,
}

/// Key wrapper giving `Vec<Value>` the total order of
/// [`Value::total_cmp`], so it can live in a `BTreeMap`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.0.len().min(other.0.len());
        for i in 0..n {
            match self.0[i].total_cmp(&other.0[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// Hash index on one or more columns.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    /// Indices of the key columns within the table schema.
    key_columns: Vec<usize>,
    map: HashMap<IndexKey, Vec<usize>>,
}

impl HashIndex {
    /// New empty index over the given key columns.
    pub fn new(key_columns: Vec<usize>) -> Self {
        HashIndex {
            key_columns,
            map: HashMap::new(),
        }
    }

    /// The key column positions.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    fn key_of(&self, row: &Tuple) -> IndexKey {
        IndexKey(self.key_columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Index `row` stored at `row_id`.
    pub fn insert(&mut self, row_id: usize, row: &Tuple) {
        self.map.entry(self.key_of(row)).or_default().push(row_id);
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map
            .get(&IndexKey(key.to_vec()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index on one or more columns, supporting range scans.
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    key_columns: Vec<usize>,
    map: BTreeMap<IndexKey, Vec<usize>>,
}

impl BTreeIndex {
    /// New empty index over the given key columns.
    pub fn new(key_columns: Vec<usize>) -> Self {
        BTreeIndex {
            key_columns,
            map: BTreeMap::new(),
        }
    }

    /// The key column positions.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    fn key_of(&self, row: &Tuple) -> IndexKey {
        IndexKey(self.key_columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Index `row` stored at `row_id`.
    pub fn insert(&mut self, row_id: usize, row: &Tuple) {
        self.map.entry(self.key_of(row)).or_default().push(row_id);
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map
            .get(&IndexKey(key.to_vec()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row ids whose key's *first component* lies in `[low, high]`;
    /// `None` bounds are unbounded. Results come back in key order.
    ///
    /// Bounds apply to the leading key column only, which is what the
    /// engine's single-column range predicates need; composite keys whose
    /// leading component falls inside the bounds all qualify.
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        use std::ops::Bound;
        // IndexKey compares prefixes as smaller, so [v] is <= every key
        // whose first component is v — a correct inclusive lower bound.
        let lo = match low {
            Some(v) => Bound::Included(IndexKey(vec![v.clone()])),
            None => Bound::Unbounded,
        };
        self.map
            .range((lo, Bound::<IndexKey>::Unbounded))
            .take_while(|(key, _)| match (high, key.0.first()) {
                (Some(h), Some(f)) => f.total_cmp(h) != Ordering::Greater,
                _ => true,
            })
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::tuple;

    #[test]
    fn hash_index_lookup() {
        let mut idx = HashIndex::new(vec![1]);
        idx.insert(0, &tuple![1, "audi"]);
        idx.insert(1, &tuple![2, "bmw"]);
        idx.insert(2, &tuple![3, "audi"]);
        assert_eq!(idx.lookup(&[Value::str("audi")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::str("vw")]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn hash_index_composite_key() {
        let mut idx = HashIndex::new(vec![0, 1]);
        idx.insert(0, &tuple![1, "a"]);
        idx.insert(1, &tuple![1, "b"]);
        assert_eq!(idx.lookup(&[Value::Int(1), Value::str("a")]), &[0]);
        assert_eq!(idx.lookup(&[Value::Int(1)]), &[] as &[usize]);
    }

    #[test]
    fn btree_range_scan() {
        let mut idx = BTreeIndex::new(vec![0]);
        for (rid, price) in [(0, 100), (1, 250), (2, 400), (3, 250), (4, 50)] {
            idx.insert(rid, &tuple![price]);
        }
        let in_range = idx.range(Some(&Value::Int(100)), Some(&Value::Int(250)));
        assert_eq!(in_range, vec![0, 1, 3]);
        let open_low = idx.range(None, Some(&Value::Int(100)));
        assert_eq!(open_low, vec![4, 0]);
        let open_high = idx.range(Some(&Value::Int(300)), None);
        assert_eq!(open_high, vec![2]);
        let all = idx.range(None, None);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn btree_orders_mixed_numerics() {
        let mut idx = BTreeIndex::new(vec![0]);
        idx.insert(0, &tuple![2.5]);
        idx.insert(1, &tuple![2]);
        idx.insert(2, &tuple![3]);
        let r = idx.range(Some(&Value::Int(2)), Some(&Value::Int(3)));
        assert_eq!(r, vec![1, 0, 2]);
    }

    #[test]
    fn index_key_ordering_is_lexicographic() {
        let a = IndexKey(vec![Value::Int(1), Value::Int(2)]);
        let b = IndexKey(vec![Value::Int(1), Value::Int(3)]);
        let c = IndexKey(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a); // prefix sorts first
    }

    #[test]
    fn nulls_participate_in_indexes() {
        let mut idx = BTreeIndex::new(vec![0]);
        idx.insert(0, &Tuple::new(vec![Value::Null]));
        idx.insert(1, &tuple![1]);
        // NULL sorts first in total order; equality lookup on NULL finds it
        // (index-level behaviour; SQL semantics are enforced by the engine).
        assert_eq!(idx.lookup(&[Value::Null]), &[0]);
        assert_eq!(idx.range(None, None), vec![0, 1]);
    }
}
