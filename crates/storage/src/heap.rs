//! Per-table heap files: page-granular IO over one on-disk file.
//!
//! A [`HeapFile`] is the shared, thread-safe handle the paged backend
//! and the buffer pool both hold (`Arc`): the pool needs it to write a
//! dirty page back at eviction time — possibly long after the table
//! that dirtied it was dropped — so the file is removed only when the
//! *last* handle drops (when `delete_on_drop` is set, the engine's
//! temp-database case). All IO is whole pages of [`PAGE_SIZE`] bytes.

use crate::page::PAGE_SIZE;
use prefsql_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide heap-file id source — pool frames key on `(file id,
/// page no)`, so ids must never repeat within a process.
static FILE_ID_SEQ: AtomicU64 = AtomicU64::new(1);

/// A shared handle to one heap file.
#[derive(Debug)]
pub struct HeapFile {
    id: u64,
    path: PathBuf,
    file: Mutex<File>,
    delete_on_drop: bool,
}

impl HeapFile {
    /// Create (truncate) a heap file at `path`.
    pub fn create(path: impl Into<PathBuf>, delete_on_drop: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(HeapFile {
            id: FILE_ID_SEQ.fetch_add(1, Ordering::Relaxed),
            path,
            file: Mutex::new(file),
            delete_on_drop,
        })
    }

    /// Open an existing heap file at `path` (a reopened database).
    pub fn open(path: impl Into<PathBuf>, delete_on_drop: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        Ok(HeapFile {
            id: FILE_ID_SEQ.fetch_add(1, Ordering::Relaxed),
            path,
            file: Mutex::new(file),
            delete_on_drop,
        })
    }

    /// The process-unique id pool frames key on.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn locked(&self) -> Result<std::sync::MutexGuard<'_, File>> {
        self.file
            .lock()
            .map_err(|_| Error::Concurrency("heap file lock poisoned".into()))
    }

    /// Number of whole pages in the file.
    pub fn page_count(&self) -> Result<u32> {
        let len = self.locked()?.metadata()?.len();
        Ok((len / PAGE_SIZE as u64) as u32)
    }

    /// Read page `page_no` into `buf` (exactly [`PAGE_SIZE`] bytes).
    pub fn read_page(&self, page_no: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut f = self.locked()?;
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        f.read_exact(buf)
            .map_err(|e| Error::Io(format!("short heap page read: {e}")))?;
        Ok(())
    }

    /// Write `buf` (exactly [`PAGE_SIZE`] bytes) as page `page_no`,
    /// extending the file if needed.
    pub fn write_page(&self, page_no: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut f = self.locked()?;
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        f.write_all(buf)?;
        Ok(())
    }

    /// Truncate the file to zero pages (full-rewrite paths).
    pub fn truncate(&self) -> Result<()> {
        let f = self.locked()?;
        f.set_len(0)?;
        Ok(())
    }

    /// Flush OS buffers to disk.
    pub fn sync(&self) -> Result<()> {
        self.locked()?.sync_all()?;
        Ok(())
    }
}

impl Drop for HeapFile {
    fn drop(&mut self) {
        if self.delete_on_drop {
            // Best-effort: a vanished temp dir must not panic a drop.
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "prefsql-heap-test-{}-{}-{name}",
            std::process::id(),
            FILE_ID_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn page_io_round_trip_and_extension() {
        let f = HeapFile::create(tmp("io"), true).unwrap();
        assert_eq!(f.page_count().unwrap(), 0);
        let a = vec![1u8; PAGE_SIZE];
        let b = vec![2u8; PAGE_SIZE];
        f.write_page(0, &a).unwrap();
        f.write_page(1, &b).unwrap();
        assert_eq!(f.page_count().unwrap(), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, a);
        f.read_page(1, &mut buf).unwrap();
        assert_eq!(buf, b);
        assert!(f.read_page(2, &mut buf).is_err());
        f.truncate().unwrap();
        assert_eq!(f.page_count().unwrap(), 0);
    }

    #[test]
    fn delete_on_drop_removes_the_file_keep_does_not() {
        let p1 = tmp("del");
        let p2 = tmp("keep");
        {
            let _f = HeapFile::create(&p1, true).unwrap();
            let _g = HeapFile::create(&p2, false).unwrap();
            assert!(p1.exists() && p2.exists());
        }
        assert!(!p1.exists());
        assert!(p2.exists());
        // Reopening the kept file works and ids never repeat.
        let g1 = HeapFile::open(&p2, false).unwrap();
        let g2 = HeapFile::open(&p2, true).unwrap();
        assert_ne!(g1.id(), g2.id());
        drop(g1);
        drop(g2); // delete_on_drop handle removes it
        assert!(!p2.exists());
    }
}
