//! The fixed-size slotted-page format of the paged heap backend.
//!
//! Every heap file is a sequence of [`PAGE_SIZE`]-byte pages. Byte 0 of
//! a page is its *kind*:
//!
//! * [`KIND_SLOTTED`] — a classic slotted data page: a 16-byte header
//!   (`u16` slot count at offset 2, `u16` data start at offset 4), a
//!   slot directory growing *up* from offset 16 (4 bytes per slot:
//!   `u16` tuple offset, `u16` tuple length), and tuple data growing
//!   *down* from the page end. Tuples are encoded with the shared
//!   [`crate::codec`] (arity + tagged values).
//! * [`KIND_JUMBO_FIRST`] / [`KIND_JUMBO_CONT`] — a tuple whose encoding
//!   exceeds [`MAX_INLINE_TUPLE`] occupies a dedicated chain of pages:
//!   the first page stores the `u32` total length at offset 4 and
//!   payload from offset 8; continuation pages store payload from
//!   offset 8.
//!
//! The functions here operate on raw page buffers (the bytes a
//! [`crate::pool::BufferPool`] frame lends out); they never do IO.

use prefsql_types::{Error, Result};

/// Size of every page, on disk and in a pool frame.
pub const PAGE_SIZE: usize = 4096;

/// Page kind: slotted data page.
pub const KIND_SLOTTED: u8 = 1;
/// Page kind: first page of an oversized-tuple chain.
pub const KIND_JUMBO_FIRST: u8 = 2;
/// Page kind: continuation page of an oversized-tuple chain.
pub const KIND_JUMBO_CONT: u8 = 3;

/// Bytes of slotted-page header before the slot directory.
const HEADER_LEN: usize = 16;
/// Bytes per slot-directory entry (`u16` offset + `u16` length).
const SLOT_BYTES: usize = 4;
/// Payload bytes per jumbo page (after kind byte + length header).
pub const JUMBO_PAYLOAD: usize = PAGE_SIZE - 8;

/// The largest tuple encoding a slotted page can hold (one slot on an
/// otherwise empty page); anything larger goes to a jumbo chain.
pub const MAX_INLINE_TUPLE: usize = PAGE_SIZE - HEADER_LEN - SLOT_BYTES;

fn u16_at(page: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([page[off], page[off + 1]])
}

fn put_u16(page: &mut [u8], off: usize, v: u16) {
    page[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// The kind byte of a page.
pub fn kind(page: &[u8]) -> u8 {
    page[0]
}

/// Initialize a buffer as an empty slotted page.
pub fn init_slotted(page: &mut [u8]) {
    page[..HEADER_LEN].fill(0);
    page[0] = KIND_SLOTTED;
    put_u16(page, 2, 0);
    put_u16(page, 4, PAGE_SIZE as u16 - 1); // data start; 4095 = empty
}

/// Number of slots on a slotted page.
pub fn slot_count(page: &[u8]) -> u16 {
    u16_at(page, 2)
}

/// Offset of the lowest data byte (data grows down from the page end).
/// Stored off-by-one (`lowest - 1`) so the empty page's `PAGE_SIZE`
/// still fits a `u16`.
fn data_start(page: &[u8]) -> usize {
    u16_at(page, 4) as usize + 1
}

/// Free bytes between the slot directory and the data region.
pub fn free_space(page: &[u8]) -> usize {
    let dir_end = HEADER_LEN + SLOT_BYTES * slot_count(page) as usize;
    data_start(page).saturating_sub(dir_end)
}

/// True if a tuple of `len` encoded bytes (plus its slot entry) fits.
pub fn fits(page: &[u8], len: usize) -> bool {
    free_space(page) >= len + SLOT_BYTES
}

/// Append one encoded tuple to a slotted page; returns its slot index.
pub fn append_slot(page: &mut [u8], bytes: &[u8]) -> Result<u16> {
    if kind(page) != KIND_SLOTTED {
        return Err(Error::Io("heap page is not a slotted page".into()));
    }
    if !fits(page, bytes.len()) {
        return Err(Error::Io("slotted page overflow".into()));
    }
    let count = slot_count(page);
    let off = data_start(page) - bytes.len();
    page[off..off + bytes.len()].copy_from_slice(bytes);
    let slot_off = HEADER_LEN + SLOT_BYTES * count as usize;
    put_u16(page, slot_off, off as u16);
    put_u16(page, slot_off + 2, bytes.len() as u16);
    put_u16(page, 2, count + 1);
    put_u16(page, 4, off as u16 - 1);
    Ok(count)
}

/// The encoded bytes of slot `slot` on a slotted page.
pub fn read_slot(page: &[u8], slot: u16) -> Result<&[u8]> {
    if kind(page) != KIND_SLOTTED || slot >= slot_count(page) {
        return Err(Error::Io(format!("no slot {slot} on heap page")));
    }
    let slot_off = HEADER_LEN + SLOT_BYTES * slot as usize;
    let off = u16_at(page, slot_off) as usize;
    let len = u16_at(page, slot_off + 2) as usize;
    if off + len > PAGE_SIZE {
        return Err(Error::Io("corrupt heap page: slot out of bounds".into()));
    }
    Ok(&page[off..off + len])
}

/// Replace slot `slot`'s tuple in place. Returns `false` (page
/// untouched) when the new encoding neither fits the old slot nor the
/// page's free space — the caller falls back to a file rewrite.
pub fn replace_slot(page: &mut [u8], slot: u16, bytes: &[u8]) -> Result<bool> {
    if kind(page) != KIND_SLOTTED || slot >= slot_count(page) {
        return Err(Error::Io(format!("no slot {slot} on heap page")));
    }
    let slot_off = HEADER_LEN + SLOT_BYTES * slot as usize;
    let off = u16_at(page, slot_off) as usize;
    let len = u16_at(page, slot_off + 2) as usize;
    if bytes.len() <= len {
        // Shrinking replace reuses the old slot's bytes (the slack is
        // reclaimed at the next file rewrite).
        page[off..off + bytes.len()].copy_from_slice(bytes);
        put_u16(page, slot_off + 2, bytes.len() as u16);
        return Ok(true);
    }
    if free_space(page) >= bytes.len() {
        // Growing replace appends to the data region and repoints the
        // slot; the old bytes become slack.
        let new_off = data_start(page) - bytes.len();
        page[new_off..new_off + bytes.len()].copy_from_slice(bytes);
        put_u16(page, slot_off, new_off as u16);
        put_u16(page, slot_off + 2, bytes.len() as u16);
        put_u16(page, 4, new_off as u16 - 1);
        return Ok(true);
    }
    Ok(false)
}

/// Initialize a jumbo chain page. `total` is only written on the first
/// page; `chunk` is this page's payload.
pub fn init_jumbo(page: &mut [u8], first: bool, total: u32, chunk: &[u8]) {
    page[..8].fill(0);
    page[0] = if first {
        KIND_JUMBO_FIRST
    } else {
        KIND_JUMBO_CONT
    };
    if first {
        page[4..8].copy_from_slice(&total.to_le_bytes());
    }
    page[8..8 + chunk.len()].copy_from_slice(chunk);
}

/// Total encoded length stored on a jumbo chain's first page.
pub fn jumbo_total(page: &[u8]) -> Result<usize> {
    if kind(page) != KIND_JUMBO_FIRST {
        return Err(Error::Io("heap page is not a jumbo head".into()));
    }
    Ok(u32::from_le_bytes([page[4], page[5], page[6], page[7]]) as usize)
}

/// The payload region of a jumbo page, truncated to `remaining` bytes.
pub fn jumbo_chunk(page: &[u8], remaining: usize) -> &[u8] {
    &page[8..8 + remaining.min(JUMBO_PAYLOAD)]
}

/// Number of pages a jumbo chain of `total` encoded bytes occupies.
pub fn jumbo_pages(total: usize) -> u32 {
    (total.div_ceil(JUMBO_PAYLOAD)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        init_slotted(&mut p);
        p
    }

    #[test]
    fn append_and_read_slots() {
        let mut p = fresh();
        assert_eq!(kind(&p), KIND_SLOTTED);
        assert_eq!(slot_count(&p), 0);
        let a = append_slot(&mut p, b"alpha").unwrap();
        let b = append_slot(&mut p, b"b").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(read_slot(&p, 0).unwrap(), b"alpha");
        assert_eq!(read_slot(&p, 1).unwrap(), b"b");
        assert!(read_slot(&p, 2).is_err());
    }

    #[test]
    fn fills_to_capacity_then_overflows() {
        let mut p = fresh();
        let tuple = vec![7u8; 100];
        let mut n = 0;
        while fits(&p, tuple.len()) {
            append_slot(&mut p, &tuple).unwrap();
            n += 1;
        }
        // 16-byte header + n*(100 + 4) ≤ 4095.
        assert_eq!(n, (PAGE_SIZE - HEADER_LEN - 1) / (100 + SLOT_BYTES));
        assert!(append_slot(&mut p, &tuple).is_err());
        // Every slot still reads back.
        for s in 0..slot_count(&p) {
            assert_eq!(read_slot(&p, s).unwrap(), &tuple[..]);
        }
    }

    #[test]
    fn replace_in_place_and_grow() {
        let mut p = fresh();
        append_slot(&mut p, b"0123456789").unwrap();
        append_slot(&mut p, b"second").unwrap();
        // Shrink: reuses the slot.
        assert!(replace_slot(&mut p, 0, b"tiny").unwrap());
        assert_eq!(read_slot(&p, 0).unwrap(), b"tiny");
        assert_eq!(read_slot(&p, 1).unwrap(), b"second");
        // Grow within free space: repoints the slot.
        assert!(replace_slot(&mut p, 0, b"a longer replacement").unwrap());
        assert_eq!(read_slot(&p, 0).unwrap(), b"a longer replacement");
        // Grow past the page: refused, page untouched.
        let huge = vec![1u8; PAGE_SIZE];
        assert!(!replace_slot(&mut p, 0, &huge).unwrap());
        assert_eq!(read_slot(&p, 0).unwrap(), b"a longer replacement");
    }

    #[test]
    fn max_inline_tuple_fits_an_empty_page() {
        let mut p = fresh();
        let tuple = vec![9u8; MAX_INLINE_TUPLE - 1];
        append_slot(&mut p, &tuple).unwrap();
        assert_eq!(read_slot(&p, 0).unwrap().len(), MAX_INLINE_TUPLE - 1);
    }

    #[test]
    fn jumbo_chain_round_trip() {
        let total = JUMBO_PAYLOAD + 1000;
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        assert_eq!(jumbo_pages(total), 2);
        let mut first = vec![0u8; PAGE_SIZE];
        let mut cont = vec![0u8; PAGE_SIZE];
        init_jumbo(&mut first, true, total as u32, &data[..JUMBO_PAYLOAD]);
        init_jumbo(&mut cont, false, 0, &data[JUMBO_PAYLOAD..]);
        assert_eq!(kind(&first), KIND_JUMBO_FIRST);
        assert_eq!(kind(&cont), KIND_JUMBO_CONT);
        assert_eq!(jumbo_total(&first).unwrap(), total);
        let mut got = Vec::new();
        got.extend_from_slice(jumbo_chunk(&first, total));
        got.extend_from_slice(jumbo_chunk(&cont, total - JUMBO_PAYLOAD));
        assert_eq!(got, data);
        assert!(jumbo_total(&cont).is_err());
    }
}
