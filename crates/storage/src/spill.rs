//! Spill-to-disk overflow runs for external-memory operators.
//!
//! \[BKS01\]'s block-nested-loops skyline is specified over inputs that
//! need not fit in memory: tuples that survive the window but find it
//! full are written to a temporary overflow file and re-fed on the next
//! pass. This module is that substrate, kept deliberately generic so any
//! pipeline breaker can graduate to a disk-run architecture:
//!
//! * [`RunWriter`] / [`RunReader`] — serialize whole batches of
//!   [`Tuple`]s to a run file and read them back in write order;
//! * [`SpillManager`] — owns the run directory and its lifecycle: run
//!   naming, byte/run accounting, and **cleanup on drop** (the directory
//!   and everything in it is removed even when a pass errors mid-read).
//!
//! The on-disk format is a private length-prefixed binary encoding
//! (frame = tuple count + tuples; tuple = arity + tagged values — the
//! shared [`crate::codec`], which heap-file pages reuse). Runs are
//! temporary per-query files, never persisted artifacts, so the format
//! carries no version header and makes no compatibility promise.

use crate::codec::{read_exact, read_value, write_value};
use prefsql_types::{Error, Result, Tuple};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::codec::{tuple_spill_bytes, value_spill_bytes};

/// A completed overflow run: the file path plus its totals, returned by
/// [`RunWriter::finish`] and consumed by [`RunReader::open`]. The file
/// itself is owned by the [`SpillManager`] whose directory it lives in.
#[derive(Debug)]
pub struct SpillRun {
    path: PathBuf,
    /// Number of tuples written to the run.
    pub tuples: u64,
    /// Serialized bytes written to the run.
    pub bytes: u64,
}

impl SpillRun {
    /// The run file's path (inside its manager's spill directory).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete the run file eagerly (a fully re-fed run is dead weight;
    /// the manager's drop would remove it anyway, later).
    pub fn delete(self) -> Result<()> {
        fs::remove_file(&self.path)?;
        Ok(())
    }
}

/// Streams batches of tuples into one overflow run file.
#[derive(Debug)]
pub struct RunWriter {
    out: BufWriter<File>,
    path: PathBuf,
    tuples: u64,
    bytes: u64,
}

impl RunWriter {
    /// Append a whole batch of tuples (one frame) to the run. Batches
    /// are the write granularity — the external operators hand over the
    /// very `next_batch` buffers they pull — but [`RunReader`] yields
    /// tuples, so batch boundaries carry no semantics.
    pub fn write_batch(&mut self, batch: &[Tuple]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let count = u32::try_from(batch.len()).map_err(|_| {
            Error::Io(format!(
                "batch of {} tuples exceeds run format",
                batch.len()
            ))
        })?;
        self.out.write_all(&count.to_le_bytes())?;
        self.bytes += 4;
        for t in batch {
            let arity = u32::try_from(t.len()).map_err(|_| {
                Error::Io(format!("tuple of {} fields exceeds run format", t.len()))
            })?;
            self.out.write_all(&arity.to_le_bytes())?;
            for v in t.values() {
                write_value(&mut self.out, v)?;
            }
            self.bytes += tuple_spill_bytes(t) as u64;
        }
        self.tuples += count as u64;
        Ok(())
    }

    /// Append a single tuple (a one-tuple frame).
    pub fn write_tuple(&mut self, t: &Tuple) -> Result<()> {
        self.write_batch(std::slice::from_ref(t))
    }

    /// Tuples written so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Serialized bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush and seal the run for reading.
    pub fn finish(mut self) -> Result<SpillRun> {
        self.out.flush()?;
        Ok(SpillRun {
            path: self.path,
            tuples: self.tuples,
            bytes: self.bytes,
        })
    }
}

/// Reads a sealed run back, tuple by tuple, in write order.
#[derive(Debug)]
pub struct RunReader {
    input: BufReader<File>,
    /// Tuples left in the current frame.
    in_frame: u32,
    /// Tuples the run claims to hold — a clean EOF before this many is a
    /// truncation error, not an end-of-stream.
    remaining: u64,
}

impl RunReader {
    /// Open a sealed run for reading.
    pub fn open(run: &SpillRun) -> Result<Self> {
        Ok(RunReader {
            input: BufReader::new(File::open(&run.path)?),
            in_frame: 0,
            remaining: run.tuples,
        })
    }

    /// The next tuple, or `None` at a clean end of the run. A file that
    /// ends early (crash, concurrent truncation) is an [`Error::Io`].
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.in_frame == 0 {
            self.in_frame = u32::from_le_bytes(read_exact::<4>(&mut self.input)?);
            if self.in_frame == 0 {
                return Err(Error::Io("corrupt spill run: empty frame".into()));
            }
        }
        let arity = u32::from_le_bytes(read_exact::<4>(&mut self.input)?) as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(read_value(&mut self.input)?);
        }
        self.in_frame -= 1;
        self.remaining -= 1;
        Ok(Some(Tuple::new(values)))
    }

    /// Append the next frame's tuples to `out`. Returns `false` at a
    /// clean end of the run.
    pub fn next_batch(&mut self, out: &mut Vec<Tuple>) -> Result<bool> {
        match self.next_tuple()? {
            None => Ok(false),
            Some(first) => {
                out.push(first);
                while self.in_frame > 0 {
                    match self.next_tuple()? {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
                Ok(true)
            }
        }
    }
}

/// Observability counters for one external-memory evaluation — spilling
/// operators (the external skyline, the Grace hash join) report these
/// through the result surface so callers can see how a query behaved
/// under its window budget.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpillMetrics {
    /// Overflow runs written (0 = the window never overflowed).
    pub runs_written: u64,
    /// Serialized bytes written across all runs.
    pub bytes_spilled: u64,
    /// Passes over candidate data, counting the initial streaming pass;
    /// `0` means the evaluation never left memory.
    pub passes: u32,
    /// The (now removed) spill directory, when any run was written —
    /// callers assert cleanup against it.
    pub spill_dir: Option<PathBuf>,
}

impl SpillMetrics {
    /// Fold another operator's counters into this one (a statement may
    /// spill in several operators — e.g. a Grace hash join feeding an
    /// external skyline; the first recorded spill dir is kept).
    pub fn absorb(&mut self, other: &SpillMetrics) {
        self.runs_written += other.runs_written;
        self.bytes_spilled += other.bytes_spilled;
        self.passes += other.passes;
        if self.spill_dir.is_none() {
            self.spill_dir = other.spill_dir.clone();
        }
    }
}

static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns one query's overflow runs: a private temp directory, run naming,
/// byte/run accounting, and removal of the whole directory on drop —
/// including the error paths, where readers and writers are simply
/// dropped mid-run.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    next_run: u64,
    runs_written: u64,
    bytes_spilled: u64,
}

impl SpillManager {
    /// A manager with a fresh private directory under the system temp
    /// dir (`prefsql-spill-<pid>-<seq>`).
    pub fn new() -> Result<Self> {
        Self::new_in(&std::env::temp_dir())
    }

    /// A manager with a fresh private directory under `base` — tests use
    /// this to assert cleanup against a directory they control.
    pub fn new_in(base: &Path) -> Result<Self> {
        let dir = base.join(format!(
            "prefsql-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(SpillManager {
            dir,
            next_run: 0,
            runs_written: 0,
            bytes_spilled: 0,
        })
    }

    /// The manager's private run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Start a new overflow run file in the manager's directory.
    pub fn begin_run(&mut self) -> Result<RunWriter> {
        let path = self.dir.join(format!("run-{}.bin", self.next_run));
        self.next_run += 1;
        Ok(RunWriter {
            out: BufWriter::new(File::create(&path)?),
            path,
            tuples: 0,
            bytes: 0,
        })
    }

    /// Record a sealed run in the manager's accounting. Callers seal a
    /// run with [`RunWriter::finish`] and report it here (the writer
    /// can't borrow the manager while the manager may need to open the
    /// next run).
    pub fn record_run(&mut self, run: &SpillRun) {
        self.runs_written += 1;
        self.bytes_spilled += run.bytes;
    }

    /// Overflow runs recorded so far.
    pub fn runs_written(&self) -> u64 {
        self.runs_written
    }

    /// Serialized bytes recorded so far.
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        // Best-effort removal of the whole run directory; a failure here
        // (e.g. the temp filesystem vanished) must not turn into a
        // panic-in-drop.
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{tuple, Date, Value};

    fn sample_batch() -> Vec<Tuple> {
        vec![
            tuple![1, "audi", 2.5, true],
            Tuple::new(vec![Value::Null, Value::Date(Date::from_days(10_000))]),
            tuple![-7],
        ]
    }

    #[test]
    fn round_trips_batches_in_order() {
        let mut mgr = SpillManager::new().unwrap();
        let mut w = mgr.begin_run().unwrap();
        let batch = sample_batch();
        w.write_batch(&batch).unwrap();
        w.write_tuple(&tuple![42, "tail"]).unwrap();
        assert_eq!(w.tuples(), 4);
        let run = w.finish().unwrap();
        mgr.record_run(&run);
        assert_eq!(mgr.runs_written(), 1);
        assert_eq!(mgr.bytes_spilled(), run.bytes);

        let mut r = RunReader::open(&run).unwrap();
        let mut got = Vec::new();
        while let Some(t) = r.next_tuple().unwrap() {
            got.push(t);
        }
        let mut expected = batch;
        expected.push(tuple![42, "tail"]);
        assert_eq!(got, expected);
        assert!(r.next_tuple().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn batched_reads_yield_whole_frames() {
        let mut mgr = SpillManager::new().unwrap();
        let mut w = mgr.begin_run().unwrap();
        w.write_batch(&[tuple![1], tuple![2]]).unwrap();
        w.write_batch(&[]).unwrap(); // empty batches write nothing
        w.write_batch(&[tuple![3]]).unwrap();
        let run = w.finish().unwrap();
        let mut r = RunReader::open(&run).unwrap();
        let mut out = Vec::new();
        assert!(r.next_batch(&mut out).unwrap());
        assert_eq!(out, vec![tuple![1], tuple![2]]);
        assert!(r.next_batch(&mut out).unwrap());
        assert_eq!(out.len(), 3);
        assert!(!r.next_batch(&mut out).unwrap());
    }

    #[test]
    fn byte_accounting_matches_estimate() {
        let mut mgr = SpillManager::new().unwrap();
        let mut w = mgr.begin_run().unwrap();
        let batch = sample_batch();
        w.write_batch(&batch).unwrap();
        let estimated: u64 = batch.iter().map(|t| tuple_spill_bytes(t) as u64).sum();
        let run = w.finish().unwrap();
        // One 4-byte frame header plus the per-tuple estimates.
        assert_eq!(run.bytes, 4 + estimated);
        assert_eq!(
            run.bytes,
            std::fs::metadata(run.path()).unwrap().len(),
            "estimate must equal the true on-disk size"
        );
    }

    #[test]
    fn manager_drop_removes_directory() {
        let dir;
        {
            let mut mgr = SpillManager::new().unwrap();
            dir = mgr.dir().to_path_buf();
            let mut w = mgr.begin_run().unwrap();
            w.write_batch(&sample_batch()).unwrap();
            let run = w.finish().unwrap();
            mgr.record_run(&run);
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "drop must remove the spill directory");
    }

    /// The crash-safety contract: a pass that errors mid-read (here: a
    /// poisoned run file, truncated behind the reader's back) surfaces
    /// an `Error::Io` — and the manager's drop still removes every temp
    /// file, asserted by the directory disappearing.
    #[test]
    fn poisoned_reader_errors_and_drop_still_cleans_up() {
        let base = std::env::temp_dir().join(format!(
            "prefsql-spill-test-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&base).unwrap();
        let dir;
        {
            let mut mgr = SpillManager::new_in(&base).unwrap();
            dir = mgr.dir().to_path_buf();
            let mut w = mgr.begin_run().unwrap();
            for _ in 0..50 {
                w.write_batch(&sample_batch()).unwrap();
            }
            let run = w.finish().unwrap();
            mgr.record_run(&run);

            // Poison the run: truncate it to half, then read through it.
            let full = fs::metadata(run.path()).unwrap().len();
            let f = fs::OpenOptions::new().write(true).open(run.path()).unwrap();
            f.set_len(full / 2).unwrap();
            drop(f);

            let mut r = RunReader::open(&run).unwrap();
            let err = loop {
                match r.next_tuple() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("truncated run must not end cleanly"),
                    Err(e) => break e,
                }
            };
            assert!(matches!(err, Error::Io(_)), "got {err:?}");
            // Reader and manager both dropped here, mid-error.
        }
        assert!(!dir.exists(), "error path must still remove temp files");
        assert_eq!(
            fs::read_dir(&base).unwrap().count(),
            0,
            "spill base dir must be empty after the erroring pass"
        );
        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn eager_run_delete_removes_the_file() {
        let mut mgr = SpillManager::new().unwrap();
        let mut w = mgr.begin_run().unwrap();
        w.write_tuple(&tuple![1]).unwrap();
        let run = w.finish().unwrap();
        let path = run.path().to_path_buf();
        assert!(path.exists());
        run.delete().unwrap();
        assert!(!path.exists());
        assert!(mgr.dir().exists(), "directory outlives eager run deletes");
    }

    #[test]
    fn strings_survive_utf8_and_empty_tuples_roundtrip() {
        let mut mgr = SpillManager::new().unwrap();
        let mut w = mgr.begin_run().unwrap();
        let batch = vec![tuple!["grüß gott", ""], Tuple::new(vec![])];
        w.write_batch(&batch).unwrap();
        let run = w.finish().unwrap();
        let mut r = RunReader::open(&run).unwrap();
        assert_eq!(r.next_tuple().unwrap().unwrap(), batch[0]);
        assert_eq!(r.next_tuple().unwrap().unwrap(), batch[1]);
        assert!(r.next_tuple().unwrap().is_none());
    }
}
