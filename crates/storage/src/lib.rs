//! # prefsql-storage
//!
//! The storage substrate of the Preference SQL reproduction: in-memory
//! heap tables, hash and ordered (B-tree) secondary indexes, and a catalog
//! mapping names to tables and view definitions.
//!
//! The paper runs Preference SQL as a pre-processor in front of a host SQL
//! DBMS (Informix, Oracle, DB2, Sybase). This crate plus `prefsql-engine`
//! *is* our host DBMS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod index;
pub mod matview;
pub mod spill;
pub mod table;

pub use catalog::{Catalog, ViewDef};
pub use index::{BTreeIndex, HashIndex, IndexKind};
pub use matview::{MatViewDef, MatViewEntry};
pub use spill::{RunReader, RunWriter, SpillManager, SpillRun};
pub use table::Table;
