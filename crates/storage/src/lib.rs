//! # prefsql-storage
//!
//! The storage substrate of the Preference SQL reproduction: in-memory
//! heap tables, hash and ordered (B-tree) secondary indexes, and a catalog
//! mapping names to tables and view definitions.
//!
//! The paper runs Preference SQL as a pre-processor in front of a host SQL
//! DBMS (Informix, Oracle, DB2, Sybase). This crate plus `prefsql-engine`
//! *is* our host DBMS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod catalog;
pub mod codec;
pub mod heap;
pub mod index;
pub mod matview;
pub mod page;
pub mod pool;
pub mod spill;
pub mod table;

pub use backend::{MemBackend, PagedBackend, StorageBackend};
pub use catalog::{Catalog, ViewDef};
pub use heap::HeapFile;
pub use index::{BTreeIndex, HashIndex, IndexKind};
pub use matview::{MatViewDef, MatViewEntry};
pub use pool::{BufferPool, PoolStats};
pub use spill::{RunReader, RunWriter, SpillManager, SpillRun};
pub use table::Table;
