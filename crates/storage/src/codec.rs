//! The tagged-value binary codec shared by every on-disk tuple format.
//!
//! Spill runs ([`crate::spill`]) and heap-file pages ([`crate::page`])
//! serialize tuples identically: a `u32` arity followed by one tagged
//! value per field (tag byte + fixed or length-prefixed payload). This
//! module is the single definition of that encoding, so the spill
//! window's byte accounting, the Grace join's partition sizing and the
//! paged backend's free-space math all agree on what a tuple weighs.
//!
//! The encoding is private to this crate's file formats: it carries no
//! version header and makes no cross-version compatibility promise.

use prefsql_types::{Date, Error, Result, Tuple, Value};
use std::io::{Read, Write};

/// Value tags (one byte per value).
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DATE: u8 = 5;

/// The serialized size of one tuple (arity header + tagged values), in
/// bytes. Also used as the in-memory byte estimate for window
/// accounting, so "window budget" and "bytes spilled" speak the same
/// unit.
pub fn tuple_spill_bytes(t: &Tuple) -> usize {
    4 + t.values().iter().map(value_spill_bytes).sum::<usize>()
}

/// The serialized size of one value (tag byte + payload). The single
/// size table behind every byte estimate — callers that weigh candidates
/// without building [`Tuple`]s sum this directly.
pub fn value_spill_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Int(_) | Value::Float(_) | Value::Date(_) => 9,
        Value::Str(s) => 5 + s.len(),
    }
}

pub(crate) fn write_value(out: &mut impl Write, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.write_all(&[TAG_NULL])?,
        Value::Bool(b) => out.write_all(&[TAG_BOOL, u8::from(*b)])?,
        Value::Int(i) => {
            out.write_all(&[TAG_INT])?;
            out.write_all(&i.to_le_bytes())?;
        }
        Value::Float(f) => {
            out.write_all(&[TAG_FLOAT])?;
            out.write_all(&f.to_bits().to_le_bytes())?;
        }
        Value::Str(s) => {
            let len = u32::try_from(s.len())
                .map_err(|_| Error::Io(format!("string of {} bytes exceeds format", s.len())))?;
            out.write_all(&[TAG_STR])?;
            out.write_all(&len.to_le_bytes())?;
            out.write_all(s.as_bytes())?;
        }
        Value::Date(d) => {
            out.write_all(&[TAG_DATE])?;
            out.write_all(&d.days().to_le_bytes())?;
        }
    }
    Ok(())
}

pub(crate) fn read_exact<const N: usize>(input: &mut impl Read) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    input
        .read_exact(&mut buf)
        .map_err(|e| Error::Io(format!("truncated tuple data: {e}")))?;
    Ok(buf)
}

pub(crate) fn read_value(input: &mut impl Read) -> Result<Value> {
    let [tag] = read_exact::<1>(input)?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(read_exact::<1>(input)?[0] != 0),
        TAG_INT => Value::Int(i64::from_le_bytes(read_exact::<8>(input)?)),
        TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(read_exact::<8>(input)?))),
        TAG_STR => {
            let len = u32::from_le_bytes(read_exact::<4>(input)?) as usize;
            let mut bytes = vec![0u8; len];
            input
                .read_exact(&mut bytes)
                .map_err(|e| Error::Io(format!("truncated tuple data: {e}")))?;
            Value::Str(
                String::from_utf8(bytes).map_err(|e| Error::Io(format!("corrupt tuple: {e}")))?,
            )
        }
        TAG_DATE => Value::Date(Date::from_days(i64::from_le_bytes(read_exact::<8>(input)?))),
        other => return Err(Error::Io(format!("corrupt tuple: unknown tag {other}"))),
    })
}

/// Serialize one tuple (arity header + values) onto the end of `buf`.
pub(crate) fn encode_tuple(buf: &mut Vec<u8>, t: &Tuple) -> Result<()> {
    let arity = u32::try_from(t.len())
        .map_err(|_| Error::Io(format!("tuple of {} fields exceeds format", t.len())))?;
    buf.extend_from_slice(&arity.to_le_bytes());
    for v in t.values() {
        write_value(buf, v)?;
    }
    Ok(())
}

/// Deserialize one tuple from the front of `bytes` (the slice advances
/// past what was consumed).
pub(crate) fn decode_tuple(bytes: &mut &[u8]) -> Result<Tuple> {
    let arity = u32::from_le_bytes(read_exact::<4>(bytes)?) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(read_value(bytes)?);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::tuple;

    #[test]
    fn tuples_round_trip_and_sizes_are_exact() {
        let cases = vec![
            tuple![1, "audi", 2.5, true],
            Tuple::new(vec![Value::Null, Value::Date(Date::from_days(10_000))]),
            Tuple::new(vec![]),
            tuple!["grüß gott", ""],
        ];
        for t in cases {
            let mut buf = Vec::new();
            encode_tuple(&mut buf, &t).unwrap();
            assert_eq!(
                buf.len(),
                tuple_spill_bytes(&t),
                "size table drifted: {t:?}"
            );
            let mut slice = &buf[..];
            assert_eq!(decode_tuple(&mut slice).unwrap(), t);
            assert!(slice.is_empty(), "decode must consume exactly one tuple");
        }
    }

    #[test]
    fn truncation_and_bad_tags_error() {
        let mut buf = Vec::new();
        encode_tuple(&mut buf, &tuple![17, "body"]).unwrap();
        let mut short = &buf[..buf.len() - 1];
        assert!(matches!(decode_tuple(&mut short), Err(Error::Io(_))));
        buf[4] = 99; // clobber the first value tag
        let mut bad = &buf[..];
        assert!(matches!(decode_tuple(&mut bad), Err(Error::Io(_))));
    }
}
