//! Car datasets: the paper's 3-row §3.2 fixture and a parameterized
//! used-car market for the §2.2.2 Opel scenario.

use prefsql_storage::Table;
use prefsql_types::{tuple, Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The §3.2 `Cars` fixture: Audi A6, BMW 5 series, Volkswagen Beetle.
pub fn paper_fixture() -> Table {
    let schema = Schema::new(vec![
        Column::new("identifier", DataType::Int).not_null(),
        Column::new("make", DataType::Str),
        Column::new("model", DataType::Str),
        Column::new("price", DataType::Int),
        Column::new("mileage", DataType::Int),
        Column::new("airbag", DataType::Str),
        Column::new("diesel", DataType::Str),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("cars", schema);
    for row in [
        tuple![1, "Audi", "A6", 40_000, 15_000, "yes", "no"],
        tuple![2, "BMW", "5 series", 35_000, 30_000, "yes", "yes"],
        tuple![3, "Volkswagen", "Beetle", 20_000, 10_000, "yes", "no"],
    ] {
        t.insert(row).expect("fixture row valid");
    }
    t
}

/// Makes available on the synthetic used-car market.
pub const MAKES: [&str; 6] = ["Opel", "Audi", "BMW", "Volkswagen", "Ford", "Fiat"];
/// Body categories.
pub const CATEGORIES: [&str; 4] = ["roadster", "passenger", "suv", "pickup"];
/// Paint colors.
pub const COLORS: [&str; 6] = ["red", "black", "white", "blue", "green", "silver"];

/// A synthetic used-car market:
/// `car(id, make, category, color, price, power, mileage, diesel)`.
///
/// Prices cluster around 40 000 (the Opel example's AROUND target) with a
/// long tail, power correlates positively with price, mileage is
/// independent — realistic enough that Pareto fronts are non-trivial.
pub fn market(n: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("make", DataType::Str),
        Column::new("category", DataType::Str),
        Column::new("color", DataType::Str),
        Column::new("price", DataType::Int),
        Column::new("power", DataType::Int),
        Column::new("mileage", DataType::Int),
        Column::new("diesel", DataType::Str),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("car", schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for id in 0..n {
        let price: i64 = 10_000 + rng.gen_range(0..70_000i64) / (1 + rng.gen_range(0..3i64));
        let power = 50 + (price / 700) + rng.gen_range(0..80i64);
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::str(MAKES[rng.gen_range(0..MAKES.len())]),
            Value::str(CATEGORIES[rng.gen_range(0..CATEGORIES.len())]),
            Value::str(COLORS[rng.gen_range(0..COLORS.len())]),
            Value::Int(price),
            Value::Int(power),
            Value::Int(rng.gen_range(0..250_000)),
            Value::str(if rng.gen_bool(0.4) { "yes" } else { "no" }),
        ]);
        t.insert(row).expect("generated row valid");
    }
    t
}

/// The flagship Opel preference query of §2.2.2, verbatim.
pub const OPEL_QUERY: &str = "SELECT * FROM car WHERE make = 'Opel' \
     PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND \
     price AROUND 40000 AND HIGHEST(power)) \
     CASCADE color = 'red' CASCADE LOWEST(mileage)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_the_paper_relation() {
        let t = paper_fixture();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows()[1][1], Value::str("BMW"));
    }

    #[test]
    fn market_is_deterministic_per_seed() {
        let a = market(100, 7);
        let b = market(100, 7);
        let c = market(100, 8);
        assert_eq!(a.rows(), b.rows());
        assert_ne!(a.rows(), c.rows());
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn market_values_in_domain() {
        let t = market(500, 1);
        for row in t.rows() {
            let make = row[1].as_str().unwrap();
            assert!(MAKES.contains(&make));
            let price = row[4].as_int().unwrap();
            assert!((10_000..90_000).contains(&price));
            let power = row[5].as_int().unwrap();
            assert!(power >= 50);
        }
    }
}
