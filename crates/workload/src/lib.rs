//! # prefsql-workload
//!
//! Dataset generators for every experiment in the reproduction:
//!
//! * [`oldtimer`] — the fixed 6-row fixture of paper §2.2.3;
//! * [`cars`] — the 3-row §3.2 fixture plus a parameterized used-car
//!   market (the §2.2.2 Opel scenario);
//! * [`jobs`] — the **E1 substitute** for the proprietary 1.4 M-tuple
//!   German job-portal relation: 74 attributes, skewed distributions,
//!   configurable row count;
//! * [`trips`], [`computers`], [`products`], [`hotels`] — the e-shop
//!   scenarios of §2.2.1/§4.1;
//! * [`cosima`] — simulated COSIMA meta-search snapshots (§4.3);
//! * [`bks01`] — independent/correlated/anti-correlated point sets, the
//!   standard skyline data model of \[BKS01\], for the A1 ablation.
//!
//! All generators are deterministic under a caller-provided seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bks01;
pub mod cars;
pub mod computers;
pub mod cosima;
pub mod hotels;
pub mod jobs;
pub mod oldtimer;
pub mod products;
pub mod trips;
