//! The E1 workload: a synthetic stand-in for the proprietary job-portal
//! relation of paper §3.3 (Informix, 1.4 M tuples, 74 attributes
//! describing professional skill profiles).
//!
//! The substitution (DESIGN.md §5): the benchmark measures the cost
//! structure of the rewritten query — an indexable *pre-selection*
//! producing a candidate set of a controlled size (300/600/1000 in the
//! paper), followed by a second selection evaluated as hard conjunctive
//! WHERE, hard disjunctive WHERE, or four Pareto-accumulated soft
//! preferences. That structure depends on candidate-set size and attribute
//! shapes, not on the confidential profile contents, so a schema-faithful
//! synthetic relation preserves the experiment.

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Date, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of attributes in the profile relation (as in the paper).
pub const ATTRIBUTES: usize = 74;
/// Number of distinct regions (pre-selection attribute).
pub const REGIONS: usize = 20;
/// Number of distinct profession codes.
pub const PROFESSIONS: usize = 50;

/// The named (non-filler) attributes, in schema order.
const NAMED: [(&str, DataType); 14] = [
    ("id", DataType::Int),
    ("region", DataType::Int),
    ("profession", DataType::Int),
    ("salary", DataType::Int),
    ("experience_years", DataType::Int),
    ("education", DataType::Int),
    ("availability", DataType::Date),
    ("english_level", DataType::Int),
    ("german_level", DataType::Int),
    ("skill_java", DataType::Int),
    ("skill_sql", DataType::Int),
    ("skill_admin", DataType::Int),
    ("mobility_km", DataType::Int),
    ("drivers_license", DataType::Bool),
];

/// The profile schema: 14 named attributes plus filler columns up to
/// [`ATTRIBUTES`] (`extra_00` ... — portals carry many rarely-queried
/// fields; they matter for tuple width, which the benchmark preserves).
pub fn schema() -> Schema {
    let mut cols: Vec<Column> = NAMED.iter().map(|(n, t)| Column::new(*n, *t)).collect();
    for i in 0..(ATTRIBUTES - NAMED.len()) {
        cols.push(Column::new(format!("extra_{i:02}"), DataType::Int));
    }
    Schema::new(cols).expect("static schema is valid")
}

/// Generate the `profiles` relation with `n` rows.
///
/// Distributions: region roughly uniform; profession Zipf-ish (popular
/// codes dominate, as real portals show); salary log-normal-ish around
/// 45 000; experience 0–40 years correlated with salary; skills 0–5 with
/// most mass at low values; availability dates within a year of
/// 2001-10-01 (the report's date).
pub fn table(n: usize, seed: u64) -> Table {
    let mut t = Table::new("profiles", schema());
    let epoch = Date::from_ymd(2001, 10, 1).expect("valid date").days();
    let mut rng = StdRng::seed_from_u64(seed);
    for id in 0..n {
        let mut values = Vec::with_capacity(ATTRIBUTES);
        let region = rng.gen_range(0..REGIONS as i64);
        // Zipf-ish profession: square a uniform draw.
        let u: f64 = rng.gen();
        let profession = ((u * u) * PROFESSIONS as f64) as i64;
        let experience = rng.gen_range(0..41i64);
        let salary_base = 25_000.0 + 1_200.0 * experience as f64;
        let salary = (salary_base * (0.6 + 1.2 * rng.gen::<f64>())) as i64;
        let skill = |rng: &mut StdRng| {
            let u: f64 = rng.gen();
            (u * u * 6.0) as i64 // 0..=5, skewed low
        };
        values.push(Value::Int(id as i64));
        values.push(Value::Int(region));
        values.push(Value::Int(profession));
        values.push(Value::Int(salary));
        values.push(Value::Int(experience));
        values.push(Value::Int(rng.gen_range(0..6)));
        values.push(Value::Date(Date::from_days(
            epoch + rng.gen_range(-30..335i64),
        )));
        values.push(Value::Int(rng.gen_range(0..4)));
        values.push(Value::Int(rng.gen_range(0..4)));
        values.push(Value::Int(skill(&mut rng)));
        values.push(Value::Int(skill(&mut rng)));
        values.push(Value::Int(skill(&mut rng)));
        values.push(Value::Int(rng.gen_range(0..200i64) * 5));
        values.push(Value::Bool(rng.gen_bool(0.8)));
        for _ in 0..(ATTRIBUTES - NAMED.len()) {
            values.push(Value::Int(rng.gen_range(0..1000)));
        }
        t.insert(Tuple::new(values)).expect("generated row valid");
    }
    t
}

/// Find a pre-selection predicate (`region = r AND salary BETWEEN lo AND
/// hi`) whose candidate-set size is as close as possible to `target`,
/// mirroring how the paper tuned its pre-selection masks to 300/600/1000
/// hits. Returns `(region, salary_lo, salary_hi, actual_size)`.
pub fn preselection_for_size(t: &Table, target: usize) -> (i64, i64, i64, usize) {
    let region_idx = t.schema().resolve(None, "region").expect("region exists");
    let salary_idx = t.schema().resolve(None, "salary").expect("salary exists");
    // Use region 0 and widen a salary band around the median until the
    // count reaches the target.
    let region = 0i64;
    let mut salaries: Vec<i64> = t
        .rows()
        .iter()
        .filter(|r| r[region_idx].as_int() == Some(region))
        .map(|r| r[salary_idx].as_int().expect("salary is int"))
        .collect();
    salaries.sort_unstable();
    if salaries.is_empty() {
        return (region, 0, 0, 0);
    }
    let mid = salaries.len() / 2;
    let take = target.min(salaries.len());
    // Window of `take` salaries centred on the median.
    let lo_idx = mid.saturating_sub(take / 2);
    let hi_idx = (lo_idx + take).min(salaries.len()) - 1;
    let (lo, hi) = (salaries[lo_idx], salaries[hi_idx]);
    let actual = salaries.iter().filter(|&&s| s >= lo && s <= hi).count();
    (region, lo, hi, actual)
}

/// The two second-selection condition sets of the benchmark (§3.3 ran "two
/// different conditions chosen for the second selection"; each is four
/// criteria, turned into conjunctive WHERE, disjunctive WHERE, or four
/// Pareto-accumulated preferences).
///
/// Returned as `(hard_atom, preference_atom)` pairs so the harness can
/// assemble all three query styles from one source of truth.
pub fn second_selection(condition_set: usize) -> Vec<(&'static str, &'static str)> {
    match condition_set {
        0 => vec![
            ("experience_years >= 10", "HIGHEST(experience_years)"),
            ("skill_java >= 4", "HIGHEST(skill_java)"),
            ("english_level >= 2", "HIGHEST(english_level)"),
            ("mobility_km >= 500", "HIGHEST(mobility_km)"),
        ],
        _ => vec![
            ("salary <= 40000", "LOWEST(salary)"),
            ("skill_sql >= 4", "HIGHEST(skill_sql)"),
            ("education >= 4", "HIGHEST(education)"),
            (
                "experience_years BETWEEN 5 AND 15",
                "experience_years AROUND 10",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_74_attributes() {
        assert_eq!(schema().len(), ATTRIBUTES);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = table(200, 42);
        let b = table(200, 42);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn value_domains() {
        let t = table(500, 1);
        let s = t.schema();
        let region = s.resolve(None, "region").unwrap();
        let skill = s.resolve(None, "skill_java").unwrap();
        for row in t.rows() {
            assert!((0..REGIONS as i64).contains(&row[region].as_int().unwrap()));
            assert!((0..=5).contains(&row[skill].as_int().unwrap()));
        }
    }

    #[test]
    fn preselection_hits_target_size() {
        let t = table(20_000, 3);
        for target in [300, 600, 1000] {
            let (_, lo, hi, actual) = preselection_for_size(&t, target);
            assert!(lo <= hi);
            // Ties at the window edges can add a few rows; stay within 5%.
            let tolerance = target / 20 + 2;
            assert!(
                actual.abs_diff(target) <= tolerance,
                "target {target}, got {actual}"
            );
        }
    }

    #[test]
    fn second_selection_sets_have_four_criteria() {
        assert_eq!(second_selection(0).len(), 4);
        assert_eq!(second_selection(1).len(), 4);
        assert_ne!(second_selection(0), second_selection(1));
    }
}
