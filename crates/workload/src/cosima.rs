//! Simulated COSIMA meta-search snapshots (paper §4.3).
//!
//! COSIMA gathered intermediate comparison-shopping results from live
//! e-shops (Amazon, BOL, ...) into a temporary database and ran Preference
//! SQL over it. We simulate the gathering step: each snapshot is a batch
//! of offers for one product query, with per-shop price/shipping/rating
//! spreads and a configurable simulated shop-access delay — §4.3's
//! response times were "dominated by accessing the participating e-shops".

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Participating shops.
pub const SHOPS: [&str; 6] = [
    "Amazonia",
    "BOLero",
    "Buchladen",
    "MediaMart",
    "Libri24",
    "Dussmann",
];

/// One simulated meta-search gathering round.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The temporary offers relation.
    pub offers: Table,
    /// The simulated wall-clock cost of contacting the shops (dominant in
    /// the paper's 1–2 s end-to-end times).
    pub shop_access: Duration,
}

/// Gather a snapshot of `n` offers (COSIMA-era result sets: a few hundred
/// to a couple of thousand rows). Offers for the same title differ across
/// shops in price, shipping and condition — the Pareto trade-off surface.
pub fn snapshot(n: usize, seed: u64) -> Snapshot {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("shop", DataType::Str),
        Column::new("title", DataType::Str),
        Column::new("price", DataType::Float),
        Column::new("shipping_days", DataType::Int),
        Column::new("rating", DataType::Int),
        Column::new("used", DataType::Bool),
    ])
    .expect("static schema is valid");
    let mut offers = Table::new("offers", schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let titles = [
        "Skyline Operator",
        "Preference World",
        "Deductive Databases",
    ];
    for id in 0..n {
        let list_price = 20.0 + rng.gen::<f64>() * 60.0;
        let shop = SHOPS[rng.gen_range(0..SHOPS.len())];
        let used = rng.gen_bool(0.3);
        let price = list_price * if used { 0.6 } else { 1.0 } * (0.85 + rng.gen::<f64>() * 0.3);
        // Cheap shops tend to ship slower.
        let shipping = 1 + ((90.0 - price).max(0.0) / 18.0) as i64 + rng.gen_range(0..3i64);
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::str(shop),
            Value::str(titles[rng.gen_range(0..titles.len())]),
            Value::Float((price * 100.0).round() / 100.0),
            Value::Int(shipping),
            Value::Int(rng.gen_range(1..6)),
            Value::Bool(used),
        ]);
        offers.insert(row).expect("generated row valid");
    }
    // The paper: meta-search end-to-end 1–2 s, dominated by shop access.
    let shop_access = Duration::from_millis(900 + rng.gen_range(0..900u64));
    Snapshot {
        offers,
        shop_access,
    }
}

/// A typical COSIMA comparison-shopping preference: cheap AND fast
/// delivery, then good shop rating.
pub const COMPARISON_QUERY: &str = "SELECT * FROM offers \
     PREFERRING (LOWEST(price) AND LOWEST(shipping_days)) CASCADE HIGHEST(rating)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape() {
        let s = snapshot(500, 4);
        assert_eq!(s.offers.len(), 500);
        assert!(s.shop_access >= Duration::from_millis(900));
        assert!(s.shop_access <= Duration::from_millis(1800));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            snapshot(100, 7).offers.rows(),
            snapshot(100, 7).offers.rows()
        );
    }
}
