//! Synthetic point sets in the \[BKS01\] skyline data model:
//! independent, correlated and anti-correlated dimensions. Used by the A1
//! ablation (rewrite vs. native skyline algorithms), where the
//! distribution controls the maximal-set size.

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attribute-correlation regimes of \[BKS01\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Dimensions drawn independently — moderate skyline.
    Independent,
    /// Dimensions positively correlated — tiny skyline.
    Correlated,
    /// Dimensions anti-correlated — huge skyline (the hard case).
    AntiCorrelated,
}

impl Distribution {
    /// All three regimes.
    pub const ALL: [Distribution; 3] = [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ];

    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }
}

/// Generate raw `n × d` points in `[0, 1)^d`.
pub fn points(n: usize, d: usize, dist: Distribution, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match dist {
            Distribution::Independent => (0..d).map(|_| rng.gen()).collect(),
            Distribution::Correlated => {
                let base: f64 = rng.gen();
                (0..d)
                    .map(|_| (base + (rng.gen::<f64>() - 0.5) * 0.2).clamp(0.0, 1.0))
                    .collect()
            }
            Distribution::AntiCorrelated => {
                // Points near the hyperplane Σx = d/2: low in one dimension
                // means high in the others.
                let mut v: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
                let sum: f64 = v.iter().sum();
                let shift = (d as f64 / 2.0 - sum) / d as f64;
                for x in &mut v {
                    *x = (*x + shift + (rng.gen::<f64>() - 0.5) * 0.1).clamp(0.0, 1.0);
                }
                v
            }
        })
        .collect()
}

/// Wrap points into a relation `points(id, d0, d1, ...)` for SQL-side
/// experiments.
pub fn table(n: usize, d: usize, dist: Distribution, seed: u64) -> Table {
    let mut cols = vec![Column::new("id", DataType::Int).not_null()];
    for i in 0..d {
        cols.push(Column::new(format!("d{i}"), DataType::Float));
    }
    let schema = Schema::new(cols).expect("static schema is valid");
    let mut t = Table::new("points", schema);
    for (id, p) in points(n, d, dist, seed).into_iter().enumerate() {
        let mut values = vec![Value::Int(id as i64)];
        values.extend(p.into_iter().map(Value::Float));
        t.insert(Tuple::new(values)).expect("generated row valid");
    }
    t
}

/// The Preference SQL query computing the skyline (all dimensions LOWEST,
/// Pareto-accumulated).
pub fn skyline_query(d: usize) -> String {
    let prefs: Vec<String> = (0..d).map(|i| format!("LOWEST(d{i})")).collect();
    format!("SELECT * FROM points PREFERRING {}", prefs.join(" AND "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skyline_size(pts: &[Vec<f64>]) -> usize {
        pts.iter()
            .filter(|a| {
                !pts.iter().any(|b| {
                    b.iter().zip(a.iter()).all(|(x, y)| x <= y)
                        && b.iter().zip(a.iter()).any(|(x, y)| x < y)
                })
            })
            .count()
    }

    #[test]
    fn distribution_controls_skyline_size() {
        let n = 600;
        let corr = skyline_size(&points(n, 3, Distribution::Correlated, 1));
        let ind = skyline_size(&points(n, 3, Distribution::Independent, 1));
        let anti = skyline_size(&points(n, 3, Distribution::AntiCorrelated, 1));
        assert!(corr < ind, "correlated {corr} !< independent {ind}");
        assert!(ind < anti, "independent {ind} !< anti {anti}");
    }

    #[test]
    fn table_and_query_shape() {
        let t = table(50, 4, Distribution::Independent, 2);
        assert_eq!(t.schema().len(), 5);
        assert_eq!(t.len(), 50);
        let q = skyline_query(4);
        assert!(q.contains("LOWEST(d3)"));
    }

    #[test]
    fn points_stay_in_unit_cube() {
        for dist in Distribution::ALL {
            for p in points(200, 5, dist, 3) {
                for x in p {
                    assert!((0.0..=1.0).contains(&x), "{dist:?} produced {x}");
                }
            }
        }
    }
}
