//! The hotel scenario of §2.2.1 (the NEG `location <> 'downtown'`
//! example) and the §4.2 mobile/location-based search.

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hotel locations.
pub const LOCATIONS: [&str; 5] = ["downtown", "suburb", "airport", "beach", "oldtown"];

/// `hotels(id, name, location, price, stars, distance_km)` — `n` hotels;
/// `distance_km` is the distance to the (simulated) mobile user, for
/// location-based preference queries.
pub fn table(n: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("name", DataType::Str),
        Column::new("location", DataType::Str),
        Column::new("price", DataType::Int),
        Column::new("stars", DataType::Int),
        Column::new("distance_km", DataType::Float),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("hotels", schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for id in 0..n {
        let stars = rng.gen_range(1..6i64);
        let location = LOCATIONS[rng.gen_range(0..LOCATIONS.len())];
        let base = 40 + stars * 35;
        let premium = if location == "downtown" || location == "beach" {
            40
        } else {
            0
        };
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::str(format!("Hotel {id}")),
            Value::str(location),
            Value::Int(base + premium + rng.gen_range(0..60i64)),
            Value::Int(stars),
            Value::Float((rng.gen::<f64>() * 200.0).round() / 10.0),
        ]);
        t.insert(row).expect("generated row valid");
    }
    t
}

/// The §2.2.1 NEG query, verbatim.
pub const NEG_QUERY: &str = "SELECT * FROM hotels PREFERRING location <> 'downtown'";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_locations_eventually() {
        let t = table(400, 9);
        let s = t.schema();
        let loc = s.resolve(None, "location").unwrap();
        for l in LOCATIONS {
            assert!(
                t.rows().iter().any(|r| r[loc].as_str() == Some(l)),
                "missing location {l}"
            );
        }
    }
}
