//! The washing-machine e-shop of §4.1 (the dynamic search-mask example).

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Manufacturers, including the paper's fictional 'Aturi'.
pub const MANUFACTURERS: [&str; 5] = ["Aturi", "Whirlwind", "Boschke", "Mielo", "Samsong"];

/// `products(id, manufacturer, width, spinspeed, powerconsumption,
/// waterconsumption, price)` — `n` washing machines.
pub fn table(n: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("manufacturer", DataType::Str),
        Column::new("width", DataType::Int),
        Column::new("spinspeed", DataType::Int),
        Column::new("powerconsumption", DataType::Float),
        Column::new("waterconsumption", DataType::Float),
        Column::new("price", DataType::Int),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("products", schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let widths = [45i64, 55, 60, 60, 60, 70];
    let speeds = [800i64, 1000, 1200, 1400, 1600];
    for id in 0..n {
        let spin = speeds[rng.gen_range(0..speeds.len())];
        // Faster spin → more power; efficiency noise on top.
        let power = 0.5 + spin as f64 / 1600.0 * 0.8 + rng.gen::<f64>() * 0.4;
        let water = 35.0 + rng.gen::<f64>() * 30.0;
        let price = 800 + spin / 2 + rng.gen_range(0..1200i64);
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::str(MANUFACTURERS[rng.gen_range(0..MANUFACTURERS.len())]),
            Value::Int(widths[rng.gen_range(0..widths.len())]),
            Value::Int(spin),
            Value::Float((power * 100.0).round() / 100.0),
            Value::Float((water * 10.0).round() / 10.0),
            Value::Int(price),
        ]);
        t.insert(row).expect("generated row valid");
    }
    t
}

/// The §4.1 search-mask query, verbatim (modulo the paper's own missing
/// closing parenthesis, fixed here).
pub const SEARCH_MASK_QUERY: &str = "SELECT * FROM products WHERE manufacturer = 'Aturi' \
     PREFERRING (width AROUND 60 AND spinspeed AROUND 1200) CASCADE \
     (powerconsumption BETWEEN 0, 0.9 AND LOWEST(waterconsumption) \
     AND price BETWEEN 1500, 2000)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shape() {
        let t = table(150, 2);
        assert_eq!(t.len(), 150);
        let s = t.schema();
        let manu = s.resolve(None, "manufacturer").unwrap();
        let aturi = t
            .rows()
            .iter()
            .filter(|r| r[manu].as_str() == Some("Aturi"))
            .count();
        assert!(aturi > 0, "fixture must include the example manufacturer");
    }
}
