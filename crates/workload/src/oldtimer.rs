//! The oldtimer fixture of paper §2.2.3 — six cars, used to reproduce the
//! adorned answer-explanation result table exactly.

use prefsql_storage::Table;
use prefsql_types::{tuple, Column, DataType, Schema};

/// `oldtimer(ident, color, age)` with the paper's six rows.
pub fn table() -> Table {
    let schema = Schema::new(vec![
        Column::new("ident", DataType::Str).not_null(),
        Column::new("color", DataType::Str),
        Column::new("age", DataType::Int),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("oldtimer", schema);
    for (ident, color, age) in [
        ("Maggie", "white", 19),
        ("Bart", "green", 19),
        ("Homer", "yellow", 35),
        ("Selma", "red", 40),
        ("Smithers", "red", 43),
        ("Skinner", "yellow", 51),
    ] {
        t.insert(tuple![ident, color, age])
            .expect("fixture row valid");
    }
    t
}

/// The paper's oldtimer preference query (§2.2.3), verbatim.
pub const QUERY: &str = "SELECT ident, color, age, LEVEL(color), DISTANCE(age) \
     FROM oldtimer \
     PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_paper() {
        let t = table();
        assert_eq!(t.len(), 6);
        assert_eq!(t.schema().len(), 3);
        assert_eq!(t.rows()[3], tuple!["Selma", "red", 40]);
    }
}
