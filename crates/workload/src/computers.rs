//! The computer-shopping scenario of §2.2.2: Pareto accumulation of
//! memory and CPU speed, cascaded with a color preference.

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Case colors on offer.
pub const COLORS: [&str; 4] = ["black", "brown", "beige", "silver"];

/// `computers(id, main_memory, cpu_speed, price, color)` — `n` offers.
/// Memory (MB) and CPU speed (MHz) are negatively correlated with a noise
/// term, so the Pareto front is non-trivial (2001-era trade-offs).
pub fn table(n: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("main_memory", DataType::Int),
        Column::new("cpu_speed", DataType::Int),
        Column::new("price", DataType::Int),
        Column::new("color", DataType::Str),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("computers", schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let memory_options = [128i64, 256, 384, 512, 768, 1024];
    for id in 0..n {
        let mem = memory_options[rng.gen_range(0..memory_options.len())];
        // Budget trade-off: more memory tends to mean a slower CPU at the
        // same price point, plus noise.
        let cpu = 1_800 - mem + rng.gen_range(0..800i64);
        let price = (mem / 2 + cpu / 4) * 3 + rng.gen_range(0..400i64);
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::Int(mem),
            Value::Int(cpu),
            Value::Int(price),
            Value::str(COLORS[rng.gen_range(0..COLORS.len())]),
        ]);
        t.insert(row).expect("generated row valid");
    }
    t
}

/// The §2.2.2 Pareto query, verbatim.
pub const PARETO_QUERY: &str =
    "SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)";

/// The §2.2.2 cascade query, verbatim.
pub const CASCADE_QUERY: &str = "SELECT * FROM computers \
     PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown')";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trade_off_produces_multiple_maxima() {
        let t = table(200, 11);
        // With anti-correlated memory/cpu there should be several
        // incomparable best computers — find them naively here.
        let s = t.schema();
        let mem = s.resolve(None, "main_memory").unwrap();
        let cpu = s.resolve(None, "cpu_speed").unwrap();
        let rows = t.rows();
        let maxima = rows
            .iter()
            .filter(|a| {
                !rows.iter().any(|b| {
                    let bm = b[mem].as_int().unwrap();
                    let bc = b[cpu].as_int().unwrap();
                    let am = a[mem].as_int().unwrap();
                    let ac = a[cpu].as_int().unwrap();
                    bm >= am && bc >= ac && (bm > am || bc > ac)
                })
            })
            .count();
        assert!(maxima >= 2, "expected a real Pareto front, got {maxima}");
    }
}
