//! The trips scenario of §2.2.1/§2.2.4: package tours with start days and
//! durations, for `AROUND` and `BUT ONLY` demonstrations.

use prefsql_storage::Table;
use prefsql_types::{Column, DataType, Date, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Destinations on offer.
pub const DESTINATIONS: [&str; 8] = [
    "Rome", "Lisbon", "Crete", "Mallorca", "Oslo", "Prague", "Malta", "Madeira",
];

/// `trips(id, dest, start_day, duration, price)` — `n` random offers in
/// the summer season of 1999 (the paper's `'1999/7/3'` example).
pub fn table(n: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("dest", DataType::Str),
        Column::new("start_day", DataType::Date),
        Column::new("duration", DataType::Int),
        Column::new("price", DataType::Int),
    ])
    .expect("static schema is valid");
    let mut t = Table::new("trips", schema);
    let season_start = Date::from_ymd(1999, 6, 1).expect("valid date").days();
    let mut rng = StdRng::seed_from_u64(seed);
    let durations = [7i64, 10, 14, 14, 14, 21, 28];
    for id in 0..n {
        let duration = durations[rng.gen_range(0..durations.len())];
        let row = Tuple::new(vec![
            Value::Int(id as i64),
            Value::str(DESTINATIONS[rng.gen_range(0..DESTINATIONS.len())]),
            Value::Date(Date::from_days(season_start + rng.gen_range(0..92i64))),
            Value::Int(duration),
            Value::Int(300 + duration * rng.gen_range(30..90i64)),
        ]);
        t.insert(row).expect("generated row valid");
    }
    t
}

/// The §2.2.4 quality-controlled trip query, verbatim.
pub const BUT_ONLY_QUERY: &str = "SELECT * FROM trips \
     PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14 \
     BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_season() {
        let a = table(300, 5);
        assert_eq!(a.rows(), table(300, 5).rows());
        let start = a.schema().resolve(None, "start_day").unwrap();
        let june1 = Date::from_ymd(1999, 6, 1).unwrap();
        let sep1 = Date::from_ymd(1999, 9, 1).unwrap();
        for row in a.rows() {
            match &row[start] {
                Value::Date(d) => assert!(*d >= june1 && *d < sep1),
                other => panic!("expected date, got {other:?}"),
            }
        }
    }
}
