//! **Materialized preference view maintenance** — the incremental
//! serving cache against the full recomputation it replaces.
//!
//! Two groups:
//!
//! * `view_maintenance` — amortized cost of one single-row `UPDATE`
//!   flowing through incremental view maintenance vs a full
//!   `REFRESH MATERIALIZED VIEW` recompute, at 8 k and 64 k base rows.
//!   The acceptance yardstick: incremental maintenance must beat the
//!   recompute by ≥ 10× at 64 k.
//! * `view_serving` — latency of the matching native BMO query served
//!   from the cached winner set vs the same query run cold (no view
//!   registered), at both sizes.
//!
//! Numbers land in the README's materialized-view section; like every
//! bench here they come off a single-core container, so they show the
//! cost *structure* (cache-hit vs recompute asymptotics), not absolute
//! wall-clock on real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql::storage::Table;
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::{ExecutionMode, PrefSqlConnection};

const SIZES: [usize; 2] = [8_000, 64_000];
const QUERY: &str = "SELECT id FROM r PREFERRING LOWEST(a) AND LOWEST(b)";
const VIEW_DDL: &str =
    "CREATE MATERIALIZED PREFERENCE VIEW v AS SELECT id FROM r PREFERRING LOWEST(a) AND LOWEST(b)";

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// `r(id, a, b)` — `rows` tuples with independent uniform dimensions,
/// so the Pareto skyline stays small relative to the table.
fn base_table(rows: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new("r", schema);
    let mut s = seed;
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((lcg(&mut s) % 1_000_000) as i64),
            Value::Int((lcg(&mut s) % 1_000_000) as i64),
        ]))
        .expect("row fits schema");
    }
    t
}

fn connect(rows: usize, with_view: bool) -> PrefSqlConnection {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(base_table(rows, 42))
        .expect("fresh catalog");
    if with_view {
        conn.execute(VIEW_DDL).expect("view DDL");
    }
    conn
}

fn bench_maintenance_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance");
    group.sample_size(10);
    for n in SIZES {
        let label = format!("{}k", n / 1000);

        // One random single-row UPDATE per iteration: the base write
        // plus the view's incremental dominance bookkeeping.
        let mut inc = connect(n, true);
        let mut s = 7u64;
        group.bench_function(BenchmarkId::new("incremental", &label), |b| {
            b.iter(|| {
                let id = lcg(&mut s) as usize % n;
                let (a, b2) = (lcg(&mut s) % 1_000_000, lcg(&mut s) % 1_000_000);
                inc.execute(&format!("UPDATE r SET a = {a}, b = {b2} WHERE id = {id}"))
                    .expect("single-row update")
            })
        });

        // Full recompute: rebuild the whole winner set from scratch.
        let mut full = connect(n, true);
        group.bench_function(BenchmarkId::new("recompute", &label), |b| {
            b.iter(|| {
                full.execute("REFRESH MATERIALIZED VIEW v")
                    .expect("refresh")
            })
        });
    }
    group.finish();
}

fn bench_cached_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_serving");
    group.sample_size(10);
    for n in SIZES {
        let label = format!("{}k", n / 1000);

        let mut cached = connect(n, true);
        cached.set_mode(ExecutionMode::native());
        cached.set_threads(1);
        group.bench_function(BenchmarkId::new("cached", &label), |b| {
            b.iter(|| cached.query(QUERY).expect("served query").len())
        });

        let mut cold = connect(n, false);
        cold.set_mode(ExecutionMode::native());
        cold.set_threads(1);
        group.bench_function(BenchmarkId::new("cold", &label), |b| {
            b.iter(|| cold.query(QUERY).expect("cold BMO").len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maintenance_vs_recompute,
    bench_cached_vs_cold
);
criterion_main!(benches);
