//! **E4** — the §4.3 COSIMA meta-search measurements: preference search
//! over gathered offer snapshots of increasing size. The paper reports
//! 1–2 s end-to-end dominated by shop access; the preference layer itself
//! must stay a small additive overhead, with BMO result sizes mostly in
//! 1..=20.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql_bench::{conn_with, run};
use prefsql_workload::cosima;

fn bench_cosima(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_cosima");
    group.sample_size(10);
    for n in [200usize, 500, 1000, 2000] {
        let snap = cosima::snapshot(n, 99);
        let mut conn = conn_with(snap.offers);
        group.bench_with_input(BenchmarkId::new("preference_search", n), &n, |b, _| {
            b.iter(|| run(&mut conn, cosima::COMPARISON_QUERY).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cosima);
criterion_main!(benches);
