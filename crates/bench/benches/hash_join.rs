//! **Join micro-bench** — the Grace hash join against the nested-loop
//! join it replaces, end to end through the SQL layer.
//!
//! Two groups:
//!
//! * `hash_join` — fact ⋈ dim with a 256-row build side, 8 k and 64 k
//!   probe rows, matched (uniform) vs skewed (every build key
//!   identical) key distributions. The nested-loop baseline at 64 k is
//!   the acceptance yardstick: the hash path must beat it by ≥ 5×.
//! * `hash_join_grace` — a 4096-row build side (~130 KiB serialized)
//!   that overflows a 64 KiB window, measuring the partitioned spill
//!   path against the same join run unbounded.
//!
//! Each iteration runs a `SELECT COUNT(*)` over the join so the
//! measured cost is the join itself, not result rendering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prefsql::storage::Table;
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::PrefSqlConnection;

const SQL: &str = "SELECT COUNT(*) FROM fact JOIN dim ON fact.k = dim.k";
const KEY_DOMAIN: i64 = 256;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// `fact(id, k, v)` — `rows` probe tuples with uniform keys.
fn fact_table(rows: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .expect("static schema");
    let mut t = Table::new("fact", schema);
    let mut s = seed;
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((lcg(&mut s) % KEY_DOMAIN as u64) as i64),
            Value::Int((lcg(&mut s) % 1000) as i64),
        ]))
        .expect("row fits schema");
    }
    t
}

/// `dim(k, name)` — the build side. Matched: keys cycle over the whole
/// domain. Skewed: every key identical, so one hash partition carries
/// the entire build side (the Grace group's worst case: repartitioning
/// cannot split it, forcing the block nested-loop fallback).
fn dim_table(rows: usize, skewed: bool) -> Table {
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("name", DataType::Str),
    ])
    .expect("static schema");
    let mut t = Table::new("dim", schema);
    for i in 0..rows {
        let k = if skewed { 7 } else { i as i64 % KEY_DOMAIN };
        t.insert(Tuple::new(vec![
            Value::Int(k),
            Value::Str(format!("dim-{i:06}")),
        ]))
        .expect("row fits schema");
    }
    t
}

fn connect(fact_rows: usize, dim_rows: usize, skewed: bool) -> PrefSqlConnection {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(fact_table(fact_rows, 42))
        .expect("fresh catalog");
    conn.engine_mut()
        .catalog_mut()
        .create_table(dim_table(dim_rows, skewed))
        .expect("fresh catalog");
    conn
}

fn count(conn: &mut PrefSqlConnection) -> String {
    conn.query(SQL).expect("join query").to_string()
}

fn bench_hash_vs_nested_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    group.sample_size(10);
    for n in [8_000usize, 64_000] {
        let label = |keys: &str| format!("{keys}/{}k", n / 1000);
        for skewed in [false, true] {
            let keys = if skewed { "skewed" } else { "matched" };
            group.throughput(Throughput::Elements(n as u64));

            let mut nlj = connect(n, 256, skewed);
            nlj.engine_mut().set_use_hash_join(false);
            nlj.set_window_bytes(None);
            group.bench_function(BenchmarkId::new("nlj", label(keys)), |b| {
                b.iter(|| count(&mut nlj))
            });

            let mut hash = connect(n, 256, skewed);
            hash.set_window_bytes(None);
            group.bench_function(BenchmarkId::new("hash", label(keys)), |b| {
                b.iter(|| count(&mut hash))
            });
        }
    }
    group.finish();
}

fn bench_grace_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join_grace");
    group.sample_size(10);
    let n = 64_000usize;
    group.throughput(Throughput::Elements(n as u64));
    for skewed in [false, true] {
        let keys = if skewed { "skewed" } else { "matched" };

        let mut unbounded = connect(n, 4096, skewed);
        unbounded.set_window_bytes(None);
        group.bench_function(BenchmarkId::new("unbounded", keys), |b| {
            b.iter(|| count(&mut unbounded))
        });

        let mut bounded = connect(n, 4096, skewed);
        bounded.set_window_bytes(Some(64 * 1024));
        group.bench_function(BenchmarkId::new("window-64k", keys), |b| {
            b.iter(|| count(&mut bounded))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash_vs_nested_loop, bench_grace_window);
criterion_main!(benches);
