//! **P6** — concurrent session throughput through the TCP front end.
//!
//! One in-process `prefsql-server` over a shared core preloaded with
//! the car market; 1 / 8 / 64 concurrent connections each replay a
//! fixed native-mode preference query mix and the group reports
//! queries/second (`Throughput::Elements` = total queries issued per
//! iteration, so the JSON's `per_second` *is* the aggregate query
//! rate).
//!
//! Connection setup (TCP connect + greeting + `\mode native`) is
//! inside the timed region — the bench measures end-to-end session
//! cost, not just statement execution. On a single-core host the 8/64
//! rows mostly measure fair interleaving over one shared catalog lock,
//! not parallel speed-up; read them as "throughput does not collapse
//! under concurrency", not as a scaling curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prefsql::Session;
use prefsql_engine::EngineCore;
use prefsql_server::{Client, Server};
use prefsql_workload::{cars, hotels};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;

/// Queries each connection issues per timed iteration.
const PER_CONN: usize = 4;

/// The per-connection query mix (all native-mode preference reads).
const MIX: [&str; PER_CONN] = [
    cars::OPEL_QUERY,
    "SELECT id, price FROM car WHERE price < 30000 PREFERRING LOWEST(price)",
    hotels::NEG_QUERY,
    "SELECT id, location, price FROM hotels PREFERRING LOWEST(price) GROUPING location",
];

fn loaded_core() -> Arc<EngineCore> {
    let core = EngineCore::shared();
    let mut session = Session::with_core(Arc::clone(&core));
    session
        .engine_mut()
        .catalog_mut()
        .create_table(cars::market(1_000, 7))
        .expect("fresh catalog");
    session
        .engine_mut()
        .catalog_mut()
        .create_table(hotels::table(300, 8))
        .expect("fresh catalog");
    core
}

/// One connection's worth of work: connect, switch to native mode,
/// replay the mix, quit. Panics (propagated through join) on any error
/// response so a failing server can't masquerade as a fast one.
fn drive_connection(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect to bench server");
    let mode = client.request("\\mode native").expect("mode switch");
    assert!(mode.is_ok(), "mode switch failed: {}", mode.status);
    for sql in MIX {
        let resp = client.request(sql).expect("request");
        assert!(resp.is_ok(), "query failed: {sql}: {}", resp.status);
    }
    client.quit().expect("clean quit");
}

fn bench_concurrent_queries(c: &mut Criterion) {
    let server = Server::bind("127.0.0.1:0", loaded_core()).expect("bind bench server");
    let handle = server.spawn().expect("spawn bench server");
    let addr = handle.addr();

    let mut group = c.benchmark_group("p6_concurrent_queries");
    group.sample_size(10);
    for conns in [1usize, 8, 64] {
        group.throughput(Throughput::Elements((conns * PER_CONN) as u64));
        group.bench_with_input(
            BenchmarkId::new("connections", conns),
            &conns,
            |b, &conns| {
                b.iter(|| {
                    let workers: Vec<_> = (0..conns)
                        .map(|_| thread::spawn(move || drive_connection(addr)))
                        .collect();
                    for w in workers {
                        w.join().expect("bench connection panicked");
                    }
                })
            },
        );
    }
    group.finish();

    handle.stop().expect("clean server shutdown");
}

criterion_group!(benches, bench_concurrent_queries);
criterion_main!(benches);
