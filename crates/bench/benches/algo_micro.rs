//! **A1-micro** — the maximal-set algorithms in isolation (no SQL layer):
//! naive nested-loop (§3.2's abstract selection method) vs BNL vs SFS on
//! raw slot vectors. Complements the end-to-end A1 sweep by separating
//! algorithm cost from engine overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql_pref::{maximal_bnl, maximal_naive, maximal_sfs, BasePref, PrefNode, Preference};
use prefsql_types::Value;
use prefsql_workload::bks01::{points, Distribution};

fn pareto(d: usize) -> Preference {
    Preference::new(
        PrefNode::Pareto((0..d).map(|slot| PrefNode::Base { slot }).collect()),
        vec![BasePref::Lowest; d],
    )
    .expect("well-formed")
}

fn slot_vectors(n: usize, d: usize, dist: Distribution, seed: u64) -> Vec<Vec<Value>> {
    points(n, d, dist, seed)
        .into_iter()
        .map(|p| p.into_iter().map(Value::Float).collect())
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_micro_algorithms");
    group.sample_size(20);
    let d = 3;
    let pref = pareto(d);
    for n in [1_000usize, 4_000] {
        let sv = slot_vectors(n, d, Distribution::Independent, 9);
        // The O(n²) naive method is only benched at sizes where a single
        // iteration stays sub-second.
        group.bench_with_input(BenchmarkId::new("naive", n), &sv, |b, sv| {
            b.iter(|| maximal_naive(sv, &pref).len())
        });
        group.bench_with_input(BenchmarkId::new("bnl", n), &sv, |b, sv| {
            b.iter(|| maximal_bnl(sv, &pref).len())
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &sv, |b, sv| {
            b.iter(|| maximal_sfs(sv, &pref).len())
        });
    }
    // BNL/SFS scale further; show them alone at larger n.
    {
        let n = 16_000usize;
        let sv = slot_vectors(n, d, Distribution::Independent, 9);
        group.bench_with_input(BenchmarkId::new("bnl", n), &sv, |b, sv| {
            b.iter(|| maximal_bnl(sv, &pref).len())
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &sv, |b, sv| {
            b.iter(|| maximal_sfs(sv, &pref).len())
        });
    }
    group.finish();

    // The hard case: anti-correlated data, where the window grows large.
    let mut group = c.benchmark_group("a1_micro_anticorrelated");
    group.sample_size(10);
    let pref = pareto(d);
    for n in [1_000usize, 2_000] {
        let sv = slot_vectors(n, d, Distribution::AntiCorrelated, 10);
        group.bench_with_input(BenchmarkId::new("bnl", n), &sv, |b, sv| {
            b.iter(|| maximal_bnl(sv, &pref).len())
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &sv, |b, sv| {
            b.iter(|| maximal_sfs(sv, &pref).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
