//! **A2** — "having the right indices available current SQL optimizers can
//! efficiently process this SQL query" (§3.2): the same E1 preference
//! query with index access paths enabled vs. disabled on the host engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql_bench::{e1_query, e1_setup, run, Strategy};

fn bench_index_ablation(c: &mut Criterion) {
    let mut setup = e1_setup(10_000, 13);
    let (_, pre, _) = setup.preselections[1].clone(); // the 600-row cell
    let sql = e1_query(&pre, 0, Strategy::Preference);

    let mut group = c.benchmark_group("a2_index_ablation");
    group.sample_size(10);
    for on in [true, false] {
        setup.conn.engine_mut().set_use_indexes(on);
        let label = if on { "indexed" } else { "seq_scan" };
        group.bench_with_input(BenchmarkId::new(label, 600), &sql, |b, sql| {
            b.iter(|| run(&mut setup.conn, sql).len())
        });
    }
    setup.conn.engine_mut().set_use_indexes(true);
    group.finish();
}

criterion_group!(benches, bench_index_ablation);
criterion_main!(benches);
