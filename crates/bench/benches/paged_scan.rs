//! **Paged-storage scan cost** — the heap-file backend against the
//! in-memory default, and the price of a buffer pool that does not fit
//! the table.
//!
//! One aggregate full scan (`SELECT COUNT(*), SUM(v) FROM r`) over
//! 8 k and 64 k rows, three storage configurations:
//!
//! * `mem` — the default in-memory table (baseline);
//! * `paged-warm` — heap pages behind a pool comfortably larger than
//!   the table, pre-touched, so every pin is a hit;
//! * `paged-cold` — the same pages behind the four-page minimum pool,
//!   so every scan runs at ~100% miss/eviction rate and each page comes
//!   back off the file.
//!
//! Recorded medians land in `BENCH_paged_scan.json`; the spread between
//! `paged-warm` and `mem` is the slotted-page decode overhead, and the
//! spread between `paged-cold` and `paged-warm` is the pure I/O cost
//! the pool exists to amortize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prefsql::types::{Column, DataType, Schema, Tuple, Value};
use prefsql::Session;
use prefsql_engine::{BackendKind, EngineCore};
use prefsql_types::knobs::MIN_POOL_BYTES;
use std::sync::Arc;

const SIZES: [usize; 2] = [8_000, 64_000];
const QUERY: &str = "SELECT COUNT(*), SUM(v) FROM r";

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A session over a fresh core of the given storage configuration with
/// `r(id, v)` loaded: `rows` tuples of uniform noise.
fn session_with(kind: BackendKind, pool_bytes: usize, rows: usize) -> Session {
    let core = Arc::new(EngineCore::with_storage(kind, pool_bytes));
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("v", DataType::Int),
    ])
    .expect("static schema");
    let mut t = core.make_table("r", schema).expect("table builds");
    let mut s = 42u64;
    t.insert_all((0..rows).map(|i| {
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((lcg(&mut s) % 100_000) as i64),
        ])
    }))
    .expect("rows insert");
    let mut session = Session::with_core(Arc::clone(&core));
    session
        .engine_mut()
        .catalog_mut()
        .create_table(t)
        .expect("fresh catalog");
    session
}

fn bench_paged_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_scan");
    group.sample_size(20);
    for rows in SIZES {
        group.throughput(Throughput::Elements(rows as u64));
        // Baseline: the default in-memory backend.
        let mut mem = session_with(BackendKind::Mem, MIN_POOL_BYTES, rows);
        group.bench_with_input(BenchmarkId::new("mem", fmt(rows)), &(), |b, _| {
            b.iter(|| mem.query(QUERY).expect("scan").len())
        });
        // Warm pool: 8 MiB holds the whole table; one priming scan makes
        // every timed pin a hit.
        let mut warm = session_with(BackendKind::Paged, 8 << 20, rows);
        warm.query(QUERY).expect("priming scan");
        group.bench_with_input(BenchmarkId::new("paged-warm", fmt(rows)), &(), |b, _| {
            b.iter(|| warm.query(QUERY).expect("scan").len())
        });
        // Cold pool: the four-page minimum evicts continuously — every
        // timed scan re-reads the heap file page by page.
        let mut cold = session_with(BackendKind::Paged, MIN_POOL_BYTES, rows);
        group.bench_with_input(BenchmarkId::new("paged-cold", fmt(rows)), &(), |b, _| {
            b.iter(|| cold.query(QUERY).expect("scan").len())
        });
    }
    group.finish();
}

fn fmt(rows: usize) -> String {
    format!("{}k", rows / 1_000)
}

criterion_group!(benches, bench_paged_scan);
criterion_main!(benches);
