//! **A1** — rewrite vs. native skyline operators (§3.3 outlook:
//! "implementing a generalized skyline operator in the kernel of an
//! SQL-system clearly holds much promise for additional speed-ups").
//!
//! Sweeps candidate-set size and data distribution ([BKS01] model) over
//! four evaluation strategies: the paper's NOT EXISTS rewrite on the host
//! engine, and the native naive/BNL/SFS operators in the preference layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql::{ExecutionMode, PrefSqlConnection, SkylineAlgo};
use prefsql_bench::{conn_with, run};
use prefsql_workload::bks01::{self, Distribution};

fn modes() -> [(&'static str, ExecutionMode); 4] {
    [
        ("rewrite_not_exists", ExecutionMode::Rewrite),
        ("native_naive", ExecutionMode::Native(SkylineAlgo::Naive)),
        ("native_bnl", ExecutionMode::Native(SkylineAlgo::Bnl)),
        ("native_sfs", ExecutionMode::Native(SkylineAlgo::Sfs)),
    ]
}

fn bench_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_size_sweep_d3_independent");
    group.sample_size(10);
    let sql = bks01::skyline_query(3);
    for n in [250usize, 500, 1000] {
        let table = bks01::table(n, 3, Distribution::Independent, 5);
        for (label, mode) in modes() {
            let mut conn: PrefSqlConnection = conn_with(table.clone());
            conn.set_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, n), &sql, |b, sql| {
                b.iter(|| run(&mut conn, sql).len())
            });
        }
    }
    group.finish();
}

fn bench_distribution_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_distribution_sweep_n500_d3");
    group.sample_size(10);
    let sql = bks01::skyline_query(3);
    for dist in Distribution::ALL {
        let table = bks01::table(500, 3, dist, 6);
        for (label, mode) in modes() {
            let mut conn: PrefSqlConnection = conn_with(table.clone());
            conn.set_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, dist.label()), &sql, |b, sql| {
                b.iter(|| run(&mut conn, sql).len())
            });
        }
    }
    group.finish();
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_dimension_sweep_n400_independent");
    group.sample_size(10);
    for d in [2usize, 3, 5] {
        let sql = bks01::skyline_query(d);
        let table = bks01::table(400, d, Distribution::Independent, 7);
        for (label, mode) in modes() {
            let mut conn: PrefSqlConnection = conn_with(table.clone());
            conn.set_mode(mode);
            group.bench_with_input(BenchmarkId::new(label, d), &sql, |b, sql| {
                b.iter(|| run(&mut conn, sql).len())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_size_sweep,
    bench_distribution_sweep,
    bench_dimension_sweep
);
criterion_main!(benches);
