//! **P3** — the external-memory skyline window.
//!
//! The full native preference query over the jobs and cars workloads at
//! 8 k / 64 k rows, with the external-memory window budget at ∞ (never
//! spills), 1 MiB, and 64 KiB. Bounded budgets stream the candidate set
//! through the multi-pass BNL with spill-to-disk overflow runs; the
//! cost is the extra passes plus run serialization, in exchange for a
//! materialization footprint capped at the budget.
//!
//! Numbers are recorded in the README's external-memory section. The
//! thread knob is pinned to 1 so the ablation isolates the window (and
//! this container is single-core anyway — see the parallel_skyline
//! caveat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql::{ExecutionMode, PrefSqlConnection};
use prefsql_bench::{conn_with, run};
use prefsql_workload::{cars, jobs};

const SIZES: [usize; 2] = [8_000, 64_000];

fn jobs_pref_sql() -> String {
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    // No pre-selection: the whole table is the candidate set.
    format!("SELECT id FROM profiles PREFERRING {}", soft.join(" AND "))
}

fn bench_window_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("p3_external_window");
    group.sample_size(10);
    for n in SIZES {
        let workloads: [(&str, PrefSqlConnection, String); 2] = [
            ("jobs", conn_with(jobs::table(n, 41)), jobs_pref_sql()),
            (
                "cars",
                conn_with(cars::market(n, 42)),
                cars::OPEL_QUERY.to_string(),
            ),
        ];
        for (name, mut conn, sql) in workloads {
            conn.set_mode(ExecutionMode::native());
            conn.set_threads(1);
            for (label, window) in [
                ("unbounded", None),
                ("1MiB", Some(1 << 20)),
                ("64KiB", Some(64 << 10)),
            ] {
                conn.set_window_bytes(window);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_{n}"), label),
                    &sql,
                    |b, sql| b.iter(|| run(&mut conn, sql).len()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_window_budgets);
criterion_main!(benches);
