//! **P2** — batched execution + the parallel skyline window.
//!
//! Two ablations over the jobs and cars workloads at 8k / 64k rows:
//!
//! * `batched_scan_filter` vs `tuple_scan_filter` — the same planned
//!   scan → filter → project pipeline driven through
//!   `Operator::next_batch` (1024-tuple batches) and through the
//!   tuple-at-a-time `Operator::next` baseline;
//! * `skyline_threads/{workload}_{n}/{t}` — the full native preference
//!   query at `\threads ∈ {1, 2, 4}`: above `PARALLEL_CUTOFF`
//!   candidates the auto mode partitions the BNL window across `t`
//!   scoped threads and merge-filters the union.
//!
//! Numbers are recorded in the README's pipeline section. Note the
//! thread ablation measures real OS threads: on a single-core host the
//! 2/4-thread rows cost a merge-filter without buying concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql::parser::ast::Statement;
use prefsql::{ExecutionMode, PrefSqlConnection};
use prefsql_bench::{conn_with, run};
use prefsql_engine::physical::{build, drain_batched, drain_tuple_at_a_time, DEFAULT_BATCH};
use prefsql_workload::{cars, jobs};

const SIZES: [usize; 2] = [8_000, 64_000];

fn jobs_pref_sql() -> String {
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    // No pre-selection: the whole table is the candidate set, so the
    // cost model engages the parallel window at every benched size.
    format!("SELECT id FROM profiles PREFERRING {}", soft.join(" AND "))
}

fn bench_batched_vs_tuple(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_batched_vs_tuple");
    group.sample_size(10);
    for n in SIZES {
        let conn = conn_with(jobs::table(n, 31));
        let engine = conn.engine();
        let query = match prefsql::parser::parse_statement(
            "SELECT id, salary FROM profiles WHERE salary > 55000",
        )
        .expect("static SQL")
        {
            Statement::Select(q) => *q,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let ctx = engine.read_ctx().expect("healthy core");
        let plan = ctx.plan_for(&query).expect("plannable query");

        group.bench_with_input(BenchmarkId::new("tuple_scan_filter", n), &n, |b, _| {
            b.iter(|| {
                let mut op = build(&ctx, plan.root(), &[]);
                drain_tuple_at_a_time(op.as_mut())
                    .expect("clean drive")
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_scan_filter", n), &n, |b, _| {
            b.iter(|| {
                let mut op = build(&ctx, plan.root(), &[]);
                drain_batched(op.as_mut(), DEFAULT_BATCH)
                    .expect("clean drive")
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_skyline_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_skyline_threads");
    group.sample_size(10);
    for n in SIZES {
        let workloads: [(&str, PrefSqlConnection, String); 2] = [
            ("jobs", conn_with(jobs::table(n, 32)), jobs_pref_sql()),
            (
                "cars",
                conn_with(cars::market(n, 33)),
                cars::OPEL_QUERY.to_string(),
            ),
        ];
        for (name, mut conn, sql) in workloads {
            conn.set_mode(ExecutionMode::native());
            for threads in [1usize, 2, 4] {
                conn.set_threads(threads);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_{n}"), threads),
                    &sql,
                    |b, sql| b.iter(|| run(&mut conn, sql).len()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batched_vs_tuple, bench_skyline_threads);
criterion_main!(benches);
