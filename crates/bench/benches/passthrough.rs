//! **E5** — the §3.1 pass-through claim: "queries without preferences are
//! just passed through to the database system without causing any
//! noticeable overhead". Compares a battery of standard SQL statements
//! executed directly on the host engine vs. through the Preference SQL
//! connection facade.

use criterion::{criterion_group, criterion_main, Criterion};
use prefsql::PrefSqlConnection;
use prefsql_engine::Engine;
use prefsql_workload::jobs;

const QUERIES: [&str; 3] = [
    "SELECT COUNT(*) FROM profiles WHERE region = 3",
    "SELECT region, COUNT(*) FROM profiles GROUP BY region",
    "SELECT id FROM profiles WHERE salary > 60000 ORDER BY salary DESC LIMIT 20",
];

fn bench_passthrough(c: &mut Criterion) {
    let table = jobs::table(5_000, 11);
    let mut direct = Engine::new();
    direct.catalog_mut().create_table(table.clone()).unwrap();
    let mut layered = PrefSqlConnection::new();
    layered
        .engine_mut()
        .catalog_mut()
        .create_table(table)
        .unwrap();

    let mut group = c.benchmark_group("e5_passthrough");
    group.bench_function("host_engine_direct", |b| {
        b.iter(|| {
            for q in QUERIES {
                direct.execute_sql(q).unwrap();
            }
        })
    });
    group.bench_function("through_preference_layer", |b| {
        b.iter(|| {
            for q in QUERIES {
                layered.execute(q).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_passthrough);
criterion_main!(benches);
