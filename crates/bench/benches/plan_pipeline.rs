//! **P1** — the physical operator pipeline on the jobs workload.
//!
//! The seed engine was a materializing interpreter that re-derived access
//! paths and re-materialized FROM sources per correlated-sub-query call;
//! its numbers are recorded by the earlier `job_search`/`passthrough`
//! bench targets in BENCH_*.json. This target captures the refactored
//! pipeline from this point on, split by the stages the refactor changed:
//!
//! * `streamed_scan_filter_limit` — streaming scan → filter → sort →
//!   limit (the limit stops pulling, so the projection never touches
//!   dropped rows);
//! * `rewrite_not_exists` — the paper's dominance anti-join, where the
//!   per-statement plan cache makes the per-outer-row re-planning of the
//!   correlated sub-query free;
//! * `native_preference_op` — the same preference query through the
//!   `PreferenceOp` physical operator with cost-based algorithm
//!   selection (`SkylineAlgo::Auto`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql::{ExecutionMode, SkylineAlgo};
use prefsql_bench::{conn_with, run};
use prefsql_workload::jobs;

fn preference_sql() -> String {
    let soft: Vec<&str> = jobs::second_selection(0).iter().map(|&(_, s)| s).collect();
    format!(
        "SELECT id FROM profiles WHERE region = 3 PREFERRING {}",
        soft.join(" AND ")
    )
}

fn bench_streaming_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_plan_pipeline");
    group.sample_size(10);

    for n in [2_000usize, 8_000] {
        let table = jobs::table(n, 21);

        // Streaming scan → filter → sort → limit.
        let mut conn = conn_with(table.clone());
        group.bench_with_input(
            BenchmarkId::new("streamed_scan_filter_limit", n),
            &n,
            |b, _| {
                b.iter(|| {
                    run(
                        &mut conn,
                        "SELECT id, salary FROM profiles WHERE salary > 55000 \
                         ORDER BY salary DESC LIMIT 25",
                    )
                    .len()
                })
            },
        );

        // The rewritten dominance anti-join (plan cached across outer rows).
        let sql = preference_sql();
        let mut conn = conn_with(table.clone());
        conn.set_mode(ExecutionMode::Rewrite);
        group.bench_with_input(BenchmarkId::new("rewrite_not_exists", n), &sql, |b, sql| {
            b.iter(|| run(&mut conn, sql).len())
        });

        // The native Preference operator with auto algorithm selection.
        let mut conn = conn_with(table);
        conn.set_mode(ExecutionMode::Native(SkylineAlgo::Auto));
        group.bench_with_input(
            BenchmarkId::new("native_preference_op", n),
            &sql,
            |b, sql| b.iter(|| run(&mut conn, sql).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_stages);
criterion_main!(benches);
