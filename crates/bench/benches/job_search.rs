//! **E1** — the §3.3 large-scale job-search benchmark.
//!
//! Grid: pre-selection result sizes {300, 600, 1000} × two second-selection
//! condition sets × three strategies (conjunctive SQL, disjunctive SQL,
//! Preference SQL with four Pareto-accumulated preferences). The paper's
//! table reports wall-clock per cell; the shape to match is that the
//! Preference SQL rewrite stays interactive and grows quadratically in the
//! candidate-set size, not the base-table size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefsql_bench::{bench_rows, e1_query, e1_setup, run, Strategy};

fn bench_e1(c: &mut Criterion) {
    let mut setup = e1_setup(bench_rows(), 7);
    let mut group = c.benchmark_group("e1_job_search");
    group.sample_size(10);
    for condition_set in [0usize, 1] {
        for (target, pre, _) in setup.preselections.clone() {
            for strategy in Strategy::ALL {
                let sql = e1_query(&pre, condition_set, strategy);
                let id =
                    BenchmarkId::new(format!("cond{condition_set}/{}", strategy.label()), target);
                group.bench_with_input(id, &sql, |b, sql| {
                    b.iter(|| run(&mut setup.conn, sql).len())
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
