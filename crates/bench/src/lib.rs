//! Shared harness code for the experiment benchmarks (E1–E5, A1, A2).
//!
//! See DESIGN.md §4 for the per-experiment index and EXPERIMENTS.md for
//! recorded results. Benchmarks scale with `PREFSQL_BENCH_ROWS` (default
//! 20 000 profile rows — the paper used 1.4 M on a 332 MHz AIX box; the
//! cost *structure* of E1 depends on the candidate-set size, which is
//! pinned to the paper's 300/600/1000 regardless of the base-table size).

#![forbid(unsafe_code)]

use prefsql::{PrefSqlConnection, ResultSet};
use prefsql_storage::Table;
use prefsql_workload::jobs;

/// Base-table size for the E1 job-search benchmark.
pub fn bench_rows() -> usize {
    std::env::var("PREFSQL_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// A connection pre-loaded with one table.
pub fn conn_with(table: Table) -> PrefSqlConnection {
    let mut conn = PrefSqlConnection::new();
    conn.engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("fresh catalog");
    conn
}

/// The three §3.3 query strategies over the job-profile relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// SQL solution 1: four conjunctive WHERE conditions.
    Conjunctive,
    /// SQL solution 2: four disjunctive WHERE conditions.
    Disjunctive,
    /// Preference SQL: four Pareto-accumulated PREFERRING conditions.
    Preference,
}

impl Strategy {
    /// All three, in the paper's order.
    pub const ALL: [Strategy; 3] = [
        Strategy::Conjunctive,
        Strategy::Disjunctive,
        Strategy::Preference,
    ];

    /// Row label used in the experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Conjunctive => "SQL solution 1 (conjunctive)",
            Strategy::Disjunctive => "SQL solution 2 (disjunctive)",
            Strategy::Preference => "Preference SQL (4x Pareto)",
        }
    }
}

/// The fully assembled E1 benchmark query for one strategy.
pub fn e1_query(pre: &str, condition_set: usize, strategy: Strategy) -> String {
    let criteria = jobs::second_selection(condition_set);
    let hard: Vec<&str> = criteria.iter().map(|(h, _)| *h).collect();
    let soft: Vec<&str> = criteria.iter().map(|(_, s)| *s).collect();
    match strategy {
        Strategy::Conjunctive => format!(
            "SELECT id FROM profiles WHERE {pre} AND {}",
            hard.join(" AND ")
        ),
        Strategy::Disjunctive => format!(
            "SELECT id FROM profiles WHERE {pre} AND ({})",
            hard.join(" OR ")
        ),
        Strategy::Preference => format!(
            "SELECT id FROM profiles WHERE {pre} PREFERRING {}",
            soft.join(" AND ")
        ),
    }
}

/// Set up the E1 environment: a loaded, indexed connection plus the
/// pre-selection predicates tuned to the paper's candidate-set sizes.
pub struct E1Setup {
    /// The loaded connection.
    pub conn: PrefSqlConnection,
    /// `(target_size, predicate, actual_size)` per paper row.
    pub preselections: Vec<(usize, String, usize)>,
}

/// Build the E1 environment for `rows` base tuples.
pub fn e1_setup(rows: usize, seed: u64) -> E1Setup {
    let table = jobs::table(rows, seed);
    let mut preselections = Vec::new();
    for target in [300usize, 600, 1000] {
        let (region, lo, hi, actual) = jobs::preselection_for_size(&table, target);
        preselections.push((
            target,
            format!("region = {region} AND salary BETWEEN {lo} AND {hi}"),
            actual,
        ));
    }
    let mut conn = conn_with(table);
    conn.execute("CREATE INDEX idx_region ON profiles (region) USING hash")
        .expect("index DDL");
    conn.execute("CREATE INDEX idx_salary ON profiles (salary)")
        .expect("index DDL");
    E1Setup {
        conn,
        preselections,
    }
}

/// Run a query and return its result set (panics on failure — benchmark
/// queries are static).
pub fn run(conn: &mut PrefSqlConnection, sql: &str) -> ResultSet {
    conn.query(sql)
        .unwrap_or_else(|e| panic!("benchmark query failed: {e}\n{sql}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_setup_produces_three_preselections() {
        let mut s = e1_setup(5_000, 1);
        assert_eq!(s.preselections.len(), 3);
        for (target, pre, actual) in s.preselections.clone() {
            assert!(actual > 0, "target {target} found nothing");
            let rs = run(
                &mut s.conn,
                &format!("SELECT COUNT(*) FROM profiles WHERE {pre}"),
            );
            assert_eq!(rs.rows()[0][0].as_int().unwrap() as usize, actual);
        }
    }

    #[test]
    fn e1_queries_run_under_all_strategies() {
        let mut s = e1_setup(3_000, 2);
        let (_, pre, _) = s.preselections[0].clone();
        for cond in [0, 1] {
            for strat in Strategy::ALL {
                let rs = run(&mut s.conn, &e1_query(&pre, cond, strat));
                // Preference SQL never returns an empty set on a non-empty
                // candidate set.
                if strat == Strategy::Preference {
                    assert!(!rs.is_empty());
                }
            }
        }
    }
}
