//! Regenerates every table/figure/claim of the paper's evaluation as
//! console tables (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p prefsql-bench --bin experiments --release -- [e1|e1q|e2|e3|e4|e5|a1|a2|all]`
//!
//! Environment: `PREFSQL_BENCH_ROWS` scales the E1 base table (default
//! 20 000; the paper used 1.4 M tuples on 2001 hardware).

use prefsql::{ExecutionMode, PrefSqlConnection, SkylineAlgo};
use prefsql_bench::{bench_rows, conn_with, e1_query, e1_setup, run, Strategy};
use prefsql_workload::{bks01, cars, cosima, jobs, oldtimer};
use std::time::{Duration, Instant};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match what.as_str() {
        "e1" => e1(),
        "e1q" => e1q(),
        "e2" => e2(),
        "e3" => e3(),
        "e4" => e4(),
        "e5" => e5(),
        "a1" => a1(),
        "a2" => a2(),
        "all" => {
            e2();
            e3();
            e1();
            e1q();
            e4();
            e5();
            a1();
            a2();
        }
        other => {
            eprintln!("unknown experiment '{other}'; use e1|e1q|e2|e3|e4|e5|a1|a2|all");
            std::process::exit(2);
        }
    }
}

/// Median wall time of `reps` runs.
fn time_median(reps: usize, mut f: impl FnMut() -> usize) -> (Duration, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut size = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        size = f();
        times.push(t0.elapsed());
    }
    times.sort();
    (times[times.len() / 2], size)
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// E1 (§3.3 table): runtimes for 300/600/1000-row pre-selections, two
/// condition sets, three strategies.
fn e1() {
    header(&format!(
        "E1  §3.3 job-search benchmark  (base table: {} rows, 74 attributes)",
        bench_rows()
    ));
    let mut setup = e1_setup(bench_rows(), 7);
    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "strategy / result-set size", 300, 600, 1000
    );
    for cond in [0usize, 1] {
        println!("--- second selection, condition set {} ---", cond + 1);
        for strategy in Strategy::ALL {
            let mut cells = Vec::new();
            for (_, pre, _) in setup.preselections.clone() {
                let sql = e1_query(&pre, cond, strategy);
                let (t, _) = time_median(3, || run(&mut setup.conn, &sql).len());
                cells.push(format!("{:.1}ms", t.as_secs_f64() * 1e3));
            }
            println!(
                "{:<30} {:>10} {:>10} {:>10}",
                strategy.label(),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }
}

/// E1q (§1/§3.3 qualitative): result-set sizes per strategy — conjunctive
/// starves, disjunctive floods, Preference SQL returns a survey-able set.
fn e1q() {
    header("E1q  result-set sizes (the empty-result vs flooding problem)");
    let mut setup = e1_setup(bench_rows(), 7);
    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "strategy / candidate size", 300, 600, 1000
    );
    for cond in [0usize, 1] {
        println!("--- second selection, condition set {} ---", cond + 1);
        for strategy in Strategy::ALL {
            let mut cells = Vec::new();
            for (_, pre, _) in setup.preselections.clone() {
                let sql = e1_query(&pre, cond, strategy);
                cells.push(run(&mut setup.conn, &sql).len().to_string());
            }
            println!(
                "{:<30} {:>10} {:>10} {:>10}",
                strategy.label(),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }
}

/// E2 (§2.2.3): the adorned oldtimer result, exactly as in the paper.
fn e2() {
    header("E2  §2.2.3 oldtimer answer explanation (paper-exact result)");
    let mut conn = conn_with(oldtimer::table());
    println!("Query: {}\n", oldtimer::QUERY);
    let rs = conn
        .query(&format!("{} ORDER BY age DESC", oldtimer::QUERY))
        .expect("oldtimer query runs");
    println!("{rs}");
    println!("Paper expects: Selma red 40 3 0 | Homer yellow 35 2 5 | Maggie white 19 1 21");
}

/// E3 (§3.2): the Cars rewrite — show the generated SQL and the maxima.
fn e3() {
    header("E3  §3.2 Cars rewrite (generated SQL + Pareto-optimal set)");
    let mut conn = conn_with(cars::paper_fixture());
    let q = "SELECT * FROM cars PREFERRING make = 'Audi' AND diesel = 'yes'";
    println!("Preference SQL: {q}\n");
    let rewritten = conn
        .rewritten_sql(q)
        .expect("rewrite succeeds")
        .expect("query has preferences");
    println!("Rewritten SQL:\n  {rewritten}\n");
    let rs = conn.query(q).expect("query runs");
    println!("{rs}");
    println!("Paper expects: cars 1 (Audi) and 2 (diesel BMW); the Beetle is dominated.");
}

/// E4 (§4.3): COSIMA — BMO sizes predominantly 1..=20 and small preference
/// overhead relative to (simulated) shop access.
fn e4() {
    header("E4  §4.3 COSIMA meta-search (BMO sizes + overhead)");
    println!(
        "{:>6} {:>10} {:>12} {:>16} {:>14}",
        "offers", "BMO size", "pref time", "shop access(sim)", "overhead"
    );
    let mut in_range = 0;
    let runs = 10;
    for seed in 0..runs {
        let snap = cosima::snapshot(200 + (seed as usize * 180), seed);
        let n = snap.offers.len();
        let shop = snap.shop_access;
        let mut conn = conn_with(snap.offers);
        let (t, size) = time_median(3, || run(&mut conn, cosima::COMPARISON_QUERY).len());
        if (1..=20).contains(&size) {
            in_range += 1;
        }
        println!(
            "{:>6} {:>10} {:>12} {:>16} {:>13.1}%",
            n,
            size,
            format!("{:.1}ms", t.as_secs_f64() * 1e3),
            format!("{:.0}ms", shop.as_secs_f64() * 1e3),
            100.0 * t.as_secs_f64() / (t + shop).as_secs_f64(),
        );
    }
    println!(
        "\nBMO size in 1..=20 for {in_range}/{runs} snapshots \
         (paper: 'predominantly between 1 and 20')."
    );
}

/// E5 (§3.1): pass-through overhead of the preference layer.
fn e5() {
    header("E5  §3.1 pass-through overhead for standard SQL");
    let table = jobs::table(5_000, 11);
    let mut direct = prefsql::engine::Engine::new();
    direct
        .catalog_mut()
        .create_table(table.clone())
        .expect("fresh catalog");
    let mut layered = PrefSqlConnection::new();
    layered
        .engine_mut()
        .catalog_mut()
        .create_table(table)
        .expect("fresh catalog");
    let queries = [
        "SELECT COUNT(*) FROM profiles WHERE region = 3",
        "SELECT region, COUNT(*) FROM profiles GROUP BY region",
        "SELECT id FROM profiles WHERE salary > 60000 ORDER BY salary DESC LIMIT 20",
    ];
    println!("{:<70} {:>10} {:>10}", "query", "direct", "layered");
    for q in queries {
        let (td, _) = time_median(5, || {
            direct.execute_sql(q).expect("runs");
            0
        });
        let (tl, _) = time_median(5, || {
            layered.execute(q).expect("runs");
            0
        });
        println!(
            "{:<70} {:>10} {:>10}",
            q,
            format!("{:.2}ms", td.as_secs_f64() * 1e3),
            format!("{:.2}ms", tl.as_secs_f64() * 1e3)
        );
    }
    println!("\nLayered ≈ direct: non-preference statements add one parse + one registry probe.");
}

/// A1: rewrite vs native skyline algorithms across n, d and distribution.
fn a1() {
    header("A1  rewrite (NOT EXISTS) vs native skyline operators");
    let modes: [(&str, ExecutionMode); 4] = [
        ("rewrite", ExecutionMode::Rewrite),
        ("naive", ExecutionMode::Native(SkylineAlgo::Naive)),
        ("bnl", ExecutionMode::Native(SkylineAlgo::Bnl)),
        ("sfs", ExecutionMode::Native(SkylineAlgo::Sfs)),
    ];
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "workload", "skyline", "rewrite", "naive", "bnl", "sfs"
    );
    let mut rows: Vec<(String, usize, usize, u64)> = Vec::new();
    for n in [250usize, 500, 1000] {
        rows.push((format!("independent n={n} d=3"), n, 3, 5));
    }
    for dist in bks01::Distribution::ALL {
        rows.push((format!("{} n=500 d=3", dist.label()), 500, 3, 6));
    }
    for d in [2usize, 5] {
        rows.push((format!("independent n=400 d={d}"), 400, d, 7));
    }
    for (label, n, d, seed) in rows {
        let dist = if label.starts_with("corr") {
            bks01::Distribution::Correlated
        } else if label.starts_with("anti") {
            bks01::Distribution::AntiCorrelated
        } else {
            bks01::Distribution::Independent
        };
        let table = bks01::table(n, d, dist, seed);
        let sql = bks01::skyline_query(d);
        let mut cells = Vec::new();
        let mut skyline = 0;
        for (_, mode) in modes {
            let mut conn = conn_with(table.clone());
            conn.set_mode(mode);
            let (t, size) = time_median(3, || run(&mut conn, &sql).len());
            skyline = size;
            cells.push(format!("{:.1}ms", t.as_secs_f64() * 1e3));
        }
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            label, skyline, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nShape: natives beat the rewrite by a constant factor; SFS/BNL ≤ naive;");
    println!("anti-correlated data (huge skylines) is the hard case everywhere.");
}

/// A2: the E1 preference query with and without index access paths.
fn a2() {
    header("A2  §3.2 'having the right indices' — index ablation");
    let mut setup = e1_setup(10_000, 13);
    let (_, pre, actual) = setup.preselections[1].clone();
    let sql = e1_query(&pre, 0, Strategy::Preference);
    println!("Query: preference query over ~{actual}-row candidate set\n");
    for on in [true, false] {
        setup.conn.engine_mut().set_use_indexes(on);
        setup.conn.engine_mut().take_stats();
        let (t, size) = time_median(3, || run(&mut setup.conn, &sql).len());
        let stats = setup.conn.engine().take_stats();
        println!(
            "indexes {:<4} {:>10}   result {:>4}   rows scanned {:>10}   index probes {:>4}",
            if on { "ON" } else { "OFF" },
            format!("{:.1}ms", t.as_secs_f64() * 1e3),
            size,
            stats.rows_scanned,
            stats.index_probes
        );
    }
    setup.conn.engine_mut().set_use_indexes(true);
}
