//! Engine integration tests: DDL, DML, the full SELECT pipeline, and the
//! correlated NOT EXISTS pattern the Preference SQL rewrite relies on —
//! including the paper's §3.2 Cars example executed verbatim.

use prefsql_engine::{Engine, ExecOutcome};
use prefsql_types::Value;

fn setup_cars() -> Engine {
    let mut e = Engine::new();
    e.execute_sql(
        "CREATE TABLE cars (identifier INTEGER NOT NULL, make VARCHAR, model VARCHAR, \
         price INTEGER, mileage INTEGER, airbag VARCHAR, diesel VARCHAR)",
    )
    .unwrap();
    e.execute_sql(
        "INSERT INTO cars VALUES \
         (1, 'Audi', 'A6', 40000, 15000, 'yes', 'no'), \
         (2, 'BMW', '5 series', 35000, 30000, 'yes', 'yes'), \
         (3, 'Volkswagen', 'Beetle', 20000, 10000, 'yes', 'no')",
    )
    .unwrap();
    e
}

fn rows(e: &mut Engine, sql: &str) -> Vec<Vec<Value>> {
    e.execute_sql(sql)
        .unwrap_or_else(|err| panic!("query failed: {sql}: {err}"))
        .expect_rows()
        .rows
        .into_iter()
        .map(|t| t.into_values())
        .collect()
}

fn ints(rows: &[Vec<Value>], col: usize) -> Vec<i64> {
    rows.iter()
        .map(|r| r[col].as_int().expect("int column"))
        .collect()
}

#[test]
fn select_projection_and_where() {
    let mut e = setup_cars();
    let r = rows(
        &mut e,
        "SELECT identifier, price FROM cars WHERE price > 25000",
    );
    assert_eq!(ints(&r, 0), vec![1, 2]);
    let r = rows(&mut e, "SELECT * FROM cars WHERE make = 'Audi'");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].len(), 7);
}

#[test]
fn select_without_from() {
    let mut e = Engine::new();
    let r = rows(&mut e, "SELECT 1 + 1, 'hello'");
    assert_eq!(r, vec![vec![Value::Int(2), Value::str("hello")]]);
}

#[test]
fn insert_returns_count_and_validates() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER NOT NULL, y VARCHAR)")
        .unwrap();
    match e
        .execute_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        .unwrap()
    {
        ExecOutcome::Count(n) => assert_eq!(n, 2),
        other => panic!("expected count, got {other:?}"),
    }
    // NOT NULL violation.
    assert!(e.execute_sql("INSERT INTO t VALUES (NULL, 'x')").is_err());
    // Arity mismatch.
    assert!(e.execute_sql("INSERT INTO t VALUES (1)").is_err());
    // Column-list insert with reordering; omitted column becomes NULL.
    e.execute_sql("INSERT INTO t (y, x) VALUES ('c', 3)")
        .unwrap();
    let mut e2 = e;
    let r = rows(&mut e2, "SELECT x, y FROM t WHERE x = 3");
    assert_eq!(r, vec![vec![Value::Int(3), Value::str("c")]]);
}

#[test]
fn insert_from_select() {
    let mut e = setup_cars();
    e.execute_sql("CREATE TABLE expensive (identifier INTEGER, price INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO expensive SELECT identifier, price FROM cars WHERE price >= 35000")
        .unwrap();
    let r = rows(&mut e, "SELECT * FROM expensive ORDER BY price");
    assert_eq!(ints(&r, 0), vec![2, 1]);
}

#[test]
fn order_by_asc_desc_and_limit() {
    let mut e = setup_cars();
    let r = rows(&mut e, "SELECT identifier FROM cars ORDER BY price DESC");
    assert_eq!(ints(&r, 0), vec![1, 2, 3]);
    let r = rows(&mut e, "SELECT identifier FROM cars ORDER BY price LIMIT 2");
    assert_eq!(ints(&r, 0), vec![3, 2]);
    // ORDER BY an alias.
    let r = rows(
        &mut e,
        "SELECT identifier, price / 1000 AS kprice FROM cars ORDER BY kprice DESC LIMIT 1",
    );
    assert_eq!(ints(&r, 0), vec![1]);
    // ORDER BY a non-projected column.
    let r = rows(&mut e, "SELECT identifier FROM cars ORDER BY mileage");
    assert_eq!(ints(&r, 0), vec![3, 1, 2]);
}

#[test]
fn distinct_unifies_rows() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE d (x INTEGER, y FLOAT)")
        .unwrap();
    e.execute_sql("INSERT INTO d VALUES (1, 1.0), (1, 1.0), (1, 2.0), (2, 1)")
        .unwrap();
    let r = rows(&mut e, "SELECT DISTINCT x, y FROM d");
    assert_eq!(r.len(), 3);
    // INT 1 and FLOAT 1.0 in the same column position de-duplicate.
    let r = rows(&mut e, "SELECT DISTINCT y FROM d");
    assert_eq!(r.len(), 2);
}

#[test]
fn group_by_aggregates() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE sales (region VARCHAR, amount INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO sales VALUES ('n', 10), ('n', 20), ('s', 5), ('s', NULL), ('w', 7)")
        .unwrap();
    let r = rows(
        &mut e,
        "SELECT region, COUNT(*), COUNT(amount), SUM(amount), AVG(amount), \
         MIN(amount), MAX(amount) FROM sales GROUP BY region ORDER BY region",
    );
    assert_eq!(r.len(), 3);
    // north: 2 rows, sum 30, avg 15.
    assert_eq!(r[0][0], Value::str("n"));
    assert_eq!(r[0][1], Value::Int(2));
    assert_eq!(r[0][3], Value::Int(30));
    assert_eq!(r[0][4], Value::Float(15.0));
    // south: COUNT(*) counts the NULL row, COUNT(amount) does not.
    assert_eq!(r[1][1], Value::Int(2));
    assert_eq!(r[1][2], Value::Int(1));
    assert_eq!(r[1][5], Value::Int(5));
}

#[test]
fn global_aggregate_over_empty_input() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE empty_t (x INTEGER)").unwrap();
    let r = rows(&mut e, "SELECT COUNT(*), SUM(x) FROM empty_t");
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn having_filters_groups() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE s (g VARCHAR, v INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 3)")
        .unwrap();
    let r = rows(
        &mut e,
        "SELECT g, COUNT(*) FROM s GROUP BY g HAVING COUNT(*) > 1",
    );
    assert_eq!(r, vec![vec![Value::str("a"), Value::Int(2)]]);
}

#[test]
fn aggregate_arithmetic_in_select() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE s (v INTEGER)").unwrap();
    e.execute_sql("INSERT INTO s VALUES (10), (20)").unwrap();
    let r = rows(&mut e, "SELECT SUM(v) * 2 + COUNT(*) FROM s");
    assert_eq!(r, vec![vec![Value::Int(62)]]);
}

#[test]
fn joins_inner_and_cross() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE a (x INTEGER)").unwrap();
    e.execute_sql("CREATE TABLE b (y INTEGER)").unwrap();
    e.execute_sql("INSERT INTO a VALUES (1), (2)").unwrap();
    e.execute_sql("INSERT INTO b VALUES (2), (3)").unwrap();
    let r = rows(&mut e, "SELECT * FROM a CROSS JOIN b");
    assert_eq!(r.len(), 4);
    let r = rows(&mut e, "SELECT * FROM a JOIN b ON a.x = b.y");
    assert_eq!(r, vec![vec![Value::Int(2), Value::Int(2)]]);
    // Comma join + WHERE is the same thing.
    let r = rows(&mut e, "SELECT * FROM a, b WHERE a.x = b.y");
    assert_eq!(r.len(), 1);
    // Self join with aliases.
    let r = rows(
        &mut e,
        "SELECT a1.x, a2.x FROM a a1, a a2 WHERE a1.x < a2.x",
    );
    assert_eq!(r, vec![vec![Value::Int(1), Value::Int(2)]]);
}

#[test]
fn ambiguous_column_is_an_error() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE a (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO a VALUES (1)").unwrap();
    let err = e.execute_sql("SELECT x FROM a a1, a a2").unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn derived_tables() {
    let mut e = setup_cars();
    let r = rows(
        &mut e,
        "SELECT c.identifier FROM (SELECT * FROM cars WHERE price < 36000) c \
         WHERE c.mileage < 20000",
    );
    assert_eq!(ints(&r, 0), vec![3]);
    // Computed columns in derived tables are addressable by alias.
    let r = rows(
        &mut e,
        "SELECT d.lvl FROM (SELECT identifier, CASE WHEN make = 'Audi' THEN 1 ELSE 2 END \
         AS lvl FROM cars) d ORDER BY d.lvl, d.identifier",
    );
    assert_eq!(ints(&r, 0), vec![1, 2, 2]);
}

#[test]
fn views_expand() {
    let mut e = setup_cars();
    e.execute_sql("CREATE VIEW cheap AS SELECT * FROM cars WHERE price <= 35000")
        .unwrap();
    let r = rows(&mut e, "SELECT identifier FROM cheap ORDER BY identifier");
    assert_eq!(ints(&r, 0), vec![2, 3]);
    // Views of views.
    e.execute_sql("CREATE VIEW cheap_diesel AS SELECT * FROM cheap WHERE diesel = 'yes'")
        .unwrap();
    let r = rows(&mut e, "SELECT identifier FROM cheap_diesel");
    assert_eq!(ints(&r, 0), vec![2]);
    // View with alias in a join.
    let r = rows(
        &mut e,
        "SELECT c.identifier FROM cheap c JOIN cars ON c.identifier = cars.identifier \
         ORDER BY c.identifier",
    );
    assert_eq!(ints(&r, 0), vec![2, 3]);
    // Creating a view over a missing table fails eagerly.
    assert!(e
        .execute_sql("CREATE VIEW broken AS SELECT * FROM nope")
        .is_err());
}

#[test]
fn subqueries_exists_in_scalar() {
    let mut e = setup_cars();
    // Correlated EXISTS.
    let r = rows(
        &mut e,
        "SELECT c1.identifier FROM cars c1 WHERE EXISTS \
         (SELECT 1 FROM cars c2 WHERE c2.price < c1.price) ORDER BY c1.identifier",
    );
    assert_eq!(ints(&r, 0), vec![1, 2]);
    // NOT EXISTS: the cheapest car.
    let r = rows(
        &mut e,
        "SELECT c1.identifier FROM cars c1 WHERE NOT EXISTS \
         (SELECT 1 FROM cars c2 WHERE c2.price < c1.price)",
    );
    assert_eq!(ints(&r, 0), vec![3]);
    // IN sub-query.
    let r = rows(
        &mut e,
        "SELECT identifier FROM cars WHERE price IN (SELECT MAX(price) FROM cars)",
    );
    assert_eq!(ints(&r, 0), vec![1]);
    // Scalar sub-query in SELECT.
    let r = rows(&mut e, "SELECT (SELECT COUNT(*) FROM cars)");
    assert_eq!(r, vec![vec![Value::Int(3)]]);
}

#[test]
fn paper_cars_rewrite_executes_exactly() {
    // §3.2: create the Aux view and run the NOT EXISTS maxima query for
    // PREFERRING Make = 'Audi' AND Diesel = 'yes'. The paper's own SQL.
    let mut e = setup_cars();
    e.execute_sql(
        "CREATE VIEW aux AS \
         SELECT *, CASE WHEN make = 'Audi' THEN 1 ELSE 2 END AS makelevel, \
         CASE WHEN diesel = 'yes' THEN 1 ELSE 2 END AS diesellevel FROM cars",
    )
    .unwrap();
    e.execute_sql(
        "CREATE TABLE max_result (identifier INTEGER, make VARCHAR, model VARCHAR, \
         price INTEGER, mileage INTEGER, airbag VARCHAR, diesel VARCHAR)",
    )
    .unwrap();
    e.execute_sql(
        "INSERT INTO max_result \
         SELECT identifier, make, model, price, mileage, airbag, diesel \
         FROM aux a1 \
         WHERE NOT EXISTS (SELECT 1 FROM aux a2 \
           WHERE a2.makelevel <= a1.makelevel AND \
                 a2.diesellevel <= a1.diesellevel AND \
                 (a2.makelevel < a1.makelevel OR a2.diesellevel < a1.diesellevel))",
    )
    .unwrap();
    let r = rows(
        &mut e,
        "SELECT identifier FROM max_result ORDER BY identifier",
    );
    // The Audi (1) and the diesel BMW (2) are Pareto-optimal; the
    // Volkswagen (3) is dominated by both.
    assert_eq!(ints(&r, 0), vec![1, 2]);
}

#[test]
fn preference_constructs_rejected_by_host_engine() {
    let mut e = setup_cars();
    let err = e
        .execute_sql("SELECT * FROM cars PREFERRING LOWEST(price)")
        .unwrap_err();
    assert!(err.to_string().contains("rewritten"), "{err}");
    let err = e.execute_sql("SELECT LEVEL(make) FROM cars").unwrap_err();
    assert!(err.to_string().contains("quality function"), "{err}");
}

#[test]
fn indexes_accelerate_without_changing_results() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    let values: Vec<String> = (0..500).map(|i| format!("({}, {})", i % 50, i)).collect();
    e.execute_sql(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();

    let baseline = rows(&mut e, "SELECT v FROM t WHERE k = 7 ORDER BY v");
    e.take_stats();
    e.execute_sql("CREATE INDEX i_k ON t (k) USING hash")
        .unwrap();
    let indexed = rows(&mut e, "SELECT v FROM t WHERE k = 7 ORDER BY v");
    let s = e.take_stats();
    assert_eq!(baseline, indexed);
    assert_eq!(s.index_probes, 1);
    assert_eq!(s.rows_scanned, 10, "only matching rows touched");

    // Disable indexes: same answer, full scan.
    e.set_use_indexes(false);
    let scanned = rows(&mut e, "SELECT v FROM t WHERE k = 7 ORDER BY v");
    let s = e.take_stats();
    assert_eq!(baseline, scanned);
    assert_eq!(s.index_probes, 0);
    assert_eq!(s.rows_scanned, 500);
}

#[test]
fn btree_range_access_path() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    let values: Vec<String> = (0..100).map(|i| format!("({i}, {i})")).collect();
    e.execute_sql(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    e.execute_sql("CREATE INDEX i_k ON t (k)").unwrap();
    e.take_stats();
    let r = rows(&mut e, "SELECT v FROM t WHERE k BETWEEN 10 AND 19");
    let s = e.take_stats();
    assert_eq!(r.len(), 10);
    assert_eq!(s.index_probes, 1);
    assert_eq!(s.rows_scanned, 10);
}

#[test]
fn explain_renders_plan() {
    let mut e = setup_cars();
    e.execute_sql("CREATE INDEX i_make ON cars (make) USING hash")
        .unwrap();
    let out = match e
        .execute_sql("EXPLAIN SELECT * FROM cars WHERE make = 'Audi' ORDER BY price")
        .unwrap()
    {
        ExecOutcome::Explain(s) => s,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(out.contains("Index probe"), "{out}");
    assert!(out.contains("sort(1 keys)"), "{out}");
    // Without a usable index: seq scan.
    let out = match e
        .execute_sql("EXPLAIN SELECT * FROM cars WHERE price / 2 = 100")
        .unwrap()
    {
        ExecOutcome::Explain(s) => s,
        other => panic!("expected explain, got {other:?}"),
    };
    assert!(out.contains("Seq scan"), "{out}");
}

#[test]
fn explain_does_not_disturb_stats() {
    // EXPLAIN plans without executing: a read-only introspection
    // statement must leave the execution counters untouched.
    let mut e = setup_cars();
    e.execute_sql("CREATE INDEX i_make ON cars (make) USING hash")
        .unwrap();
    e.take_stats();
    e.execute_sql("EXPLAIN SELECT * FROM cars WHERE make = 'Audi'")
        .unwrap();
    let s = e.take_stats();
    assert_eq!(s.index_probes, 0);
    assert_eq!(s.rows_scanned, 0);
    assert_eq!(s.subquery_evals, 0);
}

#[test]
fn ddl_errors() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    assert!(e.execute_sql("CREATE TABLE t (y INTEGER)").is_err());
    assert!(e.execute_sql("DROP TABLE nope").is_err());
    assert!(e.execute_sql("SELECT * FROM missing").is_err());
    assert!(e.execute_sql("CREATE INDEX i ON missing (x)").is_err());
    assert!(e.execute_sql("CREATE INDEX i ON t (nope)").is_err());
    e.execute_sql("DROP TABLE t").unwrap();
    assert!(e.execute_sql("SELECT * FROM t").is_err());
}

#[test]
fn delete_rows() {
    let mut e = setup_cars();
    e.execute_sql("CREATE INDEX i_make ON cars (make) USING hash")
        .unwrap();
    match e
        .execute_sql("DELETE FROM cars WHERE price < 30000")
        .unwrap()
    {
        ExecOutcome::Count(n) => assert_eq!(n, 1),
        other => panic!("expected count, got {other:?}"),
    }
    let r = rows(&mut e, "SELECT identifier FROM cars ORDER BY identifier");
    assert_eq!(ints(&r, 0), vec![1, 2]);
    // Index still consistent after compaction.
    let r = rows(&mut e, "SELECT identifier FROM cars WHERE make = 'BMW'");
    assert_eq!(ints(&r, 0), vec![2]);
    // DELETE without WHERE empties the table.
    match e.execute_sql("DELETE FROM cars").unwrap() {
        ExecOutcome::Count(n) => assert_eq!(n, 2),
        other => panic!("expected count, got {other:?}"),
    }
    assert!(rows(&mut e, "SELECT * FROM cars").is_empty());
    assert!(e.execute_sql("DELETE FROM missing").is_err());
}

#[test]
fn update_rows() {
    let mut e = setup_cars();
    e.execute_sql("CREATE INDEX i_price ON cars (price)")
        .unwrap();
    match e
        .execute_sql("UPDATE cars SET price = price - 5000, airbag = 'no' WHERE make = 'Audi'")
        .unwrap()
    {
        ExecOutcome::Count(n) => assert_eq!(n, 1),
        other => panic!("expected count, got {other:?}"),
    }
    let r = rows(&mut e, "SELECT price, airbag FROM cars WHERE make = 'Audi'");
    assert_eq!(r, vec![vec![Value::Int(35_000), Value::str("no")]]);
    // Index sees the new value.
    let r = rows(
        &mut e,
        "SELECT identifier FROM cars WHERE price BETWEEN 34000 AND 36000 ORDER BY identifier",
    );
    assert_eq!(ints(&r, 0), vec![1, 2]);
    // Type errors abort before mutating.
    assert!(e
        .execute_sql("UPDATE cars SET price = 'expensive'")
        .is_err());
    let r = rows(&mut e, "SELECT price FROM cars WHERE identifier = 2");
    assert_eq!(r, vec![vec![Value::Int(35_000)]]);
    // Unknown column.
    assert!(e.execute_sql("UPDATE cars SET nope = 1").is_err());
    // UPDATE without WHERE touches every row.
    match e.execute_sql("UPDATE cars SET airbag = 'yes'").unwrap() {
        ExecOutcome::Count(n) => assert_eq!(n, 3),
        other => panic!("expected count, got {other:?}"),
    }
}

#[test]
fn three_valued_logic_in_where() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE n (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO n VALUES (1), (NULL), (3)")
        .unwrap();
    // NULL comparisons drop rows.
    assert_eq!(rows(&mut e, "SELECT x FROM n WHERE x > 0").len(), 2);
    assert_eq!(rows(&mut e, "SELECT x FROM n WHERE x IS NULL").len(), 1);
    assert_eq!(rows(&mut e, "SELECT x FROM n WHERE NOT (x > 0)").len(), 0);
    assert_eq!(
        rows(&mut e, "SELECT x FROM n WHERE x > 0 OR x IS NULL").len(),
        3
    );
}

#[test]
fn date_columns_roundtrip() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE trips (start_day DATE, duration INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO trips VALUES (DATE '1999-07-01', 14), ('1999/7/5', 10)")
        .unwrap();
    let r = rows(
        &mut e,
        "SELECT duration FROM trips WHERE start_day >= DATE '1999-07-02'",
    );
    assert_eq!(r, vec![vec![Value::Int(10)]]);
    // Date arithmetic: difference in days.
    let r = rows(
        &mut e,
        "SELECT start_day - DATE '1999-07-01' FROM trips ORDER BY start_day",
    );
    assert_eq!(r, vec![vec![Value::Int(0)], vec![Value::Int(4)]]);
}

#[test]
fn qualified_wildcard() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE a (x INTEGER)").unwrap();
    e.execute_sql("CREATE TABLE b (y INTEGER, z INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO a VALUES (1)").unwrap();
    e.execute_sql("INSERT INTO b VALUES (2, 3)").unwrap();
    let r = rows(&mut e, "SELECT b.* FROM a, b");
    assert_eq!(r, vec![vec![Value::Int(2), Value::Int(3)]]);
    assert!(e.execute_sql("SELECT nope.* FROM a, b").is_err());
}

#[test]
fn star_plus_computed_columns() {
    // `SELECT *, CASE ... END AS lvl` — the shape the rewriter emits.
    let mut e = setup_cars();
    let r = rows(
        &mut e,
        "SELECT *, CASE WHEN make = 'Audi' THEN 1 ELSE 2 END AS makelevel FROM cars \
         ORDER BY makelevel, identifier",
    );
    assert_eq!(r[0].len(), 8);
    assert_eq!(r[0][7], Value::Int(1)); // the Audi first
}

#[test]
fn stats_track_correlated_subquery_cost() {
    let mut e = setup_cars();
    e.take_stats();
    rows(
        &mut e,
        "SELECT c1.identifier FROM cars c1 WHERE NOT EXISTS \
         (SELECT 1 FROM cars c2 WHERE c2.price < c1.price)",
    );
    let s = e.take_stats();
    // One sub-query evaluation per outer row.
    assert_eq!(s.subquery_evals, 3);
}
