//! A mini SQL92-entry-level conformance battery for the host engine.
//!
//! The paper's claim (§3.1): "Any additional code, generated for query
//! rewriting by the Preference SQL Optimizer, is fully SQL92 entry-level
//! compliant. Thus Preference SQL can run in combination with any SQL92
//! entry-level compliant database system." Our engine *is* that database
//! system, so it must cover the constructs the rewriter emits plus the
//! surrounding entry-level basics. Each case is (query, expected rows).

use prefsql_engine::Engine;
use prefsql_types::Value;

/// A small fixed sales schema exercising joins, groups and NULLs.
fn fixture() -> Engine {
    let mut e = Engine::new();
    e.execute_sql(
        "CREATE TABLE emp (id INTEGER NOT NULL, name VARCHAR, dept INTEGER, salary INTEGER)",
    )
    .unwrap();
    e.execute_sql("CREATE TABLE dept (id INTEGER NOT NULL, dname VARCHAR)")
        .unwrap();
    e.execute_sql(
        "INSERT INTO emp VALUES \
         (1, 'ann', 10, 5000), (2, 'bob', 10, 4000), (3, 'cat', 20, 6000), \
         (4, 'dan', 20, NULL), (5, 'eve', NULL, 3000)",
    )
    .unwrap();
    e.execute_sql("INSERT INTO dept VALUES (10, 'sales'), (20, 'tech'), (30, 'empty')")
        .unwrap();
    e
}

fn check(e: &mut Engine, sql: &str, expected: Vec<Vec<Value>>) {
    let got: Vec<Vec<Value>> = e
        .execute_sql(sql)
        .unwrap_or_else(|err| panic!("{sql}\nfailed: {err}"))
        .expect_rows()
        .rows
        .into_iter()
        .map(|t| t.into_values())
        .collect();
    assert_eq!(got, expected, "mismatch for: {sql}");
}

fn i(v: i64) -> Value {
    Value::Int(v)
}
fn s(v: &str) -> Value {
    Value::str(v)
}

#[test]
fn projections_and_expressions() {
    let mut e = fixture();
    check(&mut e, "SELECT 1 + 2 * 3", vec![vec![i(7)]]);
    check(&mut e, "SELECT (1 + 2) * 3", vec![vec![i(9)]]);
    check(&mut e, "SELECT -(-5)", vec![vec![i(5)]]);
    check(&mut e, "SELECT ABS(3 - 10)", vec![vec![i(7)]]);
    check(
        &mut e,
        "SELECT name FROM emp WHERE id = 1",
        vec![vec![s("ann")]],
    );
    check(
        &mut e,
        "SELECT salary / 1000 AS k FROM emp WHERE id = 1",
        vec![vec![i(5)]],
    );
}

#[test]
fn where_predicates() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT id FROM emp WHERE salary > 4000 AND dept = 10",
        vec![vec![i(1)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp WHERE salary BETWEEN 4000 AND 5000 ORDER BY id",
        vec![vec![i(1)], vec![i(2)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp WHERE name IN ('ann', 'cat') ORDER BY id",
        vec![vec![i(1)], vec![i(3)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp WHERE name LIKE '%a%' ORDER BY id",
        vec![vec![i(1)], vec![i(3)], vec![i(4)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp WHERE dept IS NULL",
        vec![vec![i(5)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp WHERE NOT (dept = 10) ORDER BY id",
        vec![vec![i(3)], vec![i(4)]],
    );
}

#[test]
fn joins() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id \
         WHERE e.salary >= 5000 ORDER BY e.name",
        vec![vec![s("ann"), s("sales")], vec![s("cat"), s("tech")]],
    );
    // NULL dept never joins.
    check(
        &mut e,
        "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.id",
        vec![vec![i(4)]],
    );
    // Comma-join + WHERE is identical to JOIN ... ON.
    check(
        &mut e,
        "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.id",
        vec![vec![i(4)]],
    );
}

#[test]
fn aggregation() {
    let mut e = fixture();
    check(&mut e, "SELECT COUNT(*) FROM emp", vec![vec![i(5)]]);
    check(&mut e, "SELECT COUNT(salary) FROM emp", vec![vec![i(4)]]);
    check(&mut e, "SELECT SUM(salary) FROM emp", vec![vec![i(18_000)]]);
    check(
        &mut e,
        "SELECT MIN(salary), MAX(salary) FROM emp",
        vec![vec![i(3000), i(6000)]],
    );
    check(
        &mut e,
        "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept",
        vec![
            vec![Value::Null, i(1)],
            vec![i(10), i(2)],
            vec![i(20), i(2)],
        ],
    );
    check(
        &mut e,
        "SELECT dept, SUM(salary) FROM emp GROUP BY dept HAVING SUM(salary) > 6000 \
         ORDER BY dept",
        vec![vec![i(10), i(9000)]],
    );
}

#[test]
fn subqueries() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)",
        vec![vec![s("cat")]],
    );
    check(
        &mut e,
        "SELECT dname FROM dept WHERE id IN (SELECT dept FROM emp) ORDER BY dname",
        vec![vec![s("sales")], vec![s("tech")]],
    );
    check(
        &mut e,
        "SELECT dname FROM dept d WHERE NOT EXISTS \
         (SELECT 1 FROM emp e WHERE e.dept = d.id)",
        vec![vec![s("empty")]],
    );
    // Correlated scalar sub-query in the select list.
    check(
        &mut e,
        "SELECT d.dname, (SELECT COUNT(*) FROM emp e WHERE e.dept = d.id) \
         FROM dept d ORDER BY d.dname",
        vec![
            vec![s("empty"), i(0)],
            vec![s("sales"), i(2)],
            vec![s("tech"), i(2)],
        ],
    );
}

#[test]
fn case_expressions_the_rewriter_shape() {
    // The exact CASE pattern the rewriter emits for POS preferences.
    let mut e = fixture();
    check(
        &mut e,
        "SELECT id, CASE WHEN name IS NULL THEN NULL WHEN name IN ('ann') THEN 1 \
         ELSE 2 END AS lvl FROM emp WHERE dept = 10 ORDER BY id",
        vec![vec![i(1), i(1)], vec![i(2), i(2)]],
    );
    // Nested derived table + NOT EXISTS anti-join — the full rewrite shape
    // over plain data.
    check(
        &mut e,
        "SELECT a1.id FROM \
         (SELECT *, CASE WHEN dept = 10 THEN 1 ELSE 2 END AS lvl FROM emp \
          WHERE salary IS NOT NULL) a1 \
         WHERE NOT EXISTS (SELECT 1 FROM \
         (SELECT *, CASE WHEN dept = 10 THEN 1 ELSE 2 END AS lvl FROM emp \
          WHERE salary IS NOT NULL) a2 \
         WHERE a2.lvl < a1.lvl) ORDER BY a1.id",
        vec![vec![i(1)], vec![i(2)]],
    );
}

#[test]
fn set_like_behaviour() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept",
        vec![vec![i(10)], vec![i(20)]],
    );
    check(
        &mut e,
        "SELECT id FROM emp ORDER BY salary DESC, id LIMIT 2",
        vec![vec![i(3)], vec![i(1)]],
    );
}

#[test]
fn ddl_dml_roundtrip() {
    let mut e = fixture();
    e.execute_sql("CREATE TABLE archive (id INTEGER, name VARCHAR)")
        .unwrap();
    e.execute_sql("INSERT INTO archive SELECT id, name FROM emp WHERE dept = 20")
        .unwrap();
    check(
        &mut e,
        "SELECT name FROM archive ORDER BY id",
        vec![vec![s("cat")], vec![s("dan")]],
    );
    e.execute_sql("UPDATE archive SET name = UPPER(name) WHERE id = 3")
        .unwrap();
    check(
        &mut e,
        "SELECT name FROM archive ORDER BY id",
        vec![vec![s("CAT")], vec![s("dan")]],
    );
    e.execute_sql("DELETE FROM archive WHERE id = 4").unwrap();
    check(&mut e, "SELECT COUNT(*) FROM archive", vec![vec![i(1)]]);
    e.execute_sql("DROP TABLE archive").unwrap();
    assert!(e.execute_sql("SELECT * FROM archive").is_err());
}

#[test]
fn views_behave_like_their_definition() {
    let mut e = fixture();
    e.execute_sql("CREATE VIEW rich AS SELECT * FROM emp WHERE salary >= 5000")
        .unwrap();
    check(
        &mut e,
        "SELECT name FROM rich ORDER BY name",
        vec![vec![s("ann")], vec![s("cat")]],
    );
    // View joins with base tables.
    check(
        &mut e,
        "SELECT r.name, d.dname FROM rich r JOIN dept d ON r.dept = d.id ORDER BY r.name",
        vec![vec![s("ann"), s("sales")], vec![s("cat"), s("tech")]],
    );
    // Views see later inserts (no materialization).
    e.execute_sql("INSERT INTO emp VALUES (6, 'fay', 10, 9000)")
        .unwrap();
    check(&mut e, "SELECT COUNT(*) FROM rich", vec![vec![i(3)]]);
}

#[test]
fn string_functions_and_literals() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT LOWER('AbC'), UPPER('AbC')",
        vec![vec![s("abc"), s("ABC")]],
    );
    check(&mut e, "SELECT LENGTH('hello')", vec![vec![i(5)]]);
    check(&mut e, "SELECT 'it''s'", vec![vec![s("it's")]]);
    check(
        &mut e,
        "SELECT COALESCE(NULL, NULL, 'x')",
        vec![vec![s("x")]],
    );
    check(
        &mut e,
        "SELECT LEAST(3, 1, 2), GREATEST(3, 1, 2)",
        vec![vec![i(1), i(3)]],
    );
}

#[test]
fn boolean_and_null_literals() {
    let mut e = fixture();
    check(
        &mut e,
        "SELECT TRUE, FALSE",
        vec![vec![Value::Bool(true), Value::Bool(false)]],
    );
    check(&mut e, "SELECT NULL", vec![vec![Value::Null]]);
    check(
        &mut e,
        "SELECT 1 = 1, 1 = 2",
        vec![vec![Value::Bool(true), Value::Bool(false)]],
    );
    check(&mut e, "SELECT NULL = NULL", vec![vec![Value::Null]]);
}
