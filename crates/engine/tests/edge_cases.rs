//! Edge-case coverage for the host engine: NULL handling in every clause,
//! boundary LIMIT/DISTINCT behaviour, coercions, views over views, and
//! failure paths that must be clean errors.

use prefsql_engine::{Engine, ExecOutcome};
use prefsql_types::Value;

fn rows(e: &mut Engine, sql: &str) -> Vec<Vec<Value>> {
    e.execute_sql(sql)
        .unwrap_or_else(|err| panic!("query failed: {sql}: {err}"))
        .expect_rows()
        .rows
        .into_iter()
        .map(|t| t.into_values())
        .collect()
}

#[test]
fn order_by_puts_nulls_first() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (2), (NULL), (1)")
        .unwrap();
    let r = rows(&mut e, "SELECT x FROM t ORDER BY x");
    assert_eq!(
        r,
        vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Int(2)]]
    );
    let r = rows(&mut e, "SELECT x FROM t ORDER BY x DESC");
    assert_eq!(
        r,
        vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Null]]
    );
}

#[test]
fn order_by_multiple_keys() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (a INTEGER, b INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)")
        .unwrap();
    let r = rows(&mut e, "SELECT a, b FROM t ORDER BY a, b DESC");
    assert_eq!(
        r,
        vec![
            vec![Value::Int(0), Value::Int(9)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
        ]
    );
}

#[test]
fn limit_zero_and_oversized() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2)").unwrap();
    assert!(rows(&mut e, "SELECT x FROM t LIMIT 0").is_empty());
    assert_eq!(rows(&mut e, "SELECT x FROM t LIMIT 99").len(), 2);
}

#[test]
fn distinct_groups_nulls_together() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (NULL), (NULL), (1)")
        .unwrap();
    assert_eq!(rows(&mut e, "SELECT DISTINCT x FROM t").len(), 2);
}

#[test]
fn group_by_null_key_forms_a_group() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (g VARCHAR, v INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO t VALUES (NULL, 1), (NULL, 2), ('a', 3)")
        .unwrap();
    let r = rows(&mut e, "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g");
    assert_eq!(r.len(), 2);
    // NULL group sorts first under the total order.
    assert_eq!(r[0], vec![Value::Null, Value::Int(3)]);
}

#[test]
fn min_max_over_strings_and_dates() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (s VARCHAR, d DATE)").unwrap();
    e.execute_sql("INSERT INTO t VALUES ('pear', DATE '1999-07-03'), ('apple', DATE '2001-01-01')")
        .unwrap();
    let r = rows(&mut e, "SELECT MIN(s), MAX(s), MIN(d), MAX(d) FROM t");
    assert_eq!(r[0][0], Value::str("apple"));
    assert_eq!(r[0][1], Value::str("pear"));
    assert_eq!(r[0][2].to_string(), "1999-07-03");
    assert_eq!(r[0][3].to_string(), "2001-01-01");
}

#[test]
fn avg_promotes_to_float() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2)").unwrap();
    let r = rows(&mut e, "SELECT AVG(x) FROM t");
    assert_eq!(r[0][0], Value::Float(1.5));
}

#[test]
fn having_without_group_by() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(
        rows(&mut e, "SELECT SUM(x) FROM t HAVING SUM(x) > 2").len(),
        1
    );
    assert_eq!(
        rows(&mut e, "SELECT SUM(x) FROM t HAVING SUM(x) > 5").len(),
        0
    );
}

#[test]
fn insert_coerces_ints_into_float_columns() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (f FLOAT, d DATE)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (3, '1999/7/3')")
        .unwrap();
    let r = rows(&mut e, "SELECT f, d FROM t");
    assert_eq!(r[0][0], Value::Float(3.0));
    assert_eq!(r[0][1].to_string(), "1999-07-03");
}

#[test]
fn three_level_view_stack() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE base (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO base VALUES (1), (2), (3), (4)")
        .unwrap();
    e.execute_sql("CREATE VIEW v1 AS SELECT * FROM base WHERE x > 1")
        .unwrap();
    e.execute_sql("CREATE VIEW v2 AS SELECT * FROM v1 WHERE x > 2")
        .unwrap();
    e.execute_sql("CREATE VIEW v3 AS SELECT * FROM v2 WHERE x > 3")
        .unwrap();
    let r = rows(&mut e, "SELECT x FROM v3");
    assert_eq!(r, vec![vec![Value::Int(4)]]);
}

#[test]
fn view_over_dropped_table_errors_at_query_time() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE base (x INTEGER)").unwrap();
    e.execute_sql("CREATE VIEW v AS SELECT * FROM base")
        .unwrap();
    e.execute_sql("DROP TABLE base").unwrap();
    assert!(e.execute_sql("SELECT * FROM v").is_err());
}

#[test]
fn three_way_cross_join_cardinality() {
    let mut e = Engine::new();
    for t in ["a", "b", "c"] {
        e.execute_sql(&format!("CREATE TABLE {t} (x INTEGER)"))
            .unwrap();
        e.execute_sql(&format!("INSERT INTO {t} VALUES (1), (2)"))
            .unwrap();
    }
    assert_eq!(rows(&mut e, "SELECT * FROM a, b, c").len(), 8);
    assert_eq!(
        rows(
            &mut e,
            "SELECT * FROM a, b, c WHERE a.x = b.x AND b.x = c.x"
        )
        .len(),
        2
    );
}

#[test]
fn in_subquery_with_nulls_follows_three_valued_logic() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("CREATE TABLE s (y INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (3)").unwrap();
    e.execute_sql("INSERT INTO s VALUES (1), (NULL)").unwrap();
    // 1 IN (1, NULL) = TRUE; 3 IN (1, NULL) = UNKNOWN -> filtered.
    assert_eq!(
        rows(&mut e, "SELECT x FROM t WHERE x IN (SELECT y FROM s)").len(),
        1
    );
    // NOT IN with NULL present: nothing qualifies (classic SQL trap).
    assert_eq!(
        rows(&mut e, "SELECT x FROM t WHERE x NOT IN (SELECT y FROM s)").len(),
        0
    );
}

#[test]
fn case_without_else_yields_null() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    let r = rows(&mut e, "SELECT CASE WHEN x = 2 THEN 'two' END FROM t");
    assert_eq!(r, vec![vec![Value::Null]]);
}

#[test]
fn scalar_subquery_cardinality_errors() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2)").unwrap();
    // Two rows in a scalar position: error.
    assert!(e.execute_sql("SELECT (SELECT x FROM t)").is_err());
    // Zero rows: NULL.
    let r = rows(&mut e, "SELECT (SELECT x FROM t WHERE x > 9)");
    assert_eq!(r, vec![vec![Value::Null]]);
}

#[test]
fn update_with_correlated_subquery_value() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (5)").unwrap();
    e.execute_sql("UPDATE t SET x = (SELECT MAX(x) FROM t) WHERE x = 1")
        .unwrap();
    let r = rows(&mut e, "SELECT x FROM t ORDER BY x");
    assert_eq!(r, vec![vec![Value::Int(5)], vec![Value::Int(5)]]);
}

#[test]
fn delete_with_subquery_predicate() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("CREATE TABLE banned (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    e.execute_sql("INSERT INTO banned VALUES (2)").unwrap();
    match e
        .execute_sql("DELETE FROM t WHERE x IN (SELECT x FROM banned)")
        .unwrap()
    {
        ExecOutcome::Count(n) => assert_eq!(n, 1),
        other => panic!("expected count, got {other:?}"),
    }
    assert_eq!(
        rows(&mut e, "SELECT COUNT(*) FROM t"),
        vec![vec![Value::Int(2)]]
    );
}

#[test]
fn like_escaping_of_wildcards_is_literal_percent_free() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (s VARCHAR)").unwrap();
    e.execute_sql("INSERT INTO t VALUES ('100%'), ('100x')")
        .unwrap();
    // '%' in the pattern is a wildcard (no ESCAPE support — SQL92 entry
    // minimal); both rows match '100%'.
    assert_eq!(rows(&mut e, "SELECT s FROM t WHERE s LIKE '100%'").len(), 2);
    assert_eq!(rows(&mut e, "SELECT s FROM t WHERE s LIKE '100_'").len(), 2);
}

#[test]
fn empty_values_and_arity_checks() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER, y INTEGER)")
        .unwrap();
    assert!(e.execute_sql("INSERT INTO t (x) VALUES (1, 2)").is_err());
    e.execute_sql("INSERT INTO t (y) VALUES (7)").unwrap();
    let r = rows(&mut e, "SELECT x, y FROM t");
    assert_eq!(r, vec![vec![Value::Null, Value::Int(7)]]);
}

#[test]
fn select_expression_aliases_usable_in_order_by() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (a INTEGER, b INTEGER)")
        .unwrap();
    e.execute_sql("INSERT INTO t VALUES (1, 10), (2, 1)")
        .unwrap();
    let r = rows(&mut e, "SELECT a, a * b AS product FROM t ORDER BY product");
    assert_eq!(r[0][1], Value::Int(2));
    assert_eq!(r[1][1], Value::Int(10));
}

#[test]
fn comparison_type_mismatch_is_unknown_not_error() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1)").unwrap();
    // Comparing INT to a string yields UNKNOWN -> row filtered, no error
    // (defensive dynamic typing; a stricter checker could reject).
    assert!(rows(&mut e, "SELECT x FROM t WHERE x = 'one'").is_empty());
}

#[test]
fn update_everything_and_delete_everything_counts() {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
    e.execute_sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    match e.execute_sql("UPDATE t SET x = 0").unwrap() {
        ExecOutcome::Count(n) => assert_eq!(n, 3),
        other => panic!("{other:?}"),
    }
    match e.execute_sql("DELETE FROM t").unwrap() {
        ExecOutcome::Count(n) => assert_eq!(n, 3),
        other => panic!("{other:?}"),
    }
}
