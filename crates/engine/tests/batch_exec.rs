//! Batch-boundary integration tests: the batched drive loop must agree
//! with the tuple-at-a-time drive loop for every operator shape the
//! planner emits — including batches that straddle LIMIT cutoffs, empty
//! result sets, and final short batches — at every batch size.

use prefsql_engine::physical::{build, drain_batched, drain_tuple_at_a_time};
use prefsql_engine::Engine;
use prefsql_parser::ast::Statement;
use prefsql_parser::parse_statement;
use prefsql_types::Tuple;

/// Batch sizes covering degenerate (1), prime mid-size straddles (3, 7)
/// and everything-in-one-pull (1024).
const BATCH_SIZES: [usize; 4] = [1, 3, 7, 1024];

fn setup() -> Engine {
    let mut e = Engine::new();
    e.execute_sql("CREATE TABLE t (id INTEGER NOT NULL, grp INTEGER, v INTEGER)")
        .unwrap();
    // 50 rows: grp cycles 0..5, v descends — enough to straddle every
    // batch size in BATCH_SIZES several times.
    for i in 0..50 {
        e.execute_sql(&format!(
            "INSERT INTO t VALUES ({i}, {}, {})",
            i % 5,
            100 - i
        ))
        .unwrap();
    }
    e.execute_sql("CREATE INDEX idx_grp ON t (grp) USING hash")
        .unwrap();
    e
}

fn select_query(sql: &str) -> prefsql_parser::ast::Query {
    match parse_statement(sql).unwrap() {
        Statement::Select(q) => *q,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

/// Drive `sql` tuple-at-a-time and at every batch size; all runs must
/// produce identical row vectors (same tuples, same order).
fn assert_batched_matches_streaming(engine: &Engine, sql: &str) {
    let query = select_query(sql);
    let ctx = engine.read_ctx().unwrap();
    let plan = ctx.plan_for(&query).unwrap();

    let streamed: Vec<Tuple> = {
        let mut op = build(&ctx, plan.root(), &[]);
        drain_tuple_at_a_time(op.as_mut()).unwrap()
    };
    for batch in BATCH_SIZES {
        let mut op = build(&ctx, plan.root(), &[]);
        let batched = drain_batched(op.as_mut(), batch).unwrap();
        assert_eq!(batched, streamed, "batch={batch} diverged on: {sql}");
    }
}

#[test]
fn scan_filter_project_agree_across_batch_sizes() {
    let e = setup();
    for sql in [
        "SELECT id, v FROM t",
        "SELECT id FROM t WHERE v > 75",
        "SELECT id, v + 1 FROM t WHERE grp = 2",
        // Empty result: every batch is an empty final batch.
        "SELECT id FROM t WHERE v > 1000",
    ] {
        assert_batched_matches_streaming(&e, sql);
    }
}

#[test]
fn limit_cutoffs_agree_across_batch_sizes() {
    let e = setup();
    for sql in [
        // Cutoffs that land mid-batch, on batch edges, at 0 and past the end.
        "SELECT id FROM t LIMIT 1",
        "SELECT id FROM t LIMIT 5",
        "SELECT id FROM t LIMIT 7",
        "SELECT id FROM t LIMIT 49",
        "SELECT id FROM t LIMIT 50",
        "SELECT id FROM t LIMIT 500",
        "SELECT id FROM t WHERE grp = 1 LIMIT 4",
        "SELECT id, v FROM t ORDER BY v LIMIT 9",
    ] {
        assert_batched_matches_streaming(&e, sql);
    }
}

#[test]
fn pipeline_breakers_and_joins_agree_across_batch_sizes() {
    let e = setup();
    for sql in [
        "SELECT id, v FROM t ORDER BY v DESC",
        "SELECT DISTINCT grp FROM t",
        "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp",
        "SELECT a.id, b.id FROM t a, t b WHERE a.id = b.id AND a.v > 90",
        "SELECT x.id FROM (SELECT id, v FROM t WHERE v > 60) x WHERE x.v < 90",
    ] {
        assert_batched_matches_streaming(&e, sql);
    }
}

#[test]
fn index_scan_agrees_across_batch_sizes() {
    let e = setup();
    // grp has a hash index; the planner picks the index probe for
    // equality — verify by the stats, then diff the drive loops.
    let query = select_query("SELECT id FROM t WHERE grp = 3");
    let rows = {
        let ctx = e.read_ctx().unwrap();
        let plan = ctx.plan_for(&query).unwrap();
        let mut op = build(&ctx, plan.root(), &[]);
        let rows = drain_batched(op.as_mut(), 3).unwrap();
        e.note_stats(ctx.take_stats());
        rows
    };
    assert_eq!(rows.len(), 10);
    assert!(e.take_stats().index_probes > 0, "expected an index probe");
    assert_batched_matches_streaming(&e, "SELECT id FROM t WHERE grp = 3");
}
