//! The logical plan: a query block compiled into an operator tree.
//!
//! [`plan_query`] turns a parsed [`Query`] into a [`PlanNode`] tree exactly
//! once per statement, absorbing all plan-time decisions — access-path
//! selection ([`choose_access_path`]), view expansion, ORDER BY alias
//! substitution, projection/aggregate output schemas. The tree is the
//! single source of truth for execution: `EXPLAIN` renders it and the
//! physical operators of [`crate::physical`] run it, so the two can never
//! drift apart.

use crate::access::{choose_access_path, AccessPath};
use crate::exec::ExecCtx;
use prefsql_parser::ast::{Expr, Query, SelectItem, Statement, TableRef};
use prefsql_parser::parse_statement;
use prefsql_types::{Column, DataType, Error, Result, Schema};

/// One compiled query block, ready for execution and EXPLAIN.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    root: PlanNode,
}

impl QueryPlan {
    /// The root of the operator tree.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }
}

/// A node of the logical operator tree. Every node knows its output
/// schema; expressions are resolved copies of the AST (aliases already
/// substituted where SQL requires it).
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// `SELECT` without `FROM`: a single empty tuple.
    Nothing {
        /// The (empty) output schema.
        schema: Schema,
    },
    /// Full scan of a base table: streams straight off the stored rows,
    /// no copy.
    SeqScan {
        /// Table name in the catalog.
        table: String,
        /// Qualifier the columns are exposed under (alias or table name).
        qualifier: String,
        /// Row count at plan time (informational, for EXPLAIN).
        rows: usize,
        /// Storage backend serving the scan (`"mem"` or `"paged"`; EXPLAIN
        /// tags non-default backends).
        backend: &'static str,
        /// Output schema (table schema re-qualified).
        schema: Schema,
    },
    /// Scan of a materialized preference view: streams the stored winner
    /// rows (base-table tuples, entry order) — the serving cache a
    /// registered skyline reads instead of recomputing BMO.
    MatViewScan {
        /// View name in the catalog.
        view: String,
        /// Winner count at plan time (informational, for EXPLAIN).
        rows: usize,
        /// Output schema (base-table schema under the view's qualifier).
        schema: Schema,
    },
    /// Index probe of a base table: candidate row ids were computed at
    /// plan time; the full predicate is re-checked by the parent
    /// [`PlanNode::Filter`], so the probe never changes results.
    IndexScan {
        /// Table name in the catalog.
        table: String,
        /// Qualifier the columns are exposed under (alias or table name).
        qualifier: String,
        /// Candidate row ids.
        row_ids: Vec<usize>,
        /// Human-readable probe description (for EXPLAIN).
        describe: String,
        /// Output schema (table schema re-qualified).
        schema: Schema,
    },
    /// A sub-plan materialized once per statement (views and derived
    /// tables are uncorrelated in SQL92, so caching is sound).
    Materialize {
        /// `View expansion: ...` / `Derived table ...` (for EXPLAIN).
        label: String,
        /// Per-statement materialization cache key.
        cache_key: String,
        /// The sub-plan.
        input: Box<PlanNode>,
        /// Output schema (sub-plan schema re-qualified).
        schema: Schema,
    },
    /// Nested-loop join; `on: None` is a cross join.
    NestedLoopJoin {
        /// Left (streamed) input.
        left: Box<PlanNode>,
        /// Right (materialized once) input.
        right: Box<PlanNode>,
        /// Join condition.
        on: Option<Expr>,
        /// Combined output schema.
        schema: Schema,
    },
    /// Hash equi-join with a Grace-hash overflow path. Output is
    /// byte-identical — rows and order — to the nested-loop join it
    /// replaces (left-major, right-minor); see [`crate::join`].
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Equi-key pairs: (left-side expr, right-side expr), each
        /// resolved against its own input schema.
        keys: Vec<(Expr, Expr)>,
        /// Non-equi conjuncts of the ON condition, re-checked against
        /// the combined row after the probe.
        residual: Option<Expr>,
        /// Build the hash table on the left input (else the right).
        build_left: bool,
        /// Session window budget baked in at plan time; builds larger
        /// than this partition to spill runs. `None` never spills.
        window: Option<usize>,
        /// Combined output schema.
        schema: Schema,
    },
    /// Keep rows whose predicate is exactly TRUE.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// The predicate.
        pred: Expr,
    },
    /// Evaluate the SELECT list.
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// One entry per output column.
        projections: Vec<Projection>,
        /// Output schema.
        schema: Schema,
    },
    /// Stable sort (runs below [`PlanNode::Project`]: sort keys may use
    /// non-projected columns).
    Sort {
        /// Input node.
        input: Box<PlanNode>,
        /// Sort keys, select aliases already substituted.
        keys: Vec<SortKey>,
    },
    /// Duplicate elimination (first occurrence wins).
    Distinct {
        /// Input node.
        input: Box<PlanNode>,
    },
    /// Emit at most `n` rows.
    Limit {
        /// Input node.
        input: Box<PlanNode>,
        /// Row cap.
        n: u64,
        /// EXPLAIN label.
        label: String,
    },
    /// Grouped aggregation (GROUP BY / HAVING / aggregate SELECT items,
    /// including the post-aggregate ORDER BY).
    Aggregate {
        /// Input node.
        input: Box<PlanNode>,
        /// Everything the aggregate operator needs.
        spec: AggSpec,
        /// Output schema.
        schema: Schema,
    },
}

/// How one output column of a [`PlanNode::Project`] is produced.
#[derive(Debug, Clone)]
pub enum Projection {
    /// Copy input column by position (wildcards).
    Passthrough(usize),
    /// Evaluate an expression.
    Computed(Expr),
}

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// The key expression (aliases substituted).
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub asc: bool,
}

/// The full specification of an aggregate block.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// One output expression per SELECT item (may contain aggregates).
    pub select: Vec<Expr>,
    /// Post-aggregate ORDER BY keys.
    pub order_by: Vec<AggSortKey>,
}

/// An ORDER BY key over aggregate output: evaluated against the output
/// schema first (aliases substituted), recomputed from the group on
/// failure (aggregate expressions referenced verbatim).
#[derive(Debug, Clone)]
pub struct AggSortKey {
    /// Alias-substituted expression, tried against the output schema.
    pub output: Expr,
    /// The verbatim ORDER BY expression, recomputed over the group.
    pub original: Expr,
    /// Ascending or descending.
    pub asc: bool,
}

impl PlanNode {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            PlanNode::Nothing { schema }
            | PlanNode::SeqScan { schema, .. }
            | PlanNode::MatViewScan { schema, .. }
            | PlanNode::IndexScan { schema, .. }
            | PlanNode::Materialize { schema, .. }
            | PlanNode::NestedLoopJoin { schema, .. }
            | PlanNode::HashJoin { schema, .. }
            | PlanNode::Project { schema, .. }
            | PlanNode::Aggregate { schema, .. } => schema,
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Distinct { input }
            | PlanNode::Limit { input, .. } => input.schema(),
        }
    }

    /// The node's single input, if it is a pass-through node.
    pub fn input(&self) -> Option<&PlanNode> {
        match self {
            PlanNode::Filter { input, .. }
            | PlanNode::Materialize { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Distinct { input }
            | PlanNode::Limit { input, .. }
            | PlanNode::Aggregate { input, .. } => Some(input),
            _ => None,
        }
    }

    /// Plan-time cardinality estimate from catalog row counts (an upper
    /// bound for filtering nodes). Drives hash-join build-side
    /// selection; `None` when no estimate is available.
    pub fn estimate_rows(&self) -> Option<usize> {
        match self {
            PlanNode::Nothing { .. } => Some(1),
            PlanNode::SeqScan { rows, .. } | PlanNode::MatViewScan { rows, .. } => Some(*rows),
            PlanNode::IndexScan { row_ids, .. } => Some(row_ids.len()),
            PlanNode::Materialize { input, .. }
            | PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Distinct { input } => input.estimate_rows(),
            PlanNode::Limit { input, n, .. } => {
                Some(input.estimate_rows()?.min(usize::try_from(*n).ok()?))
            }
            PlanNode::NestedLoopJoin { left, right, .. } => {
                Some(left.estimate_rows()?.saturating_mul(right.estimate_rows()?))
            }
            // An equi-join emits at most |left| x |right| rows, but the
            // cross-product estimate made every hash join look enormous to
            // its parent (so a 3-table plan would build on a huge joined
            // side). `max` keeps the bound sound for the common key-to-key
            // shape while staying monotone in both inputs.
            PlanNode::HashJoin { left, right, .. } => {
                Some(left.estimate_rows()?.max(right.estimate_rows()?))
            }
            PlanNode::Aggregate { .. } => None,
        }
    }
}

/// The PREFERRING/GROUPING/BUT ONLY clauses and quality functions never
/// reach the host engine — the Preference SQL layer rewrites them away.
pub(crate) fn reject_preference_constructs(query: &Query) -> Result<()> {
    if query.preferring.is_some() || !query.grouping.is_empty() || query.but_only.is_some() {
        return Err(Error::Unsupported(
            "PREFERRING/GROUPING/BUT ONLY must be rewritten by the Preference \
             SQL optimizer before reaching the host SQL engine"
                .into(),
        ));
    }
    Ok(())
}

/// Compile one query block into a plan tree.
pub fn plan_query(ctx: &ExecCtx<'_>, query: &Query) -> Result<QueryPlan> {
    reject_preference_constructs(query)?;
    let source = plan_source(ctx, query)?;
    let root = plan_block(query, source)?;
    Ok(QueryPlan { root })
}

/// Compile only the FROM/WHERE part of a query block (the shape shared by
/// `EXISTS` probes and the native preference path's candidate fetch).
pub(crate) fn plan_source(ctx: &ExecCtx<'_>, query: &Query) -> Result<PlanNode> {
    let input = plan_from(ctx, query)?;
    Ok(match &query.where_clause {
        None => input,
        Some(pred) => PlanNode::Filter {
            input: Box::new(input),
            pred: pred.clone(),
        },
    })
}

/// Layer projection/aggregation, DISTINCT and LIMIT on top of a source.
fn plan_block(query: &Query, source: PlanNode) -> Result<PlanNode> {
    let needs_agg = !query.group_by.is_empty()
        || query.having.is_some()
        || query.select.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
    let mut node = if needs_agg {
        plan_aggregate(query, source)?
    } else {
        let input_schema = source.schema().clone();
        let sorted = if query.order_by.is_empty() {
            source
        } else {
            PlanNode::Sort {
                input: Box::new(source),
                keys: query
                    .order_by
                    .iter()
                    .map(|o| SortKey {
                        expr: substitute_alias(&o.expr, query),
                        asc: o.asc,
                    })
                    .collect(),
            }
        };
        let (schema, projections) = projection_plan(query, &input_schema)?;
        PlanNode::Project {
            input: Box::new(sorted),
            projections,
            schema,
        }
    };
    if query.distinct {
        node = PlanNode::Distinct {
            input: Box::new(node),
        };
    }
    if let Some(n) = query.limit {
        node = PlanNode::Limit {
            input: Box::new(node),
            n,
            label: format!("limit {n}"),
        };
    }
    Ok(node)
}

fn plan_aggregate(query: &Query, source: PlanNode) -> Result<PlanNode> {
    let input_schema = source.schema().clone();
    let mut columns = Vec::new();
    let mut select = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Expr { expr, alias } => {
                columns.push(Column::new(
                    output_name(expr, alias.as_deref()),
                    infer_type(expr, &input_schema),
                ));
                select.push(expr.clone());
            }
            _ => {
                return Err(Error::Plan(
                    "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                ))
            }
        }
    }
    let schema = Schema::new(dedupe_columns(columns))?;
    let order_by = query
        .order_by
        .iter()
        .map(|o| AggSortKey {
            output: substitute_alias(&o.expr, query),
            original: o.expr.clone(),
            asc: o.asc,
        })
        .collect();
    Ok(PlanNode::Aggregate {
        input: Box::new(source),
        spec: AggSpec {
            group_by: query.group_by.clone(),
            having: query.having.clone(),
            select,
            order_by,
        },
        schema,
    })
}

/// Resolve the FROM clause into a source node. Multiple FROM items
/// cross-join left to right.
fn plan_from(ctx: &ExecCtx<'_>, query: &Query) -> Result<PlanNode> {
    if query.from.is_empty() {
        return Ok(PlanNode::Nothing {
            schema: Schema::empty(),
        });
    }
    // Index access only applies when one named table is the *only* FROM
    // item (the sargable conjunct analysis resolves against its schema;
    // with joins the residual re-check could not see the other side).
    let allow_index = query.from.len() == 1 && matches!(&query.from[0], TableRef::Named { .. });
    let mut acc: Option<PlanNode> = None;
    for item in &query.from {
        let next = plan_table_ref(ctx, item, query, allow_index)?;
        acc = Some(match acc {
            None => next,
            Some(left) => {
                let schema = left.schema().join(next.schema());
                PlanNode::NestedLoopJoin {
                    left: Box::new(left),
                    right: Box::new(next),
                    on: None,
                    schema,
                }
            }
        });
    }
    Ok(acc.expect("non-empty FROM"))
}

fn plan_table_ref(
    ctx: &ExecCtx<'_>,
    item: &TableRef,
    query: &Query,
    allow_index: bool,
) -> Result<PlanNode> {
    match item {
        TableRef::Named { name, alias } => {
            plan_named(ctx, name, alias.as_deref(), query, allow_index)
        }
        TableRef::Derived { query: sub, alias } => {
            reject_preference_constructs(sub)?;
            let body = plan_query(ctx, sub)?;
            let schema = body
                .root
                .schema()
                .without_qualifiers()
                .with_qualifier(alias);
            Ok(PlanNode::Materialize {
                label: format!("Derived table {alias}"),
                cache_key: format!("derived:{alias}:{sub}"),
                input: Box::new(body.root),
                schema,
            })
        }
        TableRef::Join { left, right, on } => {
            let l = plan_table_ref(ctx, left, query, false)?;
            let r = plan_table_ref(ctx, right, query, false)?;
            let schema = l.schema().join(r.schema());
            // Equi-join conjuncts in the ON condition select the hash
            // fast path; anything the splitter cannot fully classify
            // (non-equi only, subqueries, unresolvable columns) keeps
            // the nested loop so evaluation semantics are unchanged.
            if ctx.use_hash_join() {
                if let Some(cond) = on {
                    if let Some(equi) = crate::join::split_equi_join(cond, l.schema(), r.schema()) {
                        // Build on the estimated-smaller side; ties and
                        // unknowns keep the right (the side the nested
                        // loop would materialize anyway).
                        let build_left = match (l.estimate_rows(), r.estimate_rows()) {
                            (Some(le), Some(re)) => le < re,
                            _ => false,
                        };
                        return Ok(PlanNode::HashJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                            keys: equi.keys,
                            residual: equi.residual,
                            build_left,
                            window: ctx.window_bytes(),
                            schema,
                        });
                    }
                }
            }
            Ok(PlanNode::NestedLoopJoin {
                left: Box::new(l),
                right: Box::new(r),
                on: on.clone(),
                schema,
            })
        }
    }
}

fn plan_named(
    ctx: &ExecCtx<'_>,
    name: &str,
    alias: Option<&str>,
    query: &Query,
    allow_index: bool,
) -> Result<PlanNode> {
    let qual = alias.unwrap_or(name).to_ascii_lowercase();
    // Views expand recursively at plan time.
    if let Some(view) = ctx.catalog().view(name) {
        let depth = *ctx.view_depth.borrow();
        if depth > 32 {
            return Err(Error::Plan(format!("view expansion too deep at '{name}'")));
        }
        let parsed = parse_statement(&view.sql)?;
        let body = match parsed {
            Statement::Select(q) => q,
            other => {
                return Err(Error::Catalog(format!(
                    "view '{name}' does not contain a query: {other:?}"
                )))
            }
        };
        *ctx.view_depth.borrow_mut() += 1;
        let planned = plan_query(ctx, &body);
        *ctx.view_depth.borrow_mut() -= 1;
        let plan = planned?;
        let schema = plan
            .root
            .schema()
            .without_qualifiers()
            .with_qualifier(&qual);
        let shown = match alias {
            Some(a) => format!("{name} AS {a}"),
            None => name.to_string(),
        };
        return Ok(PlanNode::Materialize {
            label: format!("View expansion: {shown}"),
            cache_key: format!("view:{name}:{qual}"),
            input: Box::new(plan.root),
            schema,
        });
    }
    // Materialized preference views serve their stored winner set
    // directly: a scan of the cached base rows plus the view's own
    // projection — no BMO recomputation.
    if let Some(mv) = ctx.catalog().matview(name) {
        if mv.stale {
            return Err(Error::Catalog(format!(
                "materialized preference view '{}' is stale; run \
                 REFRESH MATERIALIZED PREFERENCE VIEW {}",
                mv.name, mv.name
            )));
        }
        let parsed = parse_statement(&mv.sql)?;
        let Statement::Select(body) = parsed else {
            return Err(Error::Catalog(format!(
                "materialized view '{}' does not contain a query",
                mv.name
            )));
        };
        let scan = PlanNode::MatViewScan {
            view: mv.name.clone(),
            rows: mv.winner_count(),
            schema: mv.schema.clone(),
        };
        let (schema, projections) = projection_plan(&body, &mv.schema)?;
        let project = PlanNode::Project {
            input: Box::new(scan),
            projections,
            schema,
        };
        let schema = project.schema().without_qualifiers().with_qualifier(&qual);
        let shown = match alias {
            Some(a) => format!("{name} AS {a}"),
            None => name.to_string(),
        };
        return Ok(PlanNode::Materialize {
            label: format!("Materialized preference view: {shown}"),
            cache_key: format!("matview:{name}:{qual}"),
            input: Box::new(project),
            schema,
        });
    }
    let table = ctx.catalog().table(name)?;
    let schema = table.schema().without_qualifiers().with_qualifier(&qual);
    let path = if ctx.use_indexes() && allow_index {
        choose_access_path(table, query.where_clause.as_ref())
    } else {
        AccessPath::SeqScan
    };
    Ok(match path {
        AccessPath::SeqScan => PlanNode::SeqScan {
            table: name.to_string(),
            qualifier: qual,
            rows: table.stat_row_count(),
            backend: table.backend_label(),
            schema,
        },
        // The probe counter is bumped at operator open, not here: EXPLAIN
        // plans without executing and must not disturb the statistics.
        AccessPath::Index { row_ids, describe } => PlanNode::IndexScan {
            table: name.to_string(),
            qualifier: qual,
            row_ids,
            describe,
            schema,
        },
    })
}

/// Expand the SELECT list against the input schema.
pub(crate) fn projection_plan(
    query: &Query,
    input_schema: &Schema,
) -> Result<(Schema, Vec<Projection>)> {
    let mut columns = Vec::new();
    let mut projections = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in input_schema.columns().iter().enumerate() {
                    columns.push(c.clone());
                    projections.push(Projection::Passthrough(i));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let t = t.to_ascii_lowercase();
                let mut any = false;
                for (i, c) in input_schema.columns().iter().enumerate() {
                    if c.qualifier.as_deref() == Some(t.as_str()) {
                        columns.push(c.clone());
                        projections.push(Projection::Passthrough(i));
                        any = true;
                    }
                }
                if !any {
                    return Err(Error::Plan(format!("unknown table '{t}' in '{t}.*'")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = output_name(expr, alias.as_deref());
                let dtype = infer_type(expr, input_schema);
                columns.push(Column::new(name, dtype));
                projections.push(Projection::Computed(expr.clone()));
            }
        }
    }
    Ok((Schema::new(dedupe_columns(columns))?, projections))
}

/// Substitute a bare output-alias reference in ORDER BY with its select
/// expression (`SELECT price * 2 AS p ... ORDER BY p`).
fn substitute_alias(expr: &Expr, query: &Query) -> Expr {
    if let Expr::Column {
        qualifier: None,
        name,
    } = expr
    {
        for item in &query.select {
            if let SelectItem::Expr {
                expr: sel,
                alias: Some(a),
            } = item
            {
                if a == name {
                    return sel.clone();
                }
            }
        }
    }
    expr.clone()
}

/// Make output column names unique (SQL permits `SELECT a1.x, a2.x` and
/// repeated aggregates; our [`Schema`] requires unique names, so later
/// duplicates get a positional suffix).
fn dedupe_columns(columns: Vec<Column>) -> Vec<Column> {
    let mut out: Vec<Column> = Vec::with_capacity(columns.len());
    for mut c in columns {
        let clashes = |name: &str, out: &[Column]| {
            out.iter()
                .any(|o| o.name == name && o.qualifier == c.qualifier)
        };
        if clashes(&c.name, &out) {
            let mut k = 2;
            while clashes(&format!("{}_{k}", c.name), &out) {
                k += 1;
            }
            c.name = format!("{}_{k}", c.name);
        }
        out.push(c);
    }
    out
}

/// Output column name for an expression select item.
fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_owned();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        other => other.to_string().to_ascii_lowercase(),
    }
}

/// Best-effort static type inference for output schemas (informational —
/// runtime values carry their own types).
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Column { qualifier, name } => schema
            .resolve(qualifier.as_deref(), name)
            .map(|i| schema.column(i).data_type)
            .unwrap_or(DataType::Str),
        Expr::Unary { expr, .. } => infer_type(expr, schema),
        Expr::Binary { left, op, right } => match op {
            prefsql_parser::ast::BinaryOp::Plus
            | prefsql_parser::ast::BinaryOp::Minus
            | prefsql_parser::ast::BinaryOp::Mul
            | prefsql_parser::ast::BinaryOp::Div => {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            _ => DataType::Bool,
        },
        Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Like { .. } => DataType::Bool,
        Expr::Case {
            branches,
            else_result,
            ..
        } => branches
            .first()
            .map(|(_, t)| infer_type(t, schema))
            .or_else(|| else_result.as_ref().map(|e| infer_type(e, schema)))
            .unwrap_or(DataType::Str),
        Expr::Function { name, args } => match name.as_str() {
            "count" | "length" => DataType::Int,
            "avg" => DataType::Float,
            "abs" | "sum" | "min" | "max" | "round" | "floor" | "ceil" | "least" | "greatest"
            | "coalesce" => args
                .first()
                .map(|a| infer_type(a, schema))
                .unwrap_or(DataType::Float),
            "lower" | "upper" => DataType::Str,
            _ => DataType::Str,
        },
        Expr::ScalarSubquery(_) => DataType::Str,
        Expr::Wildcard => DataType::Str,
    }
}
