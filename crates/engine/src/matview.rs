//! Materialized preference views: DDL, REFRESH and the DML maintenance
//! hooks.
//!
//! A `CREATE MATERIALIZED PREFERENCE VIEW` runs its defining BMO query
//! once and stores per-base-row state ([`MatViewEntry`]) in the catalog.
//! Every DML statement against the base table then calls one of the
//! `after_*` hooks here — still under the statement's catalog write lock,
//! so readers never observe a view out of sync with its table. The hooks
//! translate the row delta into the incremental skyline algebra of
//! `prefsql_pref::incremental`, which maintains the stored result without
//! recomputation (per-winner domination counts make a DELETE of a winner
//! promote exactly the rows it exclusively dominated).
//!
//! Maintenance never fails the triggering DML: any error (dropped
//! columns, arithmetic on changed data, ...) marks the view *stale*
//! instead. Stale views refuse reads until `REFRESH MATERIALIZED
//! PREFERENCE VIEW` rebuilds them from scratch.

use crate::eval::{eval, truth, Frame};
use crate::exec::ExecCtx;
use prefsql_parser::ast::{Expr, PrefExpr, Query, SelectItem, Statement, TableRef};
use prefsql_parser::parse_statement;
use prefsql_rewrite::{compile_preference, CompiledPreference};
use prefsql_storage::{Catalog, MatViewDef, MatViewEntry, Table};
use prefsql_types::{Error, Result, Schema, Tuple};

/// A view definition re-parsed from its stored SQL: everything a
/// maintenance pass needs that is plain data (usable across the
/// shared-borrow / mutable-borrow phases of a hook).
pub(crate) struct ViewSpec {
    /// The defining query (validated at CREATE time).
    pub query: Query,
    /// The compiled preference plus its base expressions.
    pub compiled: CompiledPreference,
    /// Qualifier the base table's columns are exposed under (FROM alias
    /// or the table name).
    pub qual: String,
}

/// Parse and compile a stored view definition. The SQL was validated at
/// CREATE time, so failures here mean the environment changed under the
/// view — callers mark it stale.
pub(crate) fn view_spec(sql: &str) -> Result<ViewSpec> {
    let query = match parse_statement(sql)? {
        Statement::Select(q) => *q,
        other => {
            return Err(Error::Catalog(format!(
                "materialized view definition is not a query: {other}"
            )))
        }
    };
    let pref = query.preferring.clone().ok_or_else(|| {
        Error::Catalog("materialized view definition lost its PREFERRING clause".into())
    })?;
    let compiled = compile_preference(&pref)?;
    let qual = match &query.from[..] {
        [TableRef::Named { name, alias }] => alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
        _ => {
            return Err(Error::Catalog(
                "materialized view definition lost its single base table".into(),
            ))
        }
    };
    Ok(ViewSpec {
        query,
        compiled,
        qual,
    })
}

/// True if `expr` contains a sub-query anywhere.
fn has_subquery(expr: &Expr) -> bool {
    matches!(
        expr,
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_)
    ) || expr.children().iter().any(|c| has_subquery(c))
}

/// True if `expr` calls a quality function (`TOP`/`LEVEL`/`DISTANCE`).
/// Quality functions need the optima over *all* candidates, which the
/// stored winner set cannot answer, so view definitions reject them.
fn uses_quality(expr: &Expr) -> bool {
    if let Expr::Function { name, .. } = expr {
        if matches!(name.as_str(), "top" | "level" | "distance") {
            return true;
        }
    }
    expr.children().iter().any(|c| uses_quality(c))
}

/// True if the preference term contains an unresolved named preference.
fn has_named(pref: &PrefExpr) -> bool {
    match pref {
        PrefExpr::Named(_) => true,
        PrefExpr::Pareto(parts) | PrefExpr::Prioritized(parts) => parts.iter().any(has_named),
        _ => false,
    }
}

/// Validate a `CREATE MATERIALIZED PREFERENCE VIEW` defining query and
/// return `(base_table, qualifier)`. The restrictions keep the stored
/// result maintainable: a single named base table, a PREFERRING clause,
/// an optional WHERE and a plain projection — every construct whose
/// result could depend on more than the current winner set is rejected.
pub(crate) fn validate_definition(query: &Query) -> Result<(String, String)> {
    let unsupported = |what: &str| -> Error {
        Error::Unsupported(format!(
            "CREATE MATERIALIZED PREFERENCE VIEW does not support {what}"
        ))
    };
    let (base, qual) = match &query.from[..] {
        [TableRef::Named { name, alias }] => (
            name.to_ascii_lowercase(),
            alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
        ),
        _ => {
            return Err(unsupported(
                "anything but a single named base table in FROM",
            ))
        }
    };
    let pref = query
        .preferring
        .as_ref()
        .ok_or_else(|| unsupported("definitions without a PREFERRING clause"))?;
    if has_named(pref) {
        return Err(Error::Plan(
            "named preferences must be resolved before CREATE MATERIALIZED \
             PREFERENCE VIEW reaches the engine"
                .into(),
        ));
    }
    if !query.grouping.is_empty() {
        return Err(unsupported("GROUPING"));
    }
    if query.but_only.is_some() {
        return Err(unsupported("BUT ONLY"));
    }
    if !query.group_by.is_empty() || query.having.is_some() {
        return Err(unsupported("GROUP BY/HAVING"));
    }
    if !query.order_by.is_empty() {
        return Err(unsupported("ORDER BY"));
    }
    if query.limit.is_some() {
        return Err(unsupported("LIMIT"));
    }
    if query.distinct {
        return Err(unsupported("DISTINCT"));
    }
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            if expr.contains_aggregate() {
                return Err(unsupported("aggregates in the select list"));
            }
            if uses_quality(expr) {
                return Err(unsupported(
                    "quality functions (TOP/LEVEL/DISTANCE) in the select list",
                ));
            }
            if has_subquery(expr) {
                return Err(unsupported("sub-queries in the select list"));
            }
        }
    }
    if let Some(w) = &query.where_clause {
        if has_subquery(w) {
            return Err(unsupported("sub-queries in WHERE"));
        }
        if uses_quality(w) {
            return Err(unsupported("quality functions in WHERE"));
        }
    }
    Ok((base, qual))
}

/// The schema base-table rows are evaluated under: the table's columns
/// exposed through the view's FROM qualifier (same idiom as UPDATE/DELETE
/// expression evaluation).
fn eval_schema(table: &Table, qual: &str) -> Schema {
    table.schema().without_qualifiers().with_qualifier(qual)
}

/// Compute the view entry for one base-table row: evaluate the WHERE
/// clause (three-valued: only exactly-TRUE qualifies) and the base
/// preference expressions into the slot vector. Winner/dominator fields
/// start cold; the caller integrates the entry.
fn entry_for(
    ctx: &ExecCtx<'_>,
    spec: &ViewSpec,
    schema: &Schema,
    row: &Tuple,
) -> Result<MatViewEntry> {
    let frames = [Frame { schema, tuple: row }];
    let qualifies = match &spec.query.where_clause {
        None => true,
        Some(pred) => truth(&eval(pred, &frames, ctx)?) == Some(true),
    };
    let slots = spec
        .compiled
        .base_exprs
        .iter()
        .map(|e| eval(e, &frames, ctx))
        .collect::<Result<Vec<_>>>()?;
    Ok(MatViewEntry {
        output: row.clone(),
        slots,
        qualifies,
        winner: false,
        dominators: 0,
    })
}

/// Build a fresh [`MatViewDef`] for `CREATE MATERIALIZED PREFERENCE
/// VIEW`: validate the defining query, evaluate every base-table row and
/// run the full skyline rebuild.
pub(crate) fn build_def(
    cat: &Catalog,
    name: &str,
    query: &Query,
    use_indexes: bool,
) -> Result<MatViewDef> {
    let (base, _) = validate_definition(query)?;
    let sql = query.to_string();
    let spec = view_spec(&sql)?;
    let table = cat.table(&base)?;
    let schema = eval_schema(table, &spec.qual);
    // Resolve the select list now so a broken projection fails CREATE,
    // not the first read.
    crate::plan::projection_plan(&spec.query, &schema)?;
    let ctx = ExecCtx::over(cat, use_indexes);
    let mut entries = Vec::with_capacity(table.len());
    table.for_each_row(|_, row| {
        entries.push(entry_for(&ctx, &spec, &schema, row)?);
        Ok(())
    })?;
    prefsql_pref::incremental::rebuild(&mut entries, &spec.compiled.preference);
    Ok(MatViewDef {
        name: name.to_string(),
        sql,
        base_table: base,
        schema,
        entries,
        stale: false,
    })
}

/// `REFRESH MATERIALIZED PREFERENCE VIEW`: rebuild the stored result from
/// the current base table and clear the stale flag. Returns the number of
/// rows the view now serves.
///
/// Any rebuild failure — the base table gone, its schema changed under
/// the view (DROP + CREATE with a different shape), an evaluation error —
/// marks the view *stale* and returns a diagnostic: the one thing REFRESH
/// must never do is leave a non-stale view serving rows that no longer
/// match the definition.
pub(crate) fn refresh(cat: &mut Catalog, name: &str, use_indexes: bool) -> Result<usize> {
    let (sql, base) = {
        let def = cat.matview(name).ok_or_else(|| {
            Error::Catalog(format!(
                "unknown materialized preference view '{}'",
                name.to_ascii_lowercase()
            ))
        })?;
        (def.sql.clone(), def.base_table.clone())
    };
    match rebuild_from_base(cat, &sql, &base, use_indexes) {
        Ok((schema, entries)) => {
            let def = cat
                .matview_mut(name)
                .expect("view existed above and the catalog is write-locked");
            def.schema = schema;
            def.entries = entries;
            def.stale = false;
            Ok(def.winner_count())
        }
        Err(e) => {
            if let Some(def) = cat.matview_mut(name) {
                def.stale = true;
            }
            Err(Error::Catalog(format!(
                "cannot refresh materialized preference view '{name}': {e} \
                 (the view stays stale)"
            )))
        }
    }
}

/// The rebuild phase of [`refresh`]: re-validate the definition against
/// the *current* base table and recompute every entry.
fn rebuild_from_base(
    cat: &Catalog,
    sql: &str,
    base: &str,
    use_indexes: bool,
) -> Result<(Schema, Vec<MatViewEntry>)> {
    let spec = view_spec(sql)?;
    let table = cat.table(base)?;
    let schema = eval_schema(table, &spec.qual);
    // Re-resolve the select list against the table as it exists *now* —
    // the validation CREATE ran binds to the schema of that moment, and a
    // DROP/CREATE cycle may have replaced the table with a different
    // shape whose rows must not be served through the old projection.
    // `projection_plan` resolves wildcards eagerly but computed columns
    // lazily, so every referenced column is additionally checked here —
    // an empty base table must not let a dangling reference slide.
    crate::plan::projection_plan(&spec.query, &schema)?;
    for item in &spec.query.select {
        if let SelectItem::Expr { expr, .. } = item {
            check_columns(expr, &schema)?;
        }
    }
    if let Some(w) = &spec.query.where_clause {
        check_columns(w, &schema)?;
    }
    for e in &spec.compiled.base_exprs {
        check_columns(e, &schema)?;
    }
    let ctx = ExecCtx::over(cat, use_indexes);
    let mut entries = Vec::with_capacity(table.len());
    table.for_each_row(|_, row| {
        entries.push(entry_for(&ctx, &spec, &schema, row)?);
        Ok(())
    })?;
    prefsql_pref::incremental::rebuild(&mut entries, &spec.compiled.preference);
    Ok((schema, entries))
}

/// Every column reference in `expr` must resolve against `schema`
/// (subqueries are skipped — they bind to their own FROM clause and are
/// caught by per-row evaluation).
fn check_columns(expr: &Expr, schema: &Schema) -> Result<()> {
    if let Expr::Column { qualifier, name } = expr {
        schema.resolve(qualifier.as_deref(), name)?;
    }
    for child in expr.children() {
        check_columns(child, schema)?;
    }
    Ok(())
}

/// The views on `table` a DML hook must maintain: registered, not stale.
fn live_views_on(cat: &Catalog, table: &str) -> Vec<String> {
    cat.matviews_on(table)
        .into_iter()
        .filter(|n| cat.matview(n).is_some_and(|v| !v.stale))
        .collect()
}

/// Maintain every live view on `table` after an INSERT appended the rows
/// `from_rid..len`. Returns `(views maintained, dominance comparisons)`;
/// a failing view is marked stale instead of failing the INSERT.
pub(crate) fn after_insert(
    cat: &mut Catalog,
    table: &str,
    from_rid: usize,
    use_indexes: bool,
) -> (u64, u64) {
    maintain(
        cat,
        table,
        use_indexes,
        |cat, spec, use_indexes| {
            let t = cat.table(table)?;
            let schema = eval_schema(t, &spec.qual);
            let ctx = ExecCtx::over(cat, use_indexes);
            let mut out = Vec::new();
            t.for_each_row_from(from_rid.min(t.len()), |_, row| {
                out.push(entry_for(&ctx, spec, &schema, row)?);
                Ok(())
            })?;
            Ok(out)
        },
        |def, spec, new_entries| {
            for entry in new_entries {
                prefsql_pref::incremental::apply_insert(
                    &mut def.entries,
                    entry,
                    &spec.compiled.preference,
                );
            }
        },
    )
}

/// Maintain every live view on `table` after `doomed` row ids were
/// deleted (ids as of *before* the compaction — the same list handed to
/// [`Table::delete_rows`]). Returns `(views maintained, dominance
/// comparisons)`.
pub(crate) fn after_delete(
    cat: &mut Catalog,
    table: &str,
    doomed: &[usize],
    use_indexes: bool,
) -> (u64, u64) {
    if doomed.is_empty() {
        return (0, 0);
    }
    maintain(
        cat,
        table,
        use_indexes,
        |_, _, _| Ok(()),
        |def, spec, ()| {
            prefsql_pref::incremental::apply_delete(
                &mut def.entries,
                doomed,
                &spec.compiled.preference,
            );
        },
    )
}

/// Maintain every live view on `table` after an UPDATE replaced the rows
/// at `ids` in place. Returns `(views maintained, dominance
/// comparisons)`.
pub(crate) fn after_update(
    cat: &mut Catalog,
    table: &str,
    ids: &[usize],
    use_indexes: bool,
) -> (u64, u64) {
    if ids.is_empty() {
        return (0, 0);
    }
    maintain(
        cat,
        table,
        use_indexes,
        |cat, spec, use_indexes| {
            let t = cat.table(table)?;
            let schema = eval_schema(t, &spec.qual);
            let ctx = ExecCtx::over(cat, use_indexes);
            ids.iter()
                .map(|&rid| entry_for(&ctx, spec, &schema, &t.fetch_row(rid)?))
                .collect::<Result<Vec<_>>>()
        },
        |def, spec, new_entries| {
            for (&rid, entry) in ids.iter().zip(new_entries) {
                prefsql_pref::incremental::apply_replace(
                    &mut def.entries,
                    rid,
                    entry,
                    &spec.compiled.preference,
                );
            }
        },
    )
}

/// Mark every view on `table` stale (the base table was dropped).
pub(crate) fn on_drop_table(cat: &mut Catalog, table: &str) {
    for name in cat.matviews_on(table) {
        if let Some(def) = cat.matview_mut(&name) {
            def.stale = true;
        }
    }
}

/// The shared two-phase shape of every DML hook: phase 1 computes the
/// delta against a shared catalog borrow (expression evaluation needs
/// the whole catalog), phase 2 applies it to the view through the
/// mutable borrow. Any phase-1 error marks the view stale; the DML
/// statement itself never fails on view maintenance. Returns `(views
/// maintained, dominance comparisons)` — the spec's freshly compiled
/// preference counts every [`better`] call the incremental algebra
/// makes, which the caller charges to the triggering DML statement.
///
/// [`better`]: prefsql_pref::compose::Preference::better
fn maintain<D>(
    cat: &mut Catalog,
    table: &str,
    use_indexes: bool,
    prepare: impl Fn(&Catalog, &ViewSpec, bool) -> Result<D>,
    apply: impl Fn(&mut MatViewDef, &ViewSpec, D),
) -> (u64, u64) {
    let mut maintained = 0;
    let mut comparisons = 0;
    for name in live_views_on(cat, table) {
        let sql = match cat.matview(&name) {
            Some(def) => def.sql.clone(),
            None => continue,
        };
        let delta = view_spec(&sql).and_then(|spec| {
            let d = prepare(cat, &spec, use_indexes)?;
            Ok((spec, d))
        });
        let Some(def) = cat.matview_mut(&name) else {
            continue;
        };
        match delta {
            Ok((spec, d)) => {
                apply(def, &spec, d);
                comparisons += spec.compiled.preference.comparisons();
                maintained += 1;
            }
            Err(_) => def.stale = true,
        }
    }
    (maintained, comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => *q,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn validate_accepts_the_supported_shape() {
        let (base, qual) = validate_definition(&q(
            "SELECT id, price FROM cars c WHERE price > 0 PREFERRING LOWEST(price)",
        ))
        .unwrap();
        assert_eq!(base, "cars");
        assert_eq!(qual, "c");
    }

    #[test]
    fn validate_rejects_unmaintainable_constructs() {
        for sql in [
            "SELECT * FROM a, b PREFERRING LOWEST(x)",
            "SELECT * FROM cars",
            "SELECT * FROM cars PREFERRING LOWEST(price) GROUPING color",
            "SELECT * FROM cars PREFERRING LOWEST(price) BUT ONLY level(price) <= 1",
            "SELECT color, COUNT(*) FROM cars PREFERRING LOWEST(color) GROUP BY color",
            "SELECT * FROM cars PREFERRING LOWEST(price) ORDER BY price",
            "SELECT * FROM cars PREFERRING LOWEST(price) LIMIT 3",
            "SELECT DISTINCT make FROM cars PREFERRING LOWEST(price)",
            "SELECT level(price) FROM cars PREFERRING LOWEST(price)",
            "SELECT * FROM cars WHERE EXISTS (SELECT 1 FROM cars) PREFERRING LOWEST(price)",
            "SELECT (SELECT 1) FROM cars PREFERRING LOWEST(price)",
        ] {
            assert!(validate_definition(&q(sql)).is_err(), "accepted: {sql}");
        }
    }

    #[test]
    fn matview_lifecycle_tracks_dml() {
        use crate::exec::{Engine, ExecOutcome};
        let mut e = Engine::new();
        e.execute_sql("CREATE TABLE cars (id INTEGER, price INTEGER, mileage INTEGER)")
            .unwrap();
        e.execute_sql("INSERT INTO cars VALUES (1, 30, 50), (2, 20, 70), (3, 40, 40)")
            .unwrap();
        e.execute_sql(
            "CREATE MATERIALIZED PREFERENCE VIEW best AS \
             SELECT id, price FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)",
        )
        .unwrap();
        let winners = |e: &mut Engine| -> Vec<i64> {
            e.execute_sql("SELECT id FROM best")
                .unwrap()
                .expect_rows()
                .rows
                .iter()
                .map(|r| match &r[0] {
                    prefsql_types::Value::Int(i) => *i,
                    other => panic!("unexpected {other:?}"),
                })
                .collect()
        };
        // (1,30,50), (2,20,70), (3,40,40) are pairwise incomparable.
        assert_eq!(winners(&mut e), vec![1, 2, 3]);
        // A dominating row evicts 1 and 3; maintenance is incremental.
        e.execute_sql("INSERT INTO cars VALUES (4, 25, 35)")
            .unwrap();
        assert_eq!(winners(&mut e), vec![2, 4]);
        assert_eq!(e.take_view_maintenance(), 1);
        // Deleting the new winner promotes exactly what it dominated.
        e.execute_sql("DELETE FROM cars WHERE id = 4").unwrap();
        assert_eq!(winners(&mut e), vec![1, 2, 3]);
        // UPDATE moves a row across the skyline boundary.
        e.execute_sql("UPDATE cars SET price = 10, mileage = 10 WHERE id = 3")
            .unwrap();
        assert_eq!(winners(&mut e), vec![3]);
        // EXPLAIN shows the serving scan, not a base-table plan.
        let out = e.execute_sql("EXPLAIN SELECT id FROM best").unwrap();
        let ExecOutcome::Explain(text) = out else {
            panic!("expected EXPLAIN output")
        };
        assert!(text.contains("Materialized view scan: best"), "{text}");
        // Dropping the base table leaves the view stale; reads error
        // until REFRESH (which then fails on the missing table).
        e.execute_sql("DROP TABLE cars").unwrap();
        let err = e.execute_sql("SELECT id FROM best").unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
        assert!(e
            .execute_sql("REFRESH MATERIALIZED PREFERENCE VIEW best")
            .is_err());
        e.execute_sql("DROP MATERIALIZED PREFERENCE VIEW best")
            .unwrap();
    }

    #[test]
    fn refresh_recovers_a_stale_view() {
        use crate::exec::Engine;
        let mut e = Engine::new();
        e.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
        e.execute_sql("INSERT INTO t VALUES (2), (1), (3)").unwrap();
        e.execute_sql(
            "CREATE MATERIALIZED PREFERENCE VIEW low AS SELECT x FROM t PREFERRING LOWEST(x)",
        )
        .unwrap();
        {
            let mut cat = e.catalog_mut();
            cat.matview_mut("low").unwrap().stale = true;
        }
        assert!(e.execute_sql("SELECT * FROM low").is_err());
        e.execute_sql("REFRESH MATERIALIZED PREFERENCE VIEW low")
            .unwrap();
        let rel = e.execute_sql("SELECT x FROM low").unwrap().expect_rows();
        assert_eq!(rel.rows, vec![prefsql_types::tuple![1]]);
    }

    #[test]
    fn subquery_and_quality_detection_walks_nested_expressions() {
        let query = q("SELECT 1 + (SELECT 2) FROM t PREFERRING LOWEST(x)");
        let SelectItem::Expr { expr, .. } = &query.select[0] else {
            panic!()
        };
        assert!(has_subquery(expr));
        let query = q("SELECT abs(level(x)) FROM t PREFERRING LOWEST(x)");
        let SelectItem::Expr { expr, .. } = &query.select[0] else {
            panic!()
        };
        assert!(uses_quality(expr));
    }
}
