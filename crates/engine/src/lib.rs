//! # prefsql-engine
//!
//! A SQL92-entry-level execution engine over `prefsql-storage` — the *host
//! DBMS* of the paper's architecture (§3.1). The Preference SQL rewriter
//! emits plain SQL; this engine executes it, exactly as Informix/Oracle/DB2
//! did for the original system.
//!
//! Supported: SELECT (projection, `*`/`t.*`, expressions, aliases,
//! DISTINCT), FROM (tables, views, derived tables, INNER/CROSS JOIN),
//! WHERE with three-valued logic, correlated and uncorrelated sub-queries
//! (`EXISTS`, `IN`, scalar), `CASE`, `LIKE`, arithmetic, `ABS` and friends,
//! GROUP BY / HAVING with `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, ORDER BY, LIMIT,
//! INSERT (VALUES and SELECT), CREATE/DROP TABLE/VIEW/INDEX, and EXPLAIN.
//!
//! Not supported (by design — the engine is the *target* of the rewrite):
//! the `PREFERRING`/`GROUPING`/`BUT ONLY` clauses and the quality
//! functions. Feeding a preference query to the engine is an error; the
//! `prefsql` facade crate rewrites such queries first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod join;
mod matview;
pub mod metrics;
pub mod physical;
pub mod plan;

pub use exec::{BackendKind, Engine, EngineCore, ExecCtx, ExecOutcome, ExecStats, Relation};
pub use metrics::{MetricsRegistry, NodeMetrics, Profiler};
pub use physical::{BoxOperator, Operator};
pub use plan::{PlanNode, QueryPlan};
