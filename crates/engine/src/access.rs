//! Index access-path selection.
//!
//! "Having the right indices available current SQL optimizers can
//! efficiently process this SQL query" (paper §3.2) — this module is the
//! engine's version of that: given a single-table scan with a WHERE
//! predicate, find an equality or range conjunct that an existing index can
//! answer, and return the candidate row ids. The full predicate is always
//! re-evaluated on the candidates, so index selection is purely an
//! optimization and never changes results. The A2 ablation benchmark flips
//! [`crate::Engine::set_use_indexes`] to measure the difference.

use prefsql_parser::ast::{BinaryOp, Expr};
use prefsql_storage::Table;
use prefsql_types::Value;

/// A sargable conjunct found in a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Sarg {
    /// `col = literal`
    Eq {
        /// Column position in the table schema.
        col: usize,
        /// The literal.
        value: Value,
    },
    /// `col >= low AND col <= high` (either bound may be open).
    Range {
        /// Column position in the table schema.
        col: usize,
        /// Inclusive lower bound.
        low: Option<Value>,
        /// Inclusive upper bound.
        high: Option<Value>,
    },
}

/// Split a predicate into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// Try to interpret one conjunct as a sargable predicate over `table`'s
/// schema. Only unqualified or correctly-qualified plain column references
/// compared against literals qualify.
fn sarg_of(conjunct: &Expr, table: &Table) -> Option<Sarg> {
    let resolve = |e: &Expr| -> Option<usize> {
        match e {
            Expr::Column { qualifier, name } => {
                table.schema().resolve(qualifier.as_deref(), name).ok()
            }
            _ => None,
        }
    };
    let literal = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        }
    };
    match conjunct {
        Expr::Binary { left, op, right } => {
            // Normalize to column-op-literal.
            let (col, op, val) = if let (Some(c), Some(v)) = (resolve(left), literal(right)) {
                (c, *op, v)
            } else if let (Some(c), Some(v)) = (resolve(right), literal(left)) {
                (c, flip(*op)?, v)
            } else {
                return None;
            };
            match op {
                BinaryOp::Eq => Some(Sarg::Eq { col, value: val }),
                BinaryOp::GtEq | BinaryOp::Gt => Some(Sarg::Range {
                    col,
                    low: Some(val),
                    high: None,
                }),
                BinaryOp::LtEq | BinaryOp::Lt => Some(Sarg::Range {
                    col,
                    low: None,
                    high: Some(val),
                }),
                _ => None,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let col = resolve(expr)?;
            Some(Sarg::Range {
                col,
                low: Some(literal(low)?),
                high: Some(literal(high)?),
            })
        }
        _ => None,
    }
}

fn flip(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        _ => return None,
    })
}

/// The access path chosen for a table scan.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full sequential scan.
    SeqScan,
    /// Candidate row ids produced by an index probe; the description names
    /// the probe for EXPLAIN output.
    Index {
        /// Row ids to re-check against the full predicate.
        row_ids: Vec<usize>,
        /// Human-readable probe description.
        describe: String,
    },
}

/// Choose an access path for `table` under `predicate`. Strict `>`/`<`
/// bounds are widened to inclusive index ranges; the residual predicate
/// re-check (always applied by the caller) restores exactness. `None`
/// predicate means a full scan.
pub fn choose_access_path(table: &Table, predicate: Option<&Expr>) -> AccessPath {
    let Some(pred) = predicate else {
        return AccessPath::SeqScan;
    };
    let sargs: Vec<Sarg> = conjuncts(pred)
        .iter()
        .filter_map(|c| sarg_of(c, table))
        .collect();
    // Prefer equality probes (hash, then B-tree), then ranges.
    for s in &sargs {
        if let Sarg::Eq { col, value } = s {
            if let Some(idx) = table.find_hash_index(&[*col]) {
                return AccessPath::Index {
                    row_ids: idx.lookup(std::slice::from_ref(value)).to_vec(),
                    describe: format!(
                        "hash index on {} = {value}",
                        table.schema().column(*col).name
                    ),
                };
            }
            if let Some(idx) = table.find_btree_index(*col) {
                return AccessPath::Index {
                    row_ids: idx.range(Some(value), Some(value)),
                    describe: format!(
                        "btree index on {} = {value}",
                        table.schema().column(*col).name
                    ),
                };
            }
        }
    }
    // Merge range sargs per column so `x >= a AND x <= b` uses one probe.
    for s in &sargs {
        if let Sarg::Range { col, low, high } = s {
            if let Some(idx) = table.find_btree_index(*col) {
                let (mut lo, mut hi) = (low.clone(), high.clone());
                for other in &sargs {
                    if let Sarg::Range {
                        col: c2,
                        low: l2,
                        high: h2,
                    } = other
                    {
                        if c2 == col {
                            if lo.is_none() {
                                lo = l2.clone();
                            }
                            if hi.is_none() {
                                hi = h2.clone();
                            }
                        }
                    }
                }
                return AccessPath::Index {
                    row_ids: idx.range(lo.as_ref(), hi.as_ref()),
                    describe: format!(
                        "btree index on {} range [{}, {}]",
                        table.schema().column(*col).name,
                        lo.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
                        hi.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
                    ),
                };
            }
        }
    }
    AccessPath::SeqScan
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::parse_expression;
    use prefsql_storage::IndexKind;
    use prefsql_types::{tuple, Column, DataType, Schema};

    fn table_with_indexes() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("make", DataType::Str),
            Column::new("price", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new("cars", schema);
        for (i, (m, p)) in [("audi", 40), ("bmw", 35), ("audi", 20), ("vw", 25)]
            .iter()
            .enumerate()
        {
            t.insert(tuple![i as i64, *m, *p]).unwrap();
        }
        t.create_index("i_make", &["make"], IndexKind::Hash)
            .unwrap();
        t.create_index("i_price", &["price"], IndexKind::BTree)
            .unwrap();
        t
    }

    fn path(t: &Table, pred: &str) -> AccessPath {
        let e = parse_expression(pred).unwrap();
        choose_access_path(t, Some(&e))
    }

    #[test]
    fn equality_uses_hash_index() {
        let t = table_with_indexes();
        match path(&t, "make = 'audi'") {
            AccessPath::Index { row_ids, describe } => {
                assert_eq!(row_ids, vec![0, 2]);
                assert!(describe.contains("hash index"));
            }
            other => panic!("expected index path, got {other:?}"),
        }
    }

    #[test]
    fn flipped_equality_also_matches() {
        let t = table_with_indexes();
        assert!(matches!(path(&t, "'bmw' = make"), AccessPath::Index { .. }));
    }

    #[test]
    fn range_uses_btree() {
        let t = table_with_indexes();
        match path(&t, "price >= 25 AND price <= 35") {
            AccessPath::Index { row_ids, .. } => {
                // candidates with price in [25, 35]: rows 1 (35) and 3 (25)
                let mut r = row_ids;
                r.sort_unstable();
                assert_eq!(r, vec![1, 3]);
            }
            other => panic!("expected index path, got {other:?}"),
        }
    }

    #[test]
    fn between_is_sargable() {
        let t = table_with_indexes();
        assert!(matches!(
            path(&t, "price BETWEEN 25 AND 35"),
            AccessPath::Index { .. }
        ));
    }

    #[test]
    fn equality_beats_range() {
        let t = table_with_indexes();
        match path(&t, "price > 10 AND make = 'vw'") {
            AccessPath::Index { describe, .. } => assert!(describe.contains("hash")),
            other => panic!("expected index path, got {other:?}"),
        }
    }

    #[test]
    fn unindexed_or_complex_predicates_seq_scan() {
        let t = table_with_indexes();
        assert_eq!(path(&t, "id = 3"), AccessPath::SeqScan); // no index on id
        assert_eq!(path(&t, "make = 'a' OR make = 'b'"), AccessPath::SeqScan);
        assert_eq!(path(&t, "make = price"), AccessPath::SeqScan); // not a literal
        assert_eq!(path(&t, "LENGTH(make) = 3"), AccessPath::SeqScan);
        assert_eq!(choose_access_path(&t, None), AccessPath::SeqScan);
    }

    #[test]
    fn conjunct_splitting() {
        let e = parse_expression("a = 1 AND (b = 2 AND c = 3) AND d > 4").unwrap();
        assert_eq!(conjuncts(&e).len(), 4);
        let single = parse_expression("a = 1 OR b = 2").unwrap();
        assert_eq!(conjuncts(&single).len(), 1);
    }
}
