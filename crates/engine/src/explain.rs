//! `EXPLAIN`: a textual rendering of how the engine will execute a
//! statement — FROM sources with their access paths, predicates, and the
//! post-processing steps. The Preference SQL facade additionally prefixes
//! the rewritten SQL, so `EXPLAIN SELECT ... PREFERRING ...` shows both the
//! rewrite and the host plan.

use crate::access::{choose_access_path, AccessPath};
use crate::Engine;
use prefsql_parser::ast::{Query, SelectItem, Statement, TableRef};
use prefsql_types::{Error, Result};
use std::fmt::Write as _;

/// Render an execution plan for `stmt`.
pub fn explain(engine: &Engine, stmt: &Statement) -> Result<String> {
    match stmt {
        Statement::Select(q) => {
            let mut out = String::new();
            explain_query(engine, q, 0, &mut out)?;
            Ok(out)
        }
        Statement::Insert { table, source, .. } => {
            let mut out = format!("Insert into {table}\n");
            if let prefsql_parser::ast::InsertSource::Query(q) = source {
                explain_query(engine, q, 1, &mut out)?;
            } else {
                out.push_str("  Values\n");
            }
            Ok(out)
        }
        Statement::Explain(inner) => explain(engine, inner),
        other => Ok(format!("Utility statement: {other}\n")),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn explain_query(engine: &Engine, q: &Query, depth: usize, out: &mut String) -> Result<()> {
    indent(out, depth);
    let agg = !q.group_by.is_empty()
        || q.select.iter().any(|s| match s {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });
    let mut steps: Vec<String> = Vec::new();
    if q.distinct {
        steps.push("distinct".into());
    }
    if agg {
        steps.push(format!("aggregate({} keys)", q.group_by.len()));
    }
    if !q.order_by.is_empty() {
        steps.push(format!("sort({} keys)", q.order_by.len()));
    }
    if let Some(n) = q.limit {
        steps.push(format!("limit {n}"));
    }
    let steps = if steps.is_empty() {
        String::new()
    } else {
        format!(" [{}]", steps.join(", "))
    };
    writeln!(out, "Select{steps}").map_err(|e| Error::Exec(e.to_string()))?;
    if let Some(w) = &q.where_clause {
        indent(out, depth + 1);
        writeln!(out, "Filter: {w}").map_err(|e| Error::Exec(e.to_string()))?;
    }
    for item in &q.from {
        explain_table_ref(engine, item, q, depth + 1, out)?;
    }
    Ok(())
}

fn explain_table_ref(
    engine: &Engine,
    item: &TableRef,
    q: &Query,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    match item {
        TableRef::Named { name, alias } => {
            indent(out, depth);
            let shown = match alias {
                Some(a) => format!("{name} AS {a}"),
                None => name.clone(),
            };
            if engine.catalog().view(name).is_some() {
                writeln!(out, "View expansion: {shown}").map_err(|e| Error::Exec(e.to_string()))?;
            } else {
                let table = engine.catalog().table(name)?;
                let single = q.from.len() == 1 && matches!(&q.from[0], TableRef::Named { .. });
                let path = if engine.use_indexes() && single {
                    choose_access_path(table, q.where_clause.as_ref())
                } else {
                    AccessPath::SeqScan
                };
                match path {
                    AccessPath::SeqScan => {
                        writeln!(out, "Seq scan: {shown} ({} rows)", table.len())
                            .map_err(|e| Error::Exec(e.to_string()))?
                    }
                    AccessPath::Index { describe, row_ids } => writeln!(
                        out,
                        "Index probe: {shown} via {describe} ({} candidates)",
                        row_ids.len()
                    )
                    .map_err(|e| Error::Exec(e.to_string()))?,
                }
            }
        }
        TableRef::Derived { query, alias } => {
            indent(out, depth);
            writeln!(out, "Derived table {alias}:").map_err(|e| Error::Exec(e.to_string()))?;
            explain_query(engine, query, depth + 1, out)?;
        }
        TableRef::Join { left, right, on } => {
            indent(out, depth);
            match on {
                Some(on) => writeln!(out, "Nested-loop join on {on}")
                    .map_err(|e| Error::Exec(e.to_string()))?,
                None => writeln!(out, "Cross join").map_err(|e| Error::Exec(e.to_string()))?,
            }
            explain_table_ref(engine, left, q, depth + 1, out)?;
            explain_table_ref(engine, right, q, depth + 1, out)?;
        }
    }
    Ok(())
}
