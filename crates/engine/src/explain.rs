//! `EXPLAIN`: a textual rendering of the plan the executor runs.
//!
//! The tree printed here is the very [`PlanNode`] object produced by
//! [`crate::plan::plan_query`] and executed by [`crate::physical`] — there
//! is no second access-path derivation, so EXPLAIN can never drift from
//! execution. The Preference SQL facade additionally prefixes the
//! rewritten SQL, so `EXPLAIN SELECT ... PREFERRING ...` shows both the
//! rewrite and the host plan. [`render_analyzed`] prints the same tree
//! annotated with a [`Profiler`]'s observed per-node metrics — what
//! `EXPLAIN ANALYZE` shows after actually executing the statement.

use crate::exec::ExecCtx;
use crate::metrics::Profiler;
use crate::plan::{PlanNode, Projection};
use prefsql_parser::ast::Statement;
use prefsql_types::Result;
use std::fmt::Write as _;

/// Render an execution plan for `stmt` inside one statement context.
pub fn explain(ctx: &ExecCtx<'_>, stmt: &Statement) -> Result<String> {
    match stmt {
        Statement::Select(q) => {
            let plan = ctx.plan_for(q)?;
            let mut out = String::new();
            render(plan.root(), 0, &mut out);
            Ok(out)
        }
        Statement::Insert { table, source, .. } => {
            let mut out = format!("Insert into {table}\n");
            if let prefsql_parser::ast::InsertSource::Query(q) = source {
                let plan = ctx.plan_for(q)?;
                render(plan.root(), 1, &mut out);
            } else {
                out.push_str("  Values\n");
            }
            Ok(out)
        }
        Statement::Explain { statement, .. } => explain(ctx, statement),
        other => Ok(format!("Utility statement: {other}\n")),
    }
}

/// Render a plan sub-tree into `out`, one node per line, children
/// indented below their parent. Public so the Preference SQL facade can
/// splice its own operators above an engine-planned source.
pub fn render(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    node_line(node, out);
    out.push('\n');
    for child in children(node) {
        render(child, depth + 1, out);
    }
}

/// Render a plan sub-tree annotated per node with the metrics `prof`
/// observed while the plan actually executed — the body of
/// `EXPLAIN ANALYZE`. A node without a profile entry never ran (a
/// short-circuited probe, the unpulled side of an empty join).
pub fn render_analyzed(node: &PlanNode, prof: &Profiler, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    node_line(node, out);
    match prof.node(node) {
        Some(m) => {
            let _ = write!(
                out,
                " (actual rows={} batches={} time={:.3}ms",
                m.rows,
                m.batches,
                m.total_ns() as f64 / 1e6
            );
            for (k, v) in &m.extras {
                let _ = write!(out, " {k}={v}");
            }
            out.push(')');
        }
        None => out.push_str(" (never executed)"),
    }
    out.push('\n');
    for child in children(node) {
        render_analyzed(child, prof, depth + 1, out);
    }
}

/// The direct children of a plan node, in render order.
fn children(node: &PlanNode) -> Vec<&PlanNode> {
    match node {
        PlanNode::Nothing { .. }
        | PlanNode::SeqScan { .. }
        | PlanNode::MatViewScan { .. }
        | PlanNode::IndexScan { .. } => Vec::new(),
        PlanNode::Materialize { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Distinct { input }
        | PlanNode::Limit { input, .. }
        | PlanNode::Aggregate { input, .. } => vec![input],
        PlanNode::NestedLoopJoin { left, right, .. } | PlanNode::HashJoin { left, right, .. } => {
            vec![left, right]
        }
    }
}

/// Append one node's description — no indentation, no newline — shared
/// by the plain and the analyzed rendering so they can never drift.
fn node_line(node: &PlanNode, out: &mut String) {
    match node {
        PlanNode::Nothing { .. } => {
            out.push_str("Result: one empty row");
        }
        PlanNode::SeqScan {
            table,
            qualifier,
            rows,
            backend,
            ..
        } => {
            let _ = write!(out, "Seq scan: {}({rows} rows)", shown(table, qualifier));
            // The default in-memory backend stays unmarked so existing
            // EXPLAIN output is byte-identical; paged scans are tagged.
            if *backend != "mem" {
                let _ = write!(out, " [backend={backend}]");
            }
        }
        PlanNode::MatViewScan { view, rows, .. } => {
            let _ = write!(out, "Materialized view scan: {view} ({rows} winners)");
        }
        PlanNode::IndexScan {
            table,
            qualifier,
            row_ids,
            describe,
            ..
        } => {
            let _ = write!(
                out,
                "Index probe: {}via {describe} ({} candidates)",
                shown(table, qualifier),
                row_ids.len()
            );
        }
        PlanNode::Materialize { label, .. } => {
            let _ = write!(out, "{label}");
        }
        PlanNode::NestedLoopJoin { on, .. } => match on {
            Some(cond) => {
                let _ = write!(out, "Nested-loop join on {cond}");
            }
            None => out.push_str("Cross join"),
        },
        PlanNode::HashJoin {
            keys,
            residual,
            build_left,
            window,
            ..
        } => {
            let shown: Vec<String> = keys.iter().map(|(l, r)| format!("{l} = {r}")).collect();
            let _ = write!(
                out,
                "join=hash keys=[{}] build={} window={}",
                shown.join(", "),
                if *build_left { "left" } else { "right" },
                fmt_window(*window)
            );
            if let Some(r) = residual {
                let _ = write!(out, " residual={r}");
            }
        }
        PlanNode::Filter { pred, .. } => {
            let _ = write!(out, "Filter: {pred}");
        }
        PlanNode::Project {
            projections,
            schema,
            ..
        } => {
            let cols: Vec<String> = schema
                .columns()
                .iter()
                .zip(projections)
                .map(|(c, p)| match p {
                    Projection::Passthrough(_) => c.qualified_name(),
                    Projection::Computed(e) => format!("{e}"),
                })
                .collect();
            let _ = write!(out, "Project: {}", cols.join(", "));
        }
        PlanNode::Sort { keys, .. } => {
            let _ = write!(out, "sort({} keys)", keys.len());
        }
        PlanNode::Distinct { .. } => {
            out.push_str("distinct");
        }
        PlanNode::Limit { label, .. } => {
            let _ = write!(out, "{label}");
        }
        PlanNode::Aggregate { spec, .. } => {
            let mut steps = format!("aggregate({} keys", spec.group_by.len());
            if spec.having.is_some() {
                steps.push_str(", having");
            }
            if !spec.order_by.is_empty() {
                let _ = write!(steps, ", sort({} keys)", spec.order_by.len());
            }
            steps.push(')');
            let _ = write!(out, "{steps}");
        }
    }
}

/// The hash join's window knob as EXPLAIN shows it: `off` when the
/// session has no budget, otherwise in the largest exact binary unit
/// (mirrors the session layer's byte formatting).
fn fmt_window(w: Option<usize>) -> String {
    match w {
        None => "off".to_string(),
        Some(b) if b > 0 && b % (1024 * 1024) == 0 => format!("{} MiB", b / (1024 * 1024)),
        Some(b) if b > 0 && b % 1024 == 0 => format!("{} KiB", b / 1024),
        Some(b) => format!("{b} B"),
    }
}

/// `table AS alias` when the exposed qualifier differs from the table
/// name, with a trailing space either way.
fn shown(table: &str, qualifier: &str) -> String {
    if qualifier == table.to_ascii_lowercase() {
        format!("{table} ")
    } else {
        format!("{table} AS {qualifier} ")
    }
}
