//! The scalar expression evaluator.
//!
//! Expressions are evaluated against an *environment*: a stack of
//! `(schema, tuple)` frames, innermost first, so correlated sub-queries can
//! see the columns of enclosing query blocks (the paper's rewritten
//! `NOT EXISTS` predicates reference `A1.*` from inside the `A2` block).
//!
//! Predicate truth follows SQL three-valued logic: `NULL` comparisons
//! produce `NULL`, `AND`/`OR`/`NOT` use Kleene logic, and a `WHERE` clause
//! keeps a row only when the predicate is exactly `TRUE`.

use prefsql_parser::ast::{BinaryOp, Expr, Query, UnaryOp};
use prefsql_types::{Error, Result, Schema, Tuple, Value};

/// One name-resolution frame: the schema and current tuple of a query block.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// The block's input schema.
    pub schema: &'a Schema,
    /// The current tuple.
    pub tuple: &'a Tuple,
}

/// Callback used to evaluate sub-queries; implemented by the executor.
pub trait SubqueryEval {
    /// Execute `query` with `frames` as the outer environment and return
    /// its rows.
    fn eval_subquery(&self, query: &Query, frames: &[Frame<'_>]) -> Result<Vec<Tuple>>;

    /// Does `query` return at least one row? Implementations may
    /// short-circuit after the first qualifying row (real DBMSs do for
    /// `EXISTS`, and the paper's `NOT EXISTS` rewrite leans on it).
    fn eval_subquery_exists(&self, query: &Query, frames: &[Frame<'_>]) -> Result<bool> {
        Ok(!self.eval_subquery(query, frames)?.is_empty())
    }
}

/// Evaluate `expr` in the environment `frames` (innermost first).
pub fn eval(expr: &Expr, frames: &[Frame<'_>], sq: &dyn SubqueryEval) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => {
            // Innermost frame wins; outer frames provide correlation.
            for frame in frames {
                match frame.schema.resolve(qualifier.as_deref(), name) {
                    Ok(idx) => return Ok(frame.tuple[idx].clone()),
                    Err(Error::Plan(msg)) if msg.starts_with("ambiguous") => {
                        return Err(Error::Plan(msg))
                    }
                    Err(_) => continue,
                }
            }
            let shown = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            Err(Error::Plan(format!("unknown column '{shown}'")))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, frames, sq)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => Ok(truth_not(v)?),
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, frames, sq),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, frames, sq)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, frames, sq)?;
            let lo = eval(low, frames, sq)?;
            let hi = eval(high, frames, sq)?;
            let ge = sql_ge(&v, &lo);
            let le = sql_le(&v, &hi);
            let t = three_and(ge, le);
            Ok(truth_negate(t, *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, frames, sq)?;
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                let w = eval(item, frames, sq)?;
                match v.sql_eq(&w) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let t = if found {
                Some(true)
            } else if saw_null {
                None
            } else {
                Some(false)
            };
            Ok(truth_negate(t, *negated))
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let v = eval(expr, frames, sq)?;
            let rows = sq.eval_subquery(query, frames)?;
            let mut saw_null = false;
            let mut found = false;
            for row in &rows {
                if row.len() != 1 {
                    return Err(Error::Exec(
                        "IN sub-query must return exactly one column".into(),
                    ));
                }
                match v.sql_eq(&row[0]) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let t = if found {
                Some(true)
            } else if saw_null {
                None
            } else {
                Some(false)
            };
            Ok(truth_negate(t, *negated))
        }
        Expr::Exists { query, negated } => {
            let any = sq.eval_subquery_exists(query, frames)?;
            Ok(Value::Bool(any != *negated))
        }
        Expr::ScalarSubquery(query) => {
            let rows = sq.eval_subquery(query, frames)?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => {
                    if rows[0].len() != 1 {
                        return Err(Error::Exec(
                            "scalar sub-query must return exactly one column".into(),
                        ));
                    }
                    Ok(rows[0][0].clone())
                }
                n => Err(Error::Exec(format!("scalar sub-query returned {n} rows"))),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, frames, sq)?;
            let p = eval(pattern, frames, sq)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => Ok(Value::Bool(like_match(s, pat) != *negated)),
                _ => Err(Error::Type(format!(
                    "LIKE expects string operands, got {} and {}",
                    v.type_name(),
                    p.type_name()
                ))),
            }
        }
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            let op_val = operand.as_ref().map(|o| eval(o, frames, sq)).transpose()?;
            for (when, then) in branches {
                let hit = match &op_val {
                    Some(ov) => {
                        let wv = eval(when, frames, sq)?;
                        ov.sql_eq(&wv) == Some(true)
                    }
                    None => {
                        let wv = eval(when, frames, sq)?;
                        truth(&wv) == Some(true)
                    }
                };
                if hit {
                    return eval(then, frames, sq);
                }
            }
            match else_result {
                Some(e) => eval(e, frames, sq),
                None => Ok(Value::Null),
            }
        }
        Expr::Function { name, args } => eval_scalar_function(name, args, frames, sq),
        Expr::Wildcard => Err(Error::Plan("'*' is only valid inside COUNT(*)".into())),
    }
}

fn eval_binary(
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    frames: &[Frame<'_>],
    sq: &dyn SubqueryEval,
) -> Result<Value> {
    // Kleene logic with short-circuiting for AND/OR.
    match op {
        BinaryOp::And => {
            let l = truth(&eval(left, frames, sq)?);
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = truth(&eval(right, frames, sq)?);
            return Ok(truth_to_value(three_and(l, r)));
        }
        BinaryOp::Or => {
            let l = truth(&eval(left, frames, sq)?);
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = truth(&eval(right, frames, sq)?);
            return Ok(truth_to_value(three_or(l, r)));
        }
        _ => {}
    }
    let l = eval(left, frames, sq)?;
    let r = eval(right, frames, sq)?;
    match op {
        BinaryOp::Plus => l.add(&r),
        BinaryOp::Minus => l.sub(&r),
        BinaryOp::Mul => l.mul(&r),
        BinaryOp::Div => l.div(&r),
        BinaryOp::Eq => Ok(truth_to_value(l.sql_eq(&r))),
        BinaryOp::NotEq => Ok(truth_to_value(l.sql_eq(&r).map(|b| !b))),
        BinaryOp::Lt => Ok(truth_to_value(
            l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less),
        )),
        BinaryOp::LtEq => Ok(truth_to_value(
            l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Greater),
        )),
        BinaryOp::Gt => Ok(truth_to_value(
            l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater),
        )),
        BinaryOp::GtEq => Ok(truth_to_value(
            l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Less),
        )),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn eval_scalar_function(
    name: &str,
    args: &[Expr],
    frames: &[Frame<'_>],
    sq: &dyn SubqueryEval,
) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Type(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "abs" => {
            arity(1)?;
            eval(&args[0], frames, sq)?.abs()
        }
        "lower" | "upper" => {
            arity(1)?;
            let v = eval(&args[0], frames, sq)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(if name == "lower" {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                other => Err(Error::Type(format!(
                    "{name}() expects a string, got {}",
                    other.type_name()
                ))),
            }
        }
        "length" => {
            arity(1)?;
            let v = eval(&args[0], frames, sq)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(Error::Type(format!(
                    "length() expects a string, got {}",
                    other.type_name()
                ))),
            }
        }
        "round" | "floor" | "ceil" => {
            arity(1)?;
            let v = eval(&args[0], frames, sq)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Float(match name {
                    "round" => f.round(),
                    "floor" => f.floor(),
                    _ => f.ceil(),
                })),
                other => Err(Error::Type(format!(
                    "{name}() expects a number, got {}",
                    other.type_name()
                ))),
            }
        }
        "least" | "greatest" => {
            if args.is_empty() {
                return Err(Error::Type(format!("{name}() needs arguments")));
            }
            let mut best: Option<Value> = None;
            for a in args {
                let v = eval(a, frames, sq)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(o) => {
                                (name == "least") == (o == std::cmp::Ordering::Less)
                                    && o != std::cmp::Ordering::Equal
                            }
                            None => {
                                return Err(Error::Type(format!(
                                    "{name}() arguments are not comparable"
                                )))
                            }
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.expect("non-empty args"))
        }
        "coalesce" => {
            for a in args {
                let v = eval(a, frames, sq)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "count" | "sum" | "avg" | "min" | "max" => Err(Error::Plan(format!(
            "aggregate {name}() is not allowed in this context"
        ))),
        "top" | "level" | "distance" => Err(Error::Unsupported(format!(
            "quality function {name}() requires a PREFERRING clause and is \
             resolved by the Preference SQL rewriter — it cannot be executed \
             by the host SQL engine directly"
        ))),
        other => Err(Error::Plan(format!("unknown function '{other}'"))),
    }
}

/// SQL `LIKE` with `%` (any sequence) and `_` (any single char),
/// case-sensitive, over Unicode scalar values.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(&s[k..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

// ------------------------- three-valued logic helpers -------------------

/// SQL truth of a value: `Some(bool)` for BOOL, `None` for NULL, error for
/// anything else is avoided by treating non-bool as an error at call sites
/// that require predicates; here non-bool non-null maps to `None`.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => None,
    }
}

fn truth_to_value(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn truth_not(v: Value) -> Result<Value> {
    match v {
        Value::Bool(b) => Ok(Value::Bool(!b)),
        Value::Null => Ok(Value::Null),
        other => Err(Error::Type(format!(
            "NOT expects a boolean, got {}",
            other.type_name()
        ))),
    }
}

fn truth_negate(t: Option<bool>, negated: bool) -> Value {
    truth_to_value(t.map(|b| b != negated))
}

fn three_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn three_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn sql_ge(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o != std::cmp::Ordering::Less)
}

fn sql_le(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::parse_expression;
    use prefsql_types::{tuple, Column, DataType};

    struct NoSubqueries;
    impl SubqueryEval for NoSubqueries {
        fn eval_subquery(&self, _: &Query, _: &[Frame<'_>]) -> Result<Vec<Tuple>> {
            Err(Error::Plan("no sub-queries in this test".into()))
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("price", DataType::Int).qualified("cars"),
            Column::new("make", DataType::Str).qualified("cars"),
            Column::new("rating", DataType::Float).qualified("cars"),
        ])
        .unwrap()
    }

    fn ev(src: &str, t: &Tuple) -> Result<Value> {
        let e = parse_expression(src).unwrap();
        let s = schema();
        let frames = [Frame {
            schema: &s,
            tuple: t,
        }];
        eval(&e, &frames, &NoSubqueries)
    }

    #[test]
    fn arithmetic_and_columns() {
        let t = tuple![40_000, "audi", 4.5];
        assert_eq!(ev("price / 2 + 1", &t).unwrap(), Value::Int(20_001));
        assert_eq!(ev("ABS(price - 50000)", &t).unwrap(), Value::Int(10_000));
        assert_eq!(ev("cars.price", &t).unwrap(), Value::Int(40_000));
        assert_eq!(ev("-price", &t).unwrap(), Value::Int(-40_000));
    }

    #[test]
    fn comparisons_and_logic() {
        let t = tuple![40_000, "audi", 4.5];
        assert_eq!(
            ev("price > 30000 AND make = 'audi'", &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev("price < 30000 OR make = 'bmw'", &t).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(ev("NOT (make = 'bmw')", &t).unwrap(), Value::Bool(true));
        assert_eq!(
            ev("price BETWEEN 30000 AND 50000", &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev("make IN ('audi', 'bmw')", &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(ev("make NOT IN ('vw')", &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation_in_predicates() {
        let t = Tuple::new(vec![Value::Null, Value::str("audi"), Value::Float(4.5)]);
        assert_eq!(ev("price > 30000", &t).unwrap(), Value::Null);
        assert_eq!(
            ev("price > 30000 AND make = 'audi'", &t).unwrap(),
            Value::Null
        );
        // Kleene: NULL AND FALSE = FALSE, NULL OR TRUE = TRUE.
        assert_eq!(
            ev("price > 30000 AND make = 'bmw'", &t).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            ev("price > 30000 OR make = 'audi'", &t).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(ev("price IS NULL", &t).unwrap(), Value::Bool(true));
        assert_eq!(ev("price IS NOT NULL", &t).unwrap(), Value::Bool(false));
        // IN with NULL candidate: unknown unless found.
        assert_eq!(ev("price IN (1, 2)", &t).unwrap(), Value::Null);
        assert_eq!(ev("1 IN (1, price)", &t).unwrap(), Value::Bool(true));
        assert_eq!(ev("3 IN (1, price)", &t).unwrap(), Value::Null);
    }

    #[test]
    fn case_expressions() {
        let t = tuple![40_000, "audi", 4.5];
        assert_eq!(
            ev("CASE WHEN make = 'audi' THEN 1 ELSE 2 END", &t).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            ev("CASE make WHEN 'bmw' THEN 1 WHEN 'audi' THEN 2 END", &t).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            ev("CASE WHEN make = 'bmw' THEN 1 END", &t).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn scalar_functions() {
        let t = tuple![40_000, "Audi", 4.5];
        assert_eq!(ev("LOWER(make)", &t).unwrap(), Value::str("audi"));
        assert_eq!(ev("UPPER(make)", &t).unwrap(), Value::str("AUDI"));
        assert_eq!(ev("LENGTH(make)", &t).unwrap(), Value::Int(4));
        assert_eq!(ev("LEAST(3, 1, 2)", &t).unwrap(), Value::Int(1));
        assert_eq!(ev("GREATEST(3, 1, 2)", &t).unwrap(), Value::Int(3));
        assert_eq!(ev("COALESCE(NULL, 5)", &t).unwrap(), Value::Int(5));
        assert_eq!(ev("ROUND(rating)", &t).unwrap(), Value::Float(5.0));
        assert!(ev("NOSUCHFN(1)", &t).is_err());
    }

    #[test]
    fn quality_functions_rejected_by_engine() {
        let t = tuple![1, "a", 1.0];
        let err = ev("LEVEL(make)", &t).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
        assert!(ev("DISTANCE(price)", &t).is_err());
        assert!(ev("TOP(price)", &t).is_err());
    }

    #[test]
    fn unknown_column_reports_name() {
        let t = tuple![1, "a", 1.0];
        let err = ev("nope", &t).unwrap_err();
        assert!(err.to_string().contains("nope"));
        let err = ev("other.price", &t).unwrap_err();
        assert!(err.to_string().contains("other.price"));
    }

    #[test]
    fn outer_frame_resolution() {
        let inner_schema =
            Schema::new(vec![Column::new("x", DataType::Int).qualified("a2")]).unwrap();
        let outer_schema =
            Schema::new(vec![Column::new("x", DataType::Int).qualified("a1")]).unwrap();
        let inner_t = tuple![10];
        let outer_t = tuple![20];
        let frames = [
            Frame {
                schema: &inner_schema,
                tuple: &inner_t,
            },
            Frame {
                schema: &outer_schema,
                tuple: &outer_t,
            },
        ];
        let e = parse_expression("a2.x < a1.x").unwrap();
        assert_eq!(eval(&e, &frames, &NoSubqueries).unwrap(), Value::Bool(true));
        // Unqualified resolves innermost-first.
        let e = parse_expression("x").unwrap();
        assert_eq!(eval(&e, &frames, &NoSubqueries).unwrap(), Value::Int(10));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("audi", "au%"));
        assert!(like_match("audi", "%di"));
        assert!(like_match("audi", "a_d_"));
        assert!(like_match("audi", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("audi", "b%"));
        assert!(!like_match("audi", "a_d"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("xayb", "x%y_"));
        let t = tuple![1, "audi", 1.0];
        assert_eq!(ev("make LIKE 'au%'", &t).unwrap(), Value::Bool(true));
        assert_eq!(ev("make NOT LIKE 'b%'", &t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_errors_surface() {
        let t = tuple![1, "a", 1.0];
        assert!(ev("1 / 0", &t).is_err());
        assert_eq!(ev("price / 0.0", &t).unwrap(), Value::Float(f64::INFINITY));
    }
}
