//! The executor: statements in, relations out.
//!
//! This module is statement dispatch plus DML, split into three pieces so
//! many sessions can share one catalog:
//!
//! * [`EngineCore`] — the shared, thread-safe heart: the catalog behind a
//!   readers-writer lock plus global toggles. Sessions share it through an
//!   `Arc`; queries take read locks, DML/DDL the write lock, so statements
//!   are isolated at statement granularity.
//! * [`ExecCtx`] — per-statement execution state: the FROM/plan caches,
//!   execution counters and the view-recursion guard, pinned to a catalog
//!   borrow (a read guard for queries, a plain borrow under the write lock
//!   for DML expression evaluation). A fresh context per statement replaces
//!   the old `begin_statement` cache reset.
//! * [`Engine`] — the single-session façade the rest of the stack talks
//!   to. It keeps the pre-refactor API (`execute_sql`, `catalog()`,
//!   `take_stats`, ...) while delegating to a shared or private core.
//!
//! Queries are compiled into a logical plan ([`crate::plan`]) exactly once
//! per statement (a pointer-keyed, content-verified plan cache makes the
//! per-outer-row re-planning of correlated sub-queries free) and run by the
//! streaming physical operators of [`crate::physical`]. `EXPLAIN` renders
//! the same plan object the executor runs.

use crate::eval::{eval, truth, Frame, SubqueryEval};
use crate::plan::{plan_query, QueryPlan};
use prefsql_parser::ast::{Expr, InsertSource, Query, Statement};
use prefsql_parser::parse_statement;
use prefsql_storage::spill::SpillMetrics;
use prefsql_storage::{BufferPool, Catalog, HeapFile, IndexKind, PoolStats, Table};
use prefsql_types::knobs::{ceiling_from_value, parse_size, DEFAULT_POOL_BYTES, MIN_POOL_BYTES};
use prefsql_types::{Column, Error, Result, Schema, Tuple, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A materialized relation: schema + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Column descriptions.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT result.
    Rows(Relation),
    /// Row count of an INSERT.
    Count(usize),
    /// DDL acknowledgement message.
    Ddl(String),
    /// EXPLAIN output.
    Explain(String),
}

impl ExecOutcome {
    /// The rows of a SELECT outcome, or `None` for counts/DDL/EXPLAIN.
    pub fn rows(&self) -> Option<&Relation> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Consume the outcome into its rows, or `None` for other outcomes.
    pub fn into_rows(self) -> Option<Relation> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The rows of a SELECT outcome (panics on other outcomes; test/demo
    /// convenience — production code should prefer [`ExecOutcome::rows`]).
    pub fn expect_rows(self) -> Relation {
        match self {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// Execution counters, exposed for the experiment harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows touched by scans and index probes.
    pub rows_scanned: u64,
    /// Number of index probes taken.
    pub index_probes: u64,
    /// Number of sub-query evaluations (one per outer row for correlated
    /// sub-queries — the O(n²) heart of the rewrite).
    pub subquery_evals: u64,
    /// Dominance comparisons ([`prefsql_pref::compose::Preference::better`])
    /// charged to this statement — the paper's unit of preference-
    /// evaluation cost. Includes skyline evaluation and materialized-view
    /// maintenance.
    pub dominance_tests: u64,
}

impl ExecStats {
    /// Fold another counter set into this one (per-statement contexts
    /// report into the session accumulator).
    pub fn absorb(&mut self, other: ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.subquery_evals += other.subquery_evals;
        self.dominance_tests += other.dominance_tests;
    }
}

/// Map a poisoned-lock error onto the stack's error type: one panicking
/// session must surface as a reportable error in its peers, not take the
/// whole server down.
fn poisoned<T>(_: PoisonError<T>) -> Error {
    Error::Concurrency("engine catalog lock poisoned by a panicked session".into())
}

/// Which storage backend `CREATE TABLE` builds new tables on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The in-memory `Vec<Tuple>` store (the default).
    Mem,
    /// Slotted heap-file pages served through the shared buffer pool.
    Paged,
}

impl BackendKind {
    /// Interpret a `PREFSQL_BACKEND` / `\backend` value: `paged` selects
    /// the heap-file backend, anything else the in-memory default.
    pub fn parse(v: &str) -> BackendKind {
        if v.trim().eq_ignore_ascii_case("paged") {
            BackendKind::Paged
        } else {
            BackendKind::Mem
        }
    }

    /// `"mem"` or `"paged"` — the label EXPLAIN and the shell show.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Mem => "mem",
            BackendKind::Paged => "paged",
        }
    }
}

/// The shared, thread-safe core of the engine: the catalog behind a
/// [`RwLock`] plus global toggles and the storage substrate every session
/// shares — the backend selection for new tables and the pinning buffer
/// pool paged tables read through. Many [`Engine`] façades (one per
/// session) hold the same core through an `Arc`; concurrent queries take
/// the read lock for the duration of one statement, DML and DDL take the
/// write lock, which gives statement-level isolation.
pub struct EngineCore {
    catalog: RwLock<Catalog>,
    use_indexes: AtomicBool,
    use_hash_join: AtomicBool,
    /// `true` = new tables go to paged heap files.
    paged: AtomicBool,
    /// The buffer pool all paged tables of this core share.
    pool: Arc<BufferPool>,
    /// Lazily created directory holding this core's heap files; removed
    /// when the core drops (heap files themselves delete on drop).
    data_dir: Mutex<Option<PathBuf>>,
    /// Heap-file name sequence within the data dir.
    heap_seq: AtomicU64,
    /// Engine-wide metrics: every session's finished statements fold
    /// their deltas in here.
    metrics: crate::metrics::MetricsRegistry,
}

impl Default for EngineCore {
    fn default() -> Self {
        EngineCore::new()
    }
}

impl EngineCore {
    /// A fresh core with an empty catalog. The storage substrate comes
    /// from the environment: `PREFSQL_BACKEND=paged` selects the
    /// heap-file backend for new tables, `PREFSQL_POOL=N[k|m]` sizes the
    /// shared buffer pool (ceiling semantics: garbage or sub-minimum
    /// values cap at the 16 KiB minimum; unset means 1 MiB). Both are
    /// read per core — not cached process-wide — so test harnesses can
    /// vary them between cores.
    pub fn new() -> Self {
        let kind = match std::env::var("PREFSQL_BACKEND") {
            Ok(v) => BackendKind::parse(&v),
            Err(_) => BackendKind::Mem,
        };
        let pool_bytes = match std::env::var("PREFSQL_POOL") {
            Ok(v) => ceiling_from_value(&v, parse_size, MIN_POOL_BYTES),
            Err(_) => DEFAULT_POOL_BYTES,
        };
        EngineCore::with_storage(kind, pool_bytes)
    }

    /// A fresh core with an explicit storage configuration (tests and
    /// harnesses that must not depend on the environment).
    pub fn with_storage(kind: BackendKind, pool_bytes: usize) -> Self {
        EngineCore {
            catalog: RwLock::new(Catalog::new()),
            use_indexes: AtomicBool::new(true),
            use_hash_join: AtomicBool::new(true),
            paged: AtomicBool::new(kind == BackendKind::Paged),
            pool: Arc::new(BufferPool::new(pool_bytes)),
            data_dir: Mutex::new(None),
            heap_seq: AtomicU64::new(0),
            metrics: crate::metrics::MetricsRegistry::new(),
        }
    }

    /// The engine-wide metrics registry shared by this core's sessions.
    pub fn metrics(&self) -> &crate::metrics::MetricsRegistry {
        &self.metrics
    }

    /// A machine-parseable report of the registry plus the live
    /// buffer-pool counters — what `\metrics` and the server's `METRICS`
    /// verb print, one `key value` pair per line.
    pub fn metrics_report(&self) -> Vec<(String, String)> {
        let mut out = self.metrics.snapshot();
        let pool = self.pool_stats();
        let served = pool.hits + pool.misses;
        let ratio = if served == 0 {
            "1.000".to_string()
        } else {
            format!("{:.3}", pool.hits as f64 / served as f64)
        };
        out.push((
            "pool.capacity_pages".into(),
            pool.capacity_pages.to_string(),
        ));
        out.push(("pool.hits".into(), pool.hits.to_string()));
        out.push(("pool.misses".into(), pool.misses.to_string()));
        out.push(("pool.evictions".into(), pool.evictions.to_string()));
        out.push(("pool.writebacks".into(), pool.writebacks.to_string()));
        out.push(("pool.hit_ratio".into(), ratio));
        out
    }

    /// A fresh shared core, ready to be handed to many sessions.
    pub fn shared() -> Arc<EngineCore> {
        Arc::new(EngineCore::new())
    }

    /// The backend newly created tables use.
    pub fn backend_kind(&self) -> BackendKind {
        if self.paged.load(Ordering::Relaxed) {
            BackendKind::Paged
        } else {
            BackendKind::Mem
        }
    }

    /// Switch the backend for *future* tables. Refused once the catalog
    /// holds tables — existing rows are not migrated, and a mixed
    /// catalog is exactly what the per-database selection model avoids.
    pub fn set_backend(&self, kind: BackendKind) -> Result<()> {
        let cat = self.catalog_read()?;
        if !cat.table_names().is_empty() {
            return Err(Error::Catalog(
                "cannot switch storage backend: catalog already holds tables \
                 (backend selection happens at database open)"
                    .into(),
            ));
        }
        drop(cat);
        self.paged
            .store(kind == BackendKind::Paged, Ordering::Relaxed);
        Ok(())
    }

    /// The buffer pool shared by this core's paged tables.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Cumulative buffer-pool counters (hits/misses/evictions/writebacks).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resize the shared buffer pool (the `\pool` command); clamps to the
    /// 16 KiB minimum and returns the size actually in effect.
    pub fn resize_pool(&self, bytes: usize) -> Result<usize> {
        self.pool.resize(bytes)?;
        Ok(self.pool.capacity_pages() * prefsql_storage::page::PAGE_SIZE)
    }

    /// Build an empty table on the configured backend. Paged tables get a
    /// fresh heap file in this core's (lazily created) data directory.
    pub fn make_table(&self, name: &str, schema: Schema) -> Result<Table> {
        match self.backend_kind() {
            BackendKind::Mem => Ok(Table::new(name, schema)),
            BackendKind::Paged => {
                let dir = self.data_dir()?;
                let seq = self.heap_seq.fetch_add(1, Ordering::Relaxed);
                let path = dir.join(format!("{}-{seq}.heap", name.to_ascii_lowercase()));
                let file = Arc::new(HeapFile::create(path, true)?);
                Ok(Table::paged(name, schema, file, Arc::clone(&self.pool)))
            }
        }
    }

    /// The core's heap-file directory, created on first use:
    /// `<tmp>/prefsql-db-<pid>-<addr>` — unique per core within the
    /// process and across concurrent processes.
    fn data_dir(&self) -> Result<PathBuf> {
        let mut slot = self
            .data_dir
            .lock()
            .map_err(|_| Error::Concurrency("engine data-dir lock poisoned".into()))?;
        if let Some(dir) = &*slot {
            return Ok(dir.clone());
        }
        let dir = std::env::temp_dir().join(format!(
            "prefsql-db-{}-{:x}",
            std::process::id(),
            self as *const EngineCore as usize
        ));
        std::fs::create_dir_all(&dir)?;
        *slot = Some(dir.clone());
        Ok(dir)
    }

    /// Enable or disable index access paths (ablation A2). Global: the
    /// toggle is part of the core, not of any one session.
    pub fn set_use_indexes(&self, on: bool) {
        self.use_indexes.store(on, Ordering::Relaxed);
    }

    /// Whether index access paths are enabled.
    pub fn use_indexes(&self) -> bool {
        self.use_indexes.load(Ordering::Relaxed)
    }

    /// Enable or disable the hash-join fast path for equi-join ON
    /// conditions (ablation/differential baseline: off plans every join
    /// as a nested loop). Global, like the index toggle.
    pub fn set_use_hash_join(&self, on: bool) {
        self.use_hash_join.store(on, Ordering::Relaxed);
    }

    /// Whether the hash-join fast path is enabled.
    pub fn use_hash_join(&self) -> bool {
        self.use_hash_join.load(Ordering::Relaxed)
    }

    /// Begin a read statement: a fresh [`ExecCtx`] holding the catalog
    /// read lock for the statement's duration. Fails with
    /// [`Error::Concurrency`] if the lock was poisoned.
    pub fn read_ctx(&self) -> Result<ExecCtx<'_>> {
        let guard = self.catalog.read().map_err(poisoned)?;
        Ok(
            ExecCtx::with_source(CatalogSource::Guard(guard), self.use_indexes())
                .with_hash_join(self.use_hash_join()),
        )
    }

    /// Take the catalog read lock directly (catalog inspection without
    /// statement machinery).
    pub fn catalog_read(&self) -> Result<RwLockReadGuard<'_, Catalog>> {
        self.catalog.read().map_err(poisoned)
    }

    /// Take the catalog write lock (DML, DDL, bulk loading). Held for a
    /// whole statement, so readers never observe a half-applied write.
    pub fn catalog_write(&self) -> Result<RwLockWriteGuard<'_, Catalog>> {
        self.catalog.write().map_err(poisoned)
    }
}

impl Drop for EngineCore {
    fn drop(&mut self) {
        // The catalog (and with it every heap file's Arc) is still alive
        // here, so remove the whole tree: unlinking open files is fine on
        // the platforms we run, and HeapFile's own delete-on-drop then
        // no-ops. Best-effort — a vanished temp dir must not panic a drop.
        if let Ok(slot) = self.data_dir.get_mut() {
            if let Some(dir) = slot.take() {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

/// Upper bound on distinct cached plans per statement (a safety valve for
/// pathological workloads that evaluate transient query clones).
const PLAN_CACHE_CAP: usize = 128;

/// A cached plan plus the query it was built from: cache keys are AST
/// node addresses, which are only stable while the statement runs, so a
/// hit must verify the source still matches before reusing the plan.
struct CachedPlan {
    source: Query,
    plan: Arc<QueryPlan>,
}

/// How a statement context sees the catalog: queries hold the core's read
/// guard, DML evaluation borrows the catalog the statement's write guard
/// already protects.
enum CatalogSource<'c> {
    Guard(RwLockReadGuard<'c, Catalog>),
    Borrowed(&'c Catalog),
}

/// Per-statement execution state: a catalog borrow plus the caches and
/// counters that must not leak across statements. One context is created
/// per statement and dropped when it completes, which is what makes the
/// engine's read path shareable — nothing mutable outlives the statement.
pub struct ExecCtx<'c> {
    catalog: CatalogSource<'c>,
    use_indexes: bool,
    use_hash_join: bool,
    /// External-memory window budget for spill-capable operators (the
    /// Grace hash join); `None` never spills.
    window_bytes: Option<usize>,
    /// Directory spill managers root their run dirs in (`None` = the
    /// system temp dir).
    spill_base: Option<PathBuf>,
    /// Spill metrics reported by operators during this statement.
    spill: RefCell<Option<SpillMetrics>>,
    /// Per-statement cache of materialized FROM sources (tables, views and
    /// derived tables are uncorrelated in SQL92, so caching is sound).
    pub(crate) from_cache: RefCell<HashMap<String, Arc<Relation>>>,
    /// Per-statement plan cache keyed by AST node address; entries are
    /// verified against the source query on every hit.
    plan_cache: RefCell<HashMap<usize, CachedPlan>>,
    pub(crate) stats: RefCell<ExecStats>,
    /// Guard against runaway view recursion (during planning).
    pub(crate) view_depth: RefCell<u32>,
    /// When set, [`crate::physical::build`] instruments every operator
    /// and execution reports per-node metrics here (`EXPLAIN ANALYZE`
    /// and the slow-query log; plain statements carry `None`).
    profiler: Option<crate::metrics::Profiler>,
    /// The top-level plan executed under the profiler — kept alive so
    /// the profiler's node addresses stay valid for rendering.
    profiled_plan: RefCell<Option<Arc<QueryPlan>>>,
}

impl<'c> ExecCtx<'c> {
    fn with_source(catalog: CatalogSource<'c>, use_indexes: bool) -> Self {
        ExecCtx {
            catalog,
            use_indexes,
            use_hash_join: true,
            window_bytes: None,
            spill_base: None,
            spill: RefCell::new(None),
            from_cache: RefCell::new(HashMap::new()),
            plan_cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecStats::default()),
            view_depth: RefCell::new(0),
            profiler: None,
            profiled_plan: RefCell::new(None),
        }
    }

    /// A statement context over a plain catalog borrow — the DML path
    /// (expression evaluation under the statement's write lock) and tests
    /// that drive the operators against a hand-built catalog.
    pub fn over(catalog: &'c Catalog, use_indexes: bool) -> Self {
        ExecCtx::with_source(CatalogSource::Borrowed(catalog), use_indexes)
    }

    /// The catalog this statement runs against.
    pub fn catalog(&self) -> &Catalog {
        match &self.catalog {
            CatalogSource::Guard(g) => g,
            CatalogSource::Borrowed(c) => c,
        }
    }

    /// Whether index access paths are enabled for this statement.
    pub fn use_indexes(&self) -> bool {
        self.use_indexes
    }

    /// Set the hash-join toggle (builder style; defaults to on).
    pub fn with_hash_join(mut self, on: bool) -> Self {
        self.use_hash_join = on;
        self
    }

    /// Whether equi-join ON conditions plan as hash joins.
    pub fn use_hash_join(&self) -> bool {
        self.use_hash_join
    }

    /// Set the external-memory window budget for spill-capable operators
    /// (builder style; defaults to `None` = never spill).
    pub fn with_window(mut self, window_bytes: Option<usize>) -> Self {
        self.window_bytes = window_bytes;
        self
    }

    /// The external-memory window budget for this statement.
    pub fn window_bytes(&self) -> Option<usize> {
        self.window_bytes
    }

    /// Root spill-run directories under `base` (builder style; defaults
    /// to the system temp dir).
    pub fn with_spill_base(mut self, base: Option<PathBuf>) -> Self {
        self.spill_base = base;
        self
    }

    /// The directory spill managers root their run dirs in, if pinned.
    pub fn spill_base(&self) -> Option<&std::path::Path> {
        self.spill_base.as_deref()
    }

    /// Attach a per-operator profiler to this statement (builder style):
    /// execution will run instrumented and report per-node metrics.
    pub fn with_profiler(mut self) -> Self {
        self.profiler = Some(crate::metrics::Profiler::new());
        self
    }

    /// The statement's profiler, when execution runs instrumented.
    pub fn profiler(&self) -> Option<&crate::metrics::Profiler> {
        self.profiler.as_ref()
    }

    /// The top-level plan executed under the profiler, if any.
    pub fn profiled_plan(&self) -> Option<Arc<QueryPlan>> {
        self.profiled_plan.borrow().clone()
    }

    /// Register `plan` as this statement's top-level profiled plan (a
    /// no-op without a profiler, or once a plan is already registered).
    /// The Preference SQL facade calls this for the source plan it
    /// builds operators over directly, bypassing [`ExecCtx::run_query`].
    pub fn profile_plan(&self, plan: &Arc<QueryPlan>) {
        if self.profiler.is_some() {
            let mut slot = self.profiled_plan.borrow_mut();
            if slot.is_none() {
                *slot = Some(Arc::clone(plan));
            }
        }
    }

    /// Charge dominance comparisons to this statement (the Preference
    /// SQL facade and view maintenance report the choke-point counter of
    /// [`prefsql_pref::compose::Preference`] here).
    pub fn note_dominance_tests(&self, n: u64) {
        self.stats.borrow_mut().dominance_tests += n;
    }

    /// Report one operator's spill metrics into the statement's
    /// accumulator (folded when several operators spill).
    pub fn note_spill(&self, m: SpillMetrics) {
        let mut slot = self.spill.borrow_mut();
        match &mut *slot {
            Some(acc) => acc.absorb(&m),
            None => *slot = Some(m),
        }
    }

    /// Read and reset the statement's accumulated spill metrics.
    pub fn take_spill(&self) -> Option<SpillMetrics> {
        self.spill.borrow_mut().take()
    }

    /// Read and reset this statement's execution counters.
    pub fn take_stats(&self) -> ExecStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    /// Plan `query`, reusing the per-statement plan cache. The cache key
    /// is the AST node's address; a hit is verified against the stored
    /// source query, so recycled addresses can never alias a stale plan.
    pub fn plan_for(&self, query: &Query) -> Result<Arc<QueryPlan>> {
        let key = query as *const Query as usize;
        if let Some(hit) = self.plan_cache.borrow().get(&key) {
            if hit.source == *query {
                return Ok(Arc::clone(&hit.plan));
            }
        }
        let plan = Arc::new(plan_query(self, query)?);
        let mut cache = self.plan_cache.borrow_mut();
        if cache.len() < PLAN_CACHE_CAP || cache.contains_key(&key) {
            cache.insert(
                key,
                CachedPlan {
                    source: query.clone(),
                    plan: Arc::clone(&plan),
                },
            );
        }
        Ok(plan)
    }

    /// Execute a query block in the environment `outer` (empty for
    /// top-level queries, enclosing frames for correlated sub-queries).
    pub fn run_query(&self, query: &Query, outer: &[Frame<'_>]) -> Result<Relation> {
        let plan = self.plan_for(query)?;
        // The first query of a profiled statement is the top-level one
        // (sub-queries run nested inside it); keep its plan alive so the
        // profile can be rendered against it.
        self.profile_plan(&plan);
        crate::physical::execute(self, plan.root(), outer)
    }

    /// Does `query` return at least one row in environment `outer`?
    /// The streaming pipeline stops at the first qualifying row whenever
    /// the plan shape allows it (the common `EXISTS (SELECT 1 ...)` shape
    /// the rewrite emits); falls back to full evaluation otherwise.
    pub fn run_query_exists(&self, query: &Query, outer: &[Frame<'_>]) -> Result<bool> {
        let plan = self.plan_for(query)?;
        match exists_probe_root(plan.root()) {
            Some(node) => {
                let mut op = crate::physical::build(self, node, outer);
                let found = op.open().and_then(|()| op.next());
                op.close();
                Ok(found?.is_some())
            }
            None => Ok(!crate::physical::execute(self, plan.root(), outer)?
                .rows
                .is_empty()),
        }
    }
}

/// Sub-query evaluation bridge handed to the expression evaluator.
impl SubqueryEval for ExecCtx<'_> {
    fn eval_subquery(&self, query: &Query, frames: &[Frame<'_>]) -> Result<Vec<Tuple>> {
        self.stats.borrow_mut().subquery_evals += 1;
        Ok(self.run_query(query, frames)?.rows)
    }

    fn eval_subquery_exists(&self, query: &Query, frames: &[Frame<'_>]) -> Result<bool> {
        self.stats.borrow_mut().subquery_evals += 1;
        self.run_query_exists(query, frames)
    }
}

/// Read access to the shared catalog, `Deref`-transparent to [`Catalog`]
/// so pre-refactor `engine.catalog().table(..)` call sites keep working.
/// Held for the duration of the borrow — drop it before issuing DML.
pub struct CatalogRead<'e>(RwLockReadGuard<'e, Catalog>);

impl std::ops::Deref for CatalogRead<'_> {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.0
    }
}

/// Write access to the shared catalog (bulk loading by tests/workloads),
/// `Deref`/`DerefMut`-transparent to [`Catalog`].
pub struct CatalogWrite<'e>(RwLockWriteGuard<'e, Catalog>);

impl std::ops::Deref for CatalogWrite<'_> {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.0
    }
}

impl std::ops::DerefMut for CatalogWrite<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        &mut self.0
    }
}

/// The SQL engine: a single-session façade over an [`EngineCore`].
///
/// `Engine::new()` creates a private core — the embedded, single-session
/// shape every test and example uses. [`Engine::with_core`] attaches a
/// session to a shared core instead; any number of such façades may run
/// statements concurrently from their own threads.
///
/// ```
/// use prefsql_engine::Engine;
///
/// let mut e = Engine::new();
/// e.execute_sql("CREATE TABLE t (x INTEGER, name VARCHAR)").unwrap();
/// e.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
/// let out = e.execute_sql("SELECT name FROM t WHERE x = 2").unwrap();
/// let rel = out.rows().expect("SELECT produces rows");
/// assert_eq!(rel.rows[0][0].to_string(), "b");
/// ```
pub struct Engine {
    core: Arc<EngineCore>,
    /// Session-accumulated execution counters (per-statement contexts
    /// report into this; [`Engine::take_stats`] reads and resets it).
    stats: RefCell<ExecStats>,
    /// Per-session external-memory window budget applied to every read
    /// statement context ([`Engine::set_window_bytes`]).
    window_bytes: Option<usize>,
    /// Per-session spill-run base directory ([`Engine::set_spill_base`]).
    spill_base: Option<PathBuf>,
    /// Spill metrics harvested from finished statements
    /// ([`Engine::take_spill_metrics`] reads and resets).
    spill: RefCell<Option<SpillMetrics>>,
    /// Number of materialized-view maintenance applications performed by
    /// DML statements since the last [`Engine::take_view_maintenance`].
    view_maintained: std::cell::Cell<u64>,
    /// When `true`, every statement context runs instrumented
    /// (`EXPLAIN ANALYZE` sets it for the inner statement; the session
    /// layer sets it durably for slow-query logging).
    profiling: std::cell::Cell<bool>,
    /// The analyzed-plan rendering of the most recent profiled
    /// statement ([`Engine::take_analyzed`] reads and resets).
    last_analyzed: RefCell<Option<String>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with a private, empty core.
    pub fn new() -> Self {
        Engine::with_core(EngineCore::shared())
    }

    /// A session façade over a shared core.
    pub fn with_core(core: Arc<EngineCore>) -> Self {
        Engine {
            core,
            stats: RefCell::new(ExecStats::default()),
            window_bytes: None,
            spill_base: None,
            spill: RefCell::new(None),
            view_maintained: std::cell::Cell::new(0),
            profiling: std::cell::Cell::new(false),
            last_analyzed: RefCell::new(None),
        }
    }

    /// The shared core behind this façade (clone the `Arc` to attach
    /// further sessions).
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// Read access to the catalog. The returned guard derefs to
    /// [`Catalog`]; a poisoned lock is recovered here (read-only
    /// inspection stays available even after a peer session panicked —
    /// statement execution surfaces [`Error::Concurrency`] instead).
    pub fn catalog(&self) -> CatalogRead<'_> {
        CatalogRead(
            self.core
                .catalog
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Mutable catalog access (bulk loading by tests/workloads). Takes
    /// the core's write lock; recovery on poison mirrors
    /// [`Engine::catalog`].
    pub fn catalog_mut(&mut self) -> CatalogWrite<'_> {
        CatalogWrite(
            self.core
                .catalog
                .write()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Enable or disable index access paths (ablation A2).
    pub fn set_use_indexes(&mut self, on: bool) {
        self.core.set_use_indexes(on);
    }

    /// Whether index access paths are enabled.
    pub fn use_indexes(&self) -> bool {
        self.core.use_indexes()
    }

    /// Enable or disable the hash-join fast path (global toggle on the
    /// shared core, like [`Engine::set_use_indexes`]).
    pub fn set_use_hash_join(&mut self, on: bool) {
        self.core.set_use_hash_join(on);
    }

    /// Whether the hash-join fast path is enabled.
    pub fn use_hash_join(&self) -> bool {
        self.core.use_hash_join()
    }

    /// The storage backend newly created tables use.
    pub fn backend_kind(&self) -> BackendKind {
        self.core.backend_kind()
    }

    /// Cumulative buffer-pool counters of the shared core (sessions
    /// snapshot these around a statement to report per-query deltas).
    pub fn pool_stats(&self) -> PoolStats {
        self.core.pool_stats()
    }

    /// Set this session's external-memory window budget: spill-capable
    /// operators (the Grace hash join) overflow to disk runs once their
    /// build memory exceeds it. `None` never spills.
    pub fn set_window_bytes(&mut self, window_bytes: Option<usize>) {
        self.window_bytes = window_bytes;
    }

    /// This session's external-memory window budget.
    pub fn window_bytes(&self) -> Option<usize> {
        self.window_bytes
    }

    /// Root this session's spill-run directories under `base` (`None` =
    /// the system temp dir). The directory need not exist yet; spill
    /// managers create it on first use.
    pub fn set_spill_base(&mut self, base: Option<PathBuf>) {
        self.spill_base = base;
    }

    /// Read and reset the spill metrics accumulated by statements run
    /// since the last call (`None` = nothing spilled).
    pub fn take_spill_metrics(&self) -> Option<SpillMetrics> {
        self.spill.borrow_mut().take()
    }

    /// Read and reset the number of materialized-preference-view
    /// maintenance applications (one per view kept current by a DML
    /// statement) since the last call.
    pub fn take_view_maintenance(&self) -> u64 {
        self.view_maintained.replace(0)
    }

    fn note_view_maintenance(&self, n: u64) {
        self.view_maintained.set(self.view_maintained.get() + n);
        self.core.metrics().add_views_maintained(n);
    }

    /// Run every statement instrumented (`true`) or only under
    /// `EXPLAIN ANALYZE` (`false`, the default). The session layer turns
    /// this on for slow-query logging: after each statement,
    /// [`Engine::take_analyzed`] then holds the analyzed plan.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling.set(on);
    }

    /// Whether statements currently run instrumented.
    pub fn profiling(&self) -> bool {
        self.profiling.get()
    }

    /// Read and reset the analyzed-plan rendering of the most recent
    /// profiled statement (`None` when nothing profiled ran, e.g. DDL).
    pub fn take_analyzed(&self) -> Option<String> {
        self.last_analyzed.borrow_mut().take()
    }

    /// Harvest a finished profiled context: fold the per-operator
    /// profile into the engine-wide registry and render the analyzed
    /// plan while the plan `Arc` (and with it the profiler's node
    /// addresses) is still alive.
    fn harvest_profile(&self, ctx: &ExecCtx<'_>) {
        let Some(prof) = ctx.profiler() else {
            return;
        };
        self.core.metrics().absorb_profile(prof);
        if let Some(plan) = ctx.profiled_plan() {
            let mut text = String::new();
            crate::explain::render_analyzed(plan.root(), prof, 0, &mut text);
            *self.last_analyzed.borrow_mut() = Some(text);
        }
    }

    /// Read and reset the session's execution counters.
    pub fn take_stats(&self) -> ExecStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    /// Fold a finished statement's counters into the session accumulator
    /// (callers that drive [`Engine::read_ctx`] directly report here).
    /// Also feeds the engine-wide registry — the session accumulator is
    /// drained by [`Engine::take_stats`], the registry never is.
    pub fn note_stats(&self, stats: ExecStats) {
        self.core.metrics().add_exec_stats(&stats);
        self.stats.borrow_mut().absorb(stats);
    }

    /// Begin a read statement against the shared core. The context holds
    /// the catalog read lock until dropped; its counters are *not*
    /// automatically folded into [`Engine::take_stats`] — use
    /// [`Engine::with_read_ctx`] (or [`Engine::note_stats`]) for that.
    pub fn read_ctx(&self) -> Result<ExecCtx<'_>> {
        let ctx = self
            .core
            .read_ctx()?
            .with_window(self.window_bytes)
            .with_spill_base(self.spill_base.clone());
        Ok(if self.profiling.get() {
            ctx.with_profiler()
        } else {
            ctx
        })
    }

    /// Run `f` inside a fresh read-statement context and fold the
    /// context's counters (and any spill metrics) into the session
    /// accumulators.
    pub fn with_read_ctx<R>(&self, f: impl FnOnce(&ExecCtx<'_>) -> Result<R>) -> Result<R> {
        let ctx = self.read_ctx()?;
        let out = f(&ctx);
        self.harvest_profile(&ctx);
        self.note_stats(ctx.take_stats());
        if let Some(m) = ctx.take_spill() {
            self.core.metrics().add_spill(&m);
            let mut slot = self.spill.borrow_mut();
            match &mut *slot {
                Some(acc) => acc.absorb(&m),
                None => *slot = Some(m),
            }
        }
        out
    }

    /// Parse and execute one SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Execute a parsed statement. Queries and EXPLAIN take the core's
    /// read lock, everything else the write lock, each for exactly one
    /// statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Select(q) => {
                let rel = self.run_query(q, &[])?;
                Ok(ExecOutcome::Rows(rel))
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                let mut cat = self.core.catalog_write()?;
                let before = cat.table(table)?.len();
                let out = self.run_insert(&mut cat, table, columns.as_deref(), source)?;
                let (m, cmp) =
                    crate::matview::after_insert(&mut cat, table, before, self.core.use_indexes());
                self.note_view_maintenance(m);
                self.note_maintenance_dominance(cmp);
                Ok(out)
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let mut cat = self.core.catalog_write()?;
                let doomed = self.matching_row_ids(&cat, table, where_clause.as_ref())?;
                let n = cat.table_mut(table)?.delete_rows(&doomed)?;
                let (m, cmp) =
                    crate::matview::after_delete(&mut cat, table, &doomed, self.core.use_indexes());
                self.note_view_maintenance(m);
                self.note_maintenance_dominance(cmp);
                Ok(ExecOutcome::Count(n))
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let mut cat = self.core.catalog_write()?;
                let ids = self.run_update(&mut cat, table, assignments, where_clause.as_ref())?;
                let (m, cmp) =
                    crate::matview::after_update(&mut cat, table, &ids, self.core.use_indexes());
                self.note_view_maintenance(m);
                self.note_maintenance_dominance(cmp);
                Ok(ExecOutcome::Count(ids.len()))
            }
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .iter()
                    .map(|c| {
                        let col = Column::new(c.name.clone(), c.data_type);
                        Ok(if c.not_null { col.not_null() } else { col })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let schema = Schema::new(cols)?;
                let table = self.core.make_table(name, schema)?;
                self.core.catalog_write()?.create_table(table)?;
                Ok(ExecOutcome::Ddl(format!("created table {name}")))
            }
            Statement::CreateView { name, query } => {
                let mut cat = self.core.catalog_write()?;
                // Validate the view body against the current catalog by
                // planning and running it once on an empty environment.
                {
                    let ctx = ExecCtx::over(&cat, self.core.use_indexes());
                    ctx.run_query(query, &[])?;
                    self.note_stats(ctx.take_stats());
                }
                cat.create_view(name.clone(), query.to_string())?;
                Ok(ExecOutcome::Ddl(format!("created view {name}")))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                hash,
            } => {
                let kind = if *hash {
                    IndexKind::Hash
                } else {
                    IndexKind::BTree
                };
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.core.catalog_write()?.table_mut(table)?.create_index(
                    name.clone(),
                    &cols,
                    kind,
                )?;
                Ok(ExecOutcome::Ddl(format!("created index {name} on {table}")))
            }
            Statement::CreateMaterializedView { name, query } => {
                let mut cat = self.core.catalog_write()?;
                let def = crate::matview::build_def(&cat, name, query, self.core.use_indexes())?;
                let n = def.winner_count();
                cat.create_matview(def)?;
                Ok(ExecOutcome::Ddl(format!(
                    "created materialized preference view {name} ({n} rows)"
                )))
            }
            Statement::DropMaterializedView(name) => {
                self.core.catalog_write()?.drop_matview(name)?;
                Ok(ExecOutcome::Ddl(format!(
                    "dropped materialized preference view {name}"
                )))
            }
            Statement::RefreshMaterializedView(name) => {
                let mut cat = self.core.catalog_write()?;
                let n = crate::matview::refresh(&mut cat, name, self.core.use_indexes())?;
                Ok(ExecOutcome::Ddl(format!(
                    "refreshed materialized preference view {name} ({n} rows)"
                )))
            }
            Statement::DropTable(name) => {
                let mut cat = self.core.catalog_write()?;
                // Discard the table's cached pool pages before the drop;
                // its heap file goes when the last shared handle does.
                cat.table(name)?.release_storage()?;
                cat.drop_table(name)?;
                crate::matview::on_drop_table(&mut cat, name);
                Ok(ExecOutcome::Ddl(format!("dropped table {name}")))
            }
            Statement::DropView(name) => {
                self.core.catalog_write()?.drop_view(name)?;
                Ok(ExecOutcome::Ddl(format!("dropped view {name}")))
            }
            Statement::CreatePreference { .. } | Statement::DropPreference(_) => {
                Err(Error::Unsupported(
                    "preference definitions are handled by the Preference SQL \
                     layer, not the host engine"
                        .into(),
                ))
            }
            Statement::Explain { analyze, statement } => {
                if *analyze {
                    return self.explain_analyze(statement);
                }
                let text = self.with_read_ctx(|ctx| crate::explain::explain(ctx, statement))?;
                Ok(ExecOutcome::Explain(text))
            }
        }
    }

    /// `EXPLAIN ANALYZE`: actually execute `stmt` — side effects
    /// included, byte-identical to a plain run by construction — with
    /// every operator instrumented, then return the executed plan
    /// annotated with the observed per-node metrics. Statements without
    /// a profiled plan (DDL, VALUES-only DML) report the execution
    /// summary line alone.
    fn explain_analyze(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        let was = self.profiling.replace(true);
        self.last_analyzed.borrow_mut().take();
        let started = std::time::Instant::now();
        let out = self.execute(stmt);
        let elapsed = started.elapsed();
        self.profiling.set(was);
        let out = out?;
        let mut text = self.take_analyzed().unwrap_or_default();
        let summary = match &out {
            ExecOutcome::Rows(r) => format!("returned {} row(s)", r.rows.len()),
            ExecOutcome::Count(n) => format!("affected {n} row(s)"),
            ExecOutcome::Ddl(msg) => msg.clone(),
            ExecOutcome::Explain(_) => "explained".to_string(),
        };
        use std::fmt::Write as _;
        let _ = writeln!(
            text,
            "Execution: {summary} in {:.3} ms",
            elapsed.as_secs_f64() * 1e3
        );
        Ok(ExecOutcome::Explain(text))
    }

    /// Charge view-maintenance dominance comparisons to the session and
    /// the engine-wide registry (maintenance runs under the DML write
    /// lock, outside any read-statement context).
    fn note_maintenance_dominance(&self, n: u64) {
        if n > 0 {
            self.note_stats(ExecStats {
                dominance_tests: n,
                ..ExecStats::default()
            });
        }
    }

    // ------------------------------------------------------------- queries

    /// Plan `query` inside a fresh read-statement context. The plan is
    /// plain data and remains valid after the context's lock is released.
    pub fn plan_for(&self, query: &Query) -> Result<Arc<QueryPlan>> {
        self.with_read_ctx(|ctx| ctx.plan_for(query))
    }

    /// Execute a query block as one read statement in the environment
    /// `outer` (empty for top-level queries).
    pub fn run_query(&self, query: &Query, outer: &[Frame<'_>]) -> Result<Relation> {
        self.with_read_ctx(|ctx| ctx.run_query(query, outer))
    }

    // ----------------------------------------------------------------- DML

    fn run_insert(
        &self,
        cat: &mut Catalog,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        // Materialize the rows before touching the target table (also makes
        // `INSERT INTO t SELECT ... FROM t` well-defined). Evaluation runs
        // in a statement context borrowing the write-locked catalog.
        let incoming: Vec<Tuple> = {
            let mut ctx = ExecCtx::over(cat, self.core.use_indexes());
            if self.profiling.get() {
                // EXPLAIN ANALYZE of `INSERT ... SELECT`: profile the
                // source plan like any query.
                ctx = ctx.with_profiler();
            }
            let rows = match source {
                InsertSource::Values(rows) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let values = row
                            .iter()
                            .map(|e| eval(e, &[], &ctx))
                            .collect::<Result<Vec<_>>>()?;
                        out.push(Tuple::new(values));
                    }
                    out
                }
                InsertSource::Query(q) => ctx.run_query(q, &[])?.rows,
            };
            self.harvest_profile(&ctx);
            self.note_stats(ctx.take_stats());
            rows
        };
        let target = cat.table(table)?;
        let schema = target.schema().clone();
        // Map the incoming positions onto the target columns.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(None, c))
                .collect::<Result<_>>()?,
        };
        let mut staged = Vec::with_capacity(incoming.len());
        for row in &incoming {
            if row.len() != positions.len() {
                return Err(Error::Exec(format!(
                    "INSERT supplies {} values but {} columns are targeted",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Value::Null; schema.len()];
            for (v, &pos) in row.values().iter().zip(&positions) {
                // Implicit coercions (INT into FLOAT, string into DATE).
                values[pos] = match schema.column(pos).data_type {
                    dt if v.is_null() => {
                        let _ = dt;
                        Value::Null
                    }
                    dt => v.coerce_to(dt).unwrap_or_else(|_| v.clone()),
                };
            }
            staged.push(Tuple::new(values));
        }
        let target = cat.table_mut(table)?;
        let n = target.insert_all(staged)?;
        Ok(ExecOutcome::Count(n))
    }

    /// Row ids of `table` satisfying `predicate` (all rows when `None`).
    fn matching_row_ids(
        &self,
        cat: &Catalog,
        table: &str,
        predicate: Option<&Expr>,
    ) -> Result<Vec<usize>> {
        let t = cat.table(table)?;
        let schema = t.schema().without_qualifiers().with_qualifier(t.name());
        let ctx = ExecCtx::over(cat, self.core.use_indexes());
        let mut ids = Vec::new();
        t.for_each_row(|rid, row| {
            let keep = match predicate {
                None => true,
                Some(pred) => {
                    let frames = [Frame {
                        schema: &schema,
                        tuple: row,
                    }];
                    truth(&eval(pred, &frames, &ctx)?) == Some(true)
                }
            };
            if keep {
                ids.push(rid);
            }
            Ok(())
        })?;
        self.note_stats(ctx.take_stats());
        Ok(ids)
    }

    /// Apply an UPDATE and return the ids of the replaced rows (the
    /// caller drives view maintenance off them).
    fn run_update(
        &self,
        cat: &mut Catalog,
        table: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<Vec<usize>> {
        let ids = self.matching_row_ids(cat, table, predicate)?;
        // Pre-resolve target columns and compute the new tuples before
        // mutating, so a failing assignment leaves the table untouched.
        let new_rows = {
            let t = cat.table(table)?;
            let schema = t.schema().clone();
            let positions: Vec<usize> = assignments
                .iter()
                .map(|(c, _)| schema.resolve(None, c))
                .collect::<Result<_>>()?;
            let eval_schema = schema.without_qualifiers().with_qualifier(t.name());
            let ctx = ExecCtx::over(cat, self.core.use_indexes());
            let mut new_rows = Vec::with_capacity(ids.len());
            for &rid in &ids {
                let row = t.fetch_row(rid)?;
                let frames = [Frame {
                    schema: &eval_schema,
                    tuple: &row,
                }];
                let mut values = row.values().to_vec();
                for ((_, expr), &pos) in assignments.iter().zip(&positions) {
                    let v = eval(expr, &frames, &ctx)?;
                    let target_type = schema.column(pos).data_type;
                    values[pos] = v.coerce_to(target_type).unwrap_or(v);
                }
                let tuple = Tuple::new(values);
                tuple.check_against(&schema)?;
                new_rows.push(tuple);
            }
            self.note_stats(ctx.take_stats());
            new_rows
        };
        let t = cat.table_mut(table)?;
        for (&rid, row) in ids.iter().zip(new_rows) {
            t.replace_row(rid, row)?;
        }
        if !ids.is_empty() {
            t.rebuild_indexes()?;
        }
        Ok(ids)
    }
}

/// The sub-tree an `EXISTS` probe can pull a single row from: strip the
/// top projection (the select list of an `EXISTS` is irrelevant) and any
/// sorts (existence is order-independent); the rest must be fully
/// streaming so the first qualifying row short-circuits. Aggregates,
/// DISTINCT and LIMIT fall back to full evaluation (`LIMIT 0` must yield
/// `false`).
fn exists_probe_root(root: &crate::plan::PlanNode) -> Option<&crate::plan::PlanNode> {
    use crate::plan::PlanNode;
    let mut node = match root {
        PlanNode::Project { input, .. } => input.as_ref(),
        _ => return None,
    };
    while let PlanNode::Sort { input, .. } = node {
        node = input;
    }
    fn streaming(n: &PlanNode) -> bool {
        match n {
            PlanNode::Nothing { .. }
            | PlanNode::SeqScan { .. }
            | PlanNode::IndexScan { .. }
            | PlanNode::Materialize { .. } => true,
            PlanNode::Filter { input, .. } => streaming(input),
            PlanNode::NestedLoopJoin { left, right, .. }
            | PlanNode::HashJoin { left, right, .. } => streaming(left) && streaming(right),
            _ => false,
        }
    }
    streaming(node).then_some(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_core_visible_across_facades() {
        let core = EngineCore::shared();
        let mut writer = Engine::with_core(Arc::clone(&core));
        writer.execute_sql("CREATE TABLE t (x INTEGER)").unwrap();
        writer.execute_sql("INSERT INTO t VALUES (1), (2)").unwrap();
        let mut reader = Engine::with_core(core);
        let out = reader.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.expect_rows().rows[0][0], Value::Int(2));
    }

    #[test]
    fn poisoned_lock_is_a_concurrency_error() {
        let core = EngineCore::shared();
        let poisoner = Arc::clone(&core);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.catalog_write().unwrap();
            panic!("poison the catalog lock");
        });
        assert!(handle.join().is_err());
        let mut session = Engine::with_core(core);
        let err = session.execute_sql("SELECT 1").unwrap_err();
        assert!(matches!(err, Error::Concurrency(_)), "got {err:?}");
        assert_eq!(err.layer(), "concurrency");
    }

    #[test]
    fn facade_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<EngineCore>();
    }
}
