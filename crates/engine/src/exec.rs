//! The executor: statements in, relations out.
//!
//! This module is statement dispatch plus DML. Queries are compiled into
//! a logical plan ([`crate::plan`]) exactly once per statement (a
//! pointer-keyed, content-verified plan cache makes the per-outer-row
//! re-planning of correlated sub-queries free) and run by the streaming
//! physical operators of [`crate::physical`]. `EXPLAIN` renders the same
//! plan object the executor runs.

use crate::eval::{eval, truth, Frame};
use crate::physical::QueryCtx;
use crate::plan::{plan_query, QueryPlan};
use prefsql_parser::ast::{Expr, InsertSource, Query, Statement};
use prefsql_parser::parse_statement;
use prefsql_storage::{Catalog, IndexKind, Table};
use prefsql_types::{Column, Error, Result, Schema, Tuple, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A materialized relation: schema + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Column descriptions.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT result.
    Rows(Relation),
    /// Row count of an INSERT.
    Count(usize),
    /// DDL acknowledgement message.
    Ddl(String),
    /// EXPLAIN output.
    Explain(String),
}

impl ExecOutcome {
    /// The rows of a SELECT outcome, or `None` for counts/DDL/EXPLAIN.
    pub fn rows(&self) -> Option<&Relation> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Consume the outcome into its rows, or `None` for other outcomes.
    pub fn into_rows(self) -> Option<Relation> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The rows of a SELECT outcome (panics on other outcomes; test/demo
    /// convenience — production code should prefer [`ExecOutcome::rows`]).
    pub fn expect_rows(self) -> Relation {
        match self {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// Execution counters, exposed for the experiment harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows touched by scans and index probes.
    pub rows_scanned: u64,
    /// Number of index probes taken.
    pub index_probes: u64,
    /// Number of sub-query evaluations (one per outer row for correlated
    /// sub-queries — the O(n²) heart of the rewrite).
    pub subquery_evals: u64,
}

/// Upper bound on distinct cached plans per statement (a safety valve for
/// pathological workloads that evaluate transient query clones).
const PLAN_CACHE_CAP: usize = 128;

/// A cached plan plus the query it was built from: cache keys are AST
/// node addresses, which are only stable while the statement runs, so a
/// hit must verify the source still matches before reusing the plan.
struct CachedPlan {
    source: Query,
    plan: Rc<QueryPlan>,
}

/// The SQL engine: a catalog plus execution machinery.
///
/// ```
/// use prefsql_engine::Engine;
///
/// let mut e = Engine::new();
/// e.execute_sql("CREATE TABLE t (x INTEGER, name VARCHAR)").unwrap();
/// e.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
/// let out = e.execute_sql("SELECT name FROM t WHERE x = 2").unwrap();
/// let rel = out.rows().expect("SELECT produces rows");
/// assert_eq!(rel.rows[0][0].to_string(), "b");
/// ```
pub struct Engine {
    pub(crate) catalog: Catalog,
    use_indexes: bool,
    /// Per-statement cache of materialized FROM sources (tables, views and
    /// derived tables are uncorrelated in SQL92, so caching is sound).
    pub(crate) from_cache: RefCell<HashMap<String, Rc<Relation>>>,
    /// Per-statement plan cache keyed by AST node address; entries are
    /// verified against the source query on every hit.
    plan_cache: RefCell<HashMap<usize, CachedPlan>>,
    pub(crate) stats: RefCell<ExecStats>,
    /// Guard against runaway view recursion (during planning).
    pub(crate) view_depth: RefCell<u32>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with an empty catalog.
    pub fn new() -> Self {
        Engine {
            catalog: Catalog::new(),
            use_indexes: true,
            from_cache: RefCell::new(HashMap::new()),
            plan_cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecStats::default()),
            view_depth: RefCell::new(0),
        }
    }

    /// Access the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk loading by tests/workloads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Enable or disable index access paths (ablation A2).
    pub fn set_use_indexes(&mut self, on: bool) {
        self.use_indexes = on;
    }

    /// Whether index access paths are enabled.
    pub fn use_indexes(&self) -> bool {
        self.use_indexes
    }

    /// Read and reset the execution counters.
    pub fn take_stats(&self) -> ExecStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    /// Reset the per-statement caches. Called automatically by
    /// [`Engine::execute`]; callers that drive [`Engine::run_query`]
    /// directly (e.g. the native preference path) should call this once
    /// per logical statement so plans and materializations from earlier
    /// statements cannot leak in.
    pub fn begin_statement(&self) {
        self.from_cache.borrow_mut().clear();
        self.plan_cache.borrow_mut().clear();
    }

    /// Parse and execute one SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Execute a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        self.begin_statement();
        self.execute_inner(stmt)
    }

    fn execute_inner(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Select(q) => {
                let rel = self.run_query(q, &[])?;
                Ok(ExecOutcome::Rows(rel))
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => self.run_insert(table, columns.as_deref(), source),
            Statement::Delete {
                table,
                where_clause,
            } => {
                let doomed = self.matching_row_ids(table, where_clause.as_ref())?;
                let n = self.catalog.table_mut(table)?.delete_rows(&doomed);
                Ok(ExecOutcome::Count(n))
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.run_update(table, assignments, where_clause.as_ref()),
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .iter()
                    .map(|c| {
                        let col = Column::new(c.name.clone(), c.data_type);
                        Ok(if c.not_null { col.not_null() } else { col })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let schema = Schema::new(cols)?;
                self.catalog
                    .create_table(Table::new(name.clone(), schema))?;
                Ok(ExecOutcome::Ddl(format!("created table {name}")))
            }
            Statement::CreateView { name, query } => {
                // Validate the view body against the current catalog by
                // planning and running it once on an empty environment.
                self.run_query(query, &[])?;
                self.catalog.create_view(name.clone(), query.to_string())?;
                Ok(ExecOutcome::Ddl(format!("created view {name}")))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                hash,
            } => {
                let kind = if *hash {
                    IndexKind::Hash
                } else {
                    IndexKind::BTree
                };
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog
                    .table_mut(table)?
                    .create_index(name.clone(), &cols, kind)?;
                Ok(ExecOutcome::Ddl(format!("created index {name} on {table}")))
            }
            Statement::DropTable(name) => {
                self.catalog.drop_table(name)?;
                Ok(ExecOutcome::Ddl(format!("dropped table {name}")))
            }
            Statement::DropView(name) => {
                self.catalog.drop_view(name)?;
                Ok(ExecOutcome::Ddl(format!("dropped view {name}")))
            }
            Statement::CreatePreference { .. } | Statement::DropPreference(_) => {
                Err(Error::Unsupported(
                    "preference definitions are handled by the Preference SQL \
                     layer, not the host engine"
                        .into(),
                ))
            }
            Statement::Explain(inner) => {
                let text = crate::explain::explain(self, inner)?;
                Ok(ExecOutcome::Explain(text))
            }
        }
    }

    // ------------------------------------------------------------- queries

    /// Plan `query`, reusing the per-statement plan cache. The cache key
    /// is the AST node's address; a hit is verified against the stored
    /// source query, so recycled addresses can never alias a stale plan.
    pub fn plan_for(&self, query: &Query) -> Result<Rc<QueryPlan>> {
        let key = query as *const Query as usize;
        if let Some(hit) = self.plan_cache.borrow().get(&key) {
            if hit.source == *query {
                return Ok(Rc::clone(&hit.plan));
            }
        }
        let plan = Rc::new(plan_query(self, query)?);
        let mut cache = self.plan_cache.borrow_mut();
        if cache.len() < PLAN_CACHE_CAP || cache.contains_key(&key) {
            cache.insert(
                key,
                CachedPlan {
                    source: query.clone(),
                    plan: Rc::clone(&plan),
                },
            );
        }
        Ok(plan)
    }

    /// Execute a query block in the environment `outer` (empty for
    /// top-level queries, enclosing frames for correlated sub-queries).
    pub fn run_query(&self, query: &Query, outer: &[Frame<'_>]) -> Result<Relation> {
        let plan = self.plan_for(query)?;
        crate::physical::execute(self, plan.root(), outer)
    }

    /// Does `query` return at least one row in environment `outer`?
    /// The streaming pipeline stops at the first qualifying row whenever
    /// the plan shape allows it (the common `EXISTS (SELECT 1 ...)` shape
    /// the rewrite emits); falls back to full evaluation otherwise.
    pub fn run_query_exists(&self, query: &Query, outer: &[Frame<'_>]) -> Result<bool> {
        let plan = self.plan_for(query)?;
        match exists_probe_root(plan.root()) {
            Some(node) => {
                let mut op = crate::physical::build(self, node, outer);
                let found = op.open().and_then(|()| op.next());
                op.close();
                Ok(found?.is_some())
            }
            None => Ok(!crate::physical::execute(self, plan.root(), outer)?
                .rows
                .is_empty()),
        }
    }

    // ----------------------------------------------------------------- DML

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        // Materialize the rows before touching the target table (also makes
        // `INSERT INTO t SELECT ... FROM t` well-defined).
        let incoming: Vec<Tuple> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let values = row
                        .iter()
                        .map(|e| eval(e, &[], &QueryCtx { engine: self }))
                        .collect::<Result<Vec<_>>>()?;
                    out.push(Tuple::new(values));
                }
                out
            }
            InsertSource::Query(q) => self.run_query(q, &[])?.rows,
        };
        let target = self.catalog.table(table)?;
        let schema = target.schema().clone();
        // Map the incoming positions onto the target columns.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(None, c))
                .collect::<Result<_>>()?,
        };
        let mut staged = Vec::with_capacity(incoming.len());
        for row in &incoming {
            if row.len() != positions.len() {
                return Err(Error::Exec(format!(
                    "INSERT supplies {} values but {} columns are targeted",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Value::Null; schema.len()];
            for (v, &pos) in row.values().iter().zip(&positions) {
                // Implicit coercions (INT into FLOAT, string into DATE).
                values[pos] = match schema.column(pos).data_type {
                    dt if v.is_null() => {
                        let _ = dt;
                        Value::Null
                    }
                    dt => v.coerce_to(dt).unwrap_or_else(|_| v.clone()),
                };
            }
            staged.push(Tuple::new(values));
        }
        let target = self.catalog.table_mut(table)?;
        let n = target.insert_all(staged)?;
        Ok(ExecOutcome::Count(n))
    }

    /// Row ids of `table` satisfying `predicate` (all rows when `None`).
    fn matching_row_ids(&self, table: &str, predicate: Option<&Expr>) -> Result<Vec<usize>> {
        let t = self.catalog.table(table)?;
        let schema = t.schema().without_qualifiers().with_qualifier(t.name());
        let ctx = QueryCtx { engine: self };
        let mut ids = Vec::new();
        for (rid, row) in t.rows().iter().enumerate() {
            let keep = match predicate {
                None => true,
                Some(pred) => {
                    let frames = [Frame {
                        schema: &schema,
                        tuple: row,
                    }];
                    truth(&eval(pred, &frames, &ctx)?) == Some(true)
                }
            };
            if keep {
                ids.push(rid);
            }
        }
        Ok(ids)
    }

    fn run_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<ExecOutcome> {
        let ids = self.matching_row_ids(table, predicate)?;
        // Pre-resolve target columns and compute the new tuples before
        // mutating, so a failing assignment leaves the table untouched.
        let new_rows = {
            let t = self.catalog.table(table)?;
            let schema = t.schema().clone();
            let positions: Vec<usize> = assignments
                .iter()
                .map(|(c, _)| schema.resolve(None, c))
                .collect::<Result<_>>()?;
            let eval_schema = schema.without_qualifiers().with_qualifier(t.name());
            let ctx = QueryCtx { engine: self };
            let mut new_rows = Vec::with_capacity(ids.len());
            for &rid in &ids {
                let row = t.row(rid);
                let frames = [Frame {
                    schema: &eval_schema,
                    tuple: row,
                }];
                let mut values = row.values().to_vec();
                for ((_, expr), &pos) in assignments.iter().zip(&positions) {
                    let v = eval(expr, &frames, &ctx)?;
                    let target_type = schema.column(pos).data_type;
                    values[pos] = v.coerce_to(target_type).unwrap_or(v);
                }
                let tuple = Tuple::new(values);
                tuple.check_against(&schema)?;
                new_rows.push(tuple);
            }
            new_rows
        };
        let t = self.catalog.table_mut(table)?;
        for (&rid, row) in ids.iter().zip(new_rows) {
            t.replace_row(rid, row)?;
        }
        if !ids.is_empty() {
            t.rebuild_indexes();
        }
        Ok(ExecOutcome::Count(ids.len()))
    }
}

/// The sub-tree an `EXISTS` probe can pull a single row from: strip the
/// top projection (the select list of an `EXISTS` is irrelevant) and any
/// sorts (existence is order-independent); the rest must be fully
/// streaming so the first qualifying row short-circuits. Aggregates,
/// DISTINCT and LIMIT fall back to full evaluation (`LIMIT 0` must yield
/// `false`).
fn exists_probe_root(root: &crate::plan::PlanNode) -> Option<&crate::plan::PlanNode> {
    use crate::plan::PlanNode;
    let mut node = match root {
        PlanNode::Project { input, .. } => input.as_ref(),
        _ => return None,
    };
    while let PlanNode::Sort { input, .. } = node {
        node = input;
    }
    fn streaming(n: &PlanNode) -> bool {
        match n {
            PlanNode::Nothing { .. }
            | PlanNode::SeqScan { .. }
            | PlanNode::IndexScan { .. }
            | PlanNode::Materialize { .. } => true,
            PlanNode::Filter { input, .. } => streaming(input),
            PlanNode::NestedLoopJoin { left, right, .. } => streaming(left) && streaming(right),
            _ => false,
        }
    }
    streaming(node).then_some(node)
}
