//! The executor: statements in, relations out.
//!
//! The engine is deliberately a straightforward materializing interpreter —
//! it mirrors what a 2001-era host DBMS does for the paper's rewritten
//! queries without hiding the cost structure: correlated sub-queries are
//! re-evaluated per outer row (with their uncorrelated FROM sources
//! materialized once per statement), and index access paths accelerate
//! sargable single-table predicates.

use crate::access::{choose_access_path, AccessPath};
use crate::eval::{eval, truth, Frame, SubqueryEval};
use prefsql_parser::ast::{
    Expr, InsertSource, OrderByItem, Query, SelectItem, Statement, TableRef,
};
use prefsql_parser::parse_statement;
use prefsql_storage::{Catalog, IndexKind, Table};
use prefsql_types::{Column, DataType, Error, Result, Schema, Tuple, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A materialized relation: schema + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Column descriptions.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT result.
    Rows(Relation),
    /// Row count of an INSERT.
    Count(usize),
    /// DDL acknowledgement message.
    Ddl(String),
    /// EXPLAIN output.
    Explain(String),
}

impl ExecOutcome {
    /// The rows of a SELECT outcome (panics on other outcomes; test/demo
    /// convenience).
    pub fn expect_rows(self) -> Relation {
        match self {
            ExecOutcome::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// Execution counters, exposed for the experiment harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows touched by scans and index probes.
    pub rows_scanned: u64,
    /// Number of index probes taken.
    pub index_probes: u64,
    /// Number of sub-query evaluations (one per outer row for correlated
    /// sub-queries — the O(n²) heart of the rewrite).
    pub subquery_evals: u64,
}

/// The SQL engine: a catalog plus execution machinery.
///
/// ```
/// use prefsql_engine::Engine;
///
/// let mut e = Engine::new();
/// e.execute_sql("CREATE TABLE t (x INTEGER, name VARCHAR)").unwrap();
/// e.execute_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
/// let rel = e.execute_sql("SELECT name FROM t WHERE x = 2").unwrap().expect_rows();
/// assert_eq!(rel.rows[0][0].to_string(), "b");
/// ```
pub struct Engine {
    catalog: Catalog,
    use_indexes: bool,
    /// Per-statement cache of materialized FROM sources (tables, views and
    /// derived tables are uncorrelated in SQL92, so caching is sound).
    from_cache: RefCell<HashMap<String, Rc<Relation>>>,
    stats: RefCell<ExecStats>,
    /// Guard against runaway view recursion.
    view_depth: RefCell<u32>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with an empty catalog.
    pub fn new() -> Self {
        Engine {
            catalog: Catalog::new(),
            use_indexes: true,
            from_cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecStats::default()),
            view_depth: RefCell::new(0),
        }
    }

    /// Access the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk loading by tests/workloads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Enable or disable index access paths (ablation A2).
    pub fn set_use_indexes(&mut self, on: bool) {
        self.use_indexes = on;
    }

    /// Whether index access paths are enabled.
    pub fn use_indexes(&self) -> bool {
        self.use_indexes
    }

    /// Read and reset the execution counters.
    pub fn take_stats(&self) -> ExecStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    /// Parse and execute one SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Execute a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        self.from_cache.borrow_mut().clear();
        self.execute_inner(stmt)
    }

    fn execute_inner(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Select(q) => {
                reject_preference_constructs(q)?;
                let rel = self.run_query(q, &[])?;
                Ok(ExecOutcome::Rows(rel))
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => self.run_insert(table, columns.as_deref(), source),
            Statement::Delete {
                table,
                where_clause,
            } => {
                let doomed = self.matching_row_ids(table, where_clause.as_ref())?;
                let n = self.catalog.table_mut(table)?.delete_rows(&doomed);
                Ok(ExecOutcome::Count(n))
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.run_update(table, assignments, where_clause.as_ref()),
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .iter()
                    .map(|c| {
                        let col = Column::new(c.name.clone(), c.data_type);
                        Ok(if c.not_null { col.not_null() } else { col })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let schema = Schema::new(cols)?;
                self.catalog
                    .create_table(Table::new(name.clone(), schema))?;
                Ok(ExecOutcome::Ddl(format!("created table {name}")))
            }
            Statement::CreateView { name, query } => {
                reject_preference_constructs(query)?;
                // Validate the view body against the current catalog by
                // planning it once on an empty environment.
                self.run_query(query, &[])?;
                self.catalog.create_view(name.clone(), query.to_string())?;
                Ok(ExecOutcome::Ddl(format!("created view {name}")))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                hash,
            } => {
                let kind = if *hash {
                    IndexKind::Hash
                } else {
                    IndexKind::BTree
                };
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog
                    .table_mut(table)?
                    .create_index(name.clone(), &cols, kind)?;
                Ok(ExecOutcome::Ddl(format!("created index {name} on {table}")))
            }
            Statement::DropTable(name) => {
                self.catalog.drop_table(name)?;
                Ok(ExecOutcome::Ddl(format!("dropped table {name}")))
            }
            Statement::DropView(name) => {
                self.catalog.drop_view(name)?;
                Ok(ExecOutcome::Ddl(format!("dropped view {name}")))
            }
            Statement::CreatePreference { .. } | Statement::DropPreference(_) => {
                Err(Error::Unsupported(
                    "preference definitions are handled by the Preference SQL \
                     layer, not the host engine"
                        .into(),
                ))
            }
            Statement::Explain(inner) => {
                let text = crate::explain::explain(self, inner)?;
                Ok(ExecOutcome::Explain(text))
            }
        }
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<ExecOutcome> {
        // Materialize the rows before touching the target table (also makes
        // `INSERT INTO t SELECT ... FROM t` well-defined).
        let incoming: Vec<Tuple> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let values = row
                        .iter()
                        .map(|e| eval(e, &[], &QueryCtx { engine: self }))
                        .collect::<Result<Vec<_>>>()?;
                    out.push(Tuple::new(values));
                }
                out
            }
            InsertSource::Query(q) => {
                reject_preference_constructs(q)?;
                self.run_query(q, &[])?.rows
            }
        };
        let target = self.catalog.table(table)?;
        let schema = target.schema().clone();
        // Map the incoming positions onto the target columns.
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(None, c))
                .collect::<Result<_>>()?,
        };
        let mut staged = Vec::with_capacity(incoming.len());
        for row in &incoming {
            if row.len() != positions.len() {
                return Err(Error::Exec(format!(
                    "INSERT supplies {} values but {} columns are targeted",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Value::Null; schema.len()];
            for (v, &pos) in row.values().iter().zip(&positions) {
                // Implicit coercions (INT into FLOAT, string into DATE).
                values[pos] = match schema.column(pos).data_type {
                    dt if v.is_null() => {
                        let _ = dt;
                        Value::Null
                    }
                    dt => v.coerce_to(dt).unwrap_or_else(|_| v.clone()),
                };
            }
            staged.push(Tuple::new(values));
        }
        let target = self.catalog.table_mut(table)?;
        let n = target.insert_all(staged)?;
        Ok(ExecOutcome::Count(n))
    }

    /// Row ids of `table` satisfying `predicate` (all rows when `None`).
    fn matching_row_ids(&self, table: &str, predicate: Option<&Expr>) -> Result<Vec<usize>> {
        let t = self.catalog.table(table)?;
        let schema = t.schema().without_qualifiers().with_qualifier(t.name());
        let ctx = QueryCtx { engine: self };
        let mut ids = Vec::new();
        for (rid, row) in t.rows().iter().enumerate() {
            let keep = match predicate {
                None => true,
                Some(pred) => {
                    let frames = [Frame {
                        schema: &schema,
                        tuple: row,
                    }];
                    truth(&eval(pred, &frames, &ctx)?) == Some(true)
                }
            };
            if keep {
                ids.push(rid);
            }
        }
        Ok(ids)
    }

    fn run_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<ExecOutcome> {
        let ids = self.matching_row_ids(table, predicate)?;
        // Pre-resolve target columns and compute the new tuples before
        // mutating, so a failing assignment leaves the table untouched.
        let (positions, new_rows) = {
            let t = self.catalog.table(table)?;
            let schema = t.schema().clone();
            let positions: Vec<usize> = assignments
                .iter()
                .map(|(c, _)| schema.resolve(None, c))
                .collect::<Result<_>>()?;
            let eval_schema = schema.without_qualifiers().with_qualifier(t.name());
            let ctx = QueryCtx { engine: self };
            let mut new_rows = Vec::with_capacity(ids.len());
            for &rid in &ids {
                let row = t.row(rid);
                let frames = [Frame {
                    schema: &eval_schema,
                    tuple: row,
                }];
                let mut values = row.values().to_vec();
                for ((_, expr), &pos) in assignments.iter().zip(&positions) {
                    let v = eval(expr, &frames, &ctx)?;
                    let target_type = schema.column(pos).data_type;
                    values[pos] = v.coerce_to(target_type).unwrap_or(v);
                }
                let tuple = Tuple::new(values);
                tuple.check_against(&schema)?;
                new_rows.push(tuple);
            }
            (positions, new_rows)
        };
        let _ = positions;
        let t = self.catalog.table_mut(table)?;
        for (&rid, row) in ids.iter().zip(new_rows) {
            t.replace_row(rid, row)?;
        }
        if !ids.is_empty() {
            t.rebuild_indexes();
        }
        Ok(ExecOutcome::Count(ids.len()))
    }

    // ------------------------------------------------------------- queries

    /// Execute a query block in the environment `outer` (empty for
    /// top-level queries, enclosing frames for correlated sub-queries).
    pub fn run_query(&self, query: &Query, outer: &[Frame<'_>]) -> Result<Relation> {
        reject_preference_constructs(query)?;
        let ctx = QueryCtx { engine: self };

        // FROM: resolve and cross-join the sources. Single-source inputs
        // come back Rc-shared so repeated correlated-sub-query evaluation
        // does not clone the whole relation per outer row.
        let (input_schema, input) = self.resolve_from(query, outer)?;

        // WHERE.
        let filtered: Vec<Tuple> = match &query.where_clause {
            None => input.into_owned(),
            Some(pred) => {
                let mut kept = Vec::new();
                for row in input.as_slice() {
                    let mut frames = Vec::with_capacity(outer.len() + 1);
                    frames.push(Frame {
                        schema: &input_schema,
                        tuple: row,
                    });
                    frames.extend_from_slice(outer);
                    if truth(&eval(pred, &frames, &ctx)?) == Some(true) {
                        kept.push(row.clone());
                    }
                }
                kept
            }
        };

        // Aggregation vs. plain projection.
        let needs_agg = !query.group_by.is_empty()
            || query.having.is_some()
            || query.select.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            });
        let mut output = if needs_agg {
            self.run_aggregate(query, &input_schema, filtered, outer)?
        } else {
            self.run_projection(query, &input_schema, filtered, outer)?
        };

        // DISTINCT.
        if query.distinct {
            let mut seen: Vec<Tuple> = Vec::new();
            output.rows.retain(|row| {
                let dup = seen.iter().any(|s| {
                    s.values()
                        .iter()
                        .zip(row.values())
                        .all(|(a, b)| a.key_eq(b))
                });
                if !dup {
                    seen.push(row.clone());
                }
                !dup
            });
        }

        // LIMIT.
        if let Some(n) = query.limit {
            output.rows.truncate(n as usize);
        }
        Ok(output)
    }

    /// Does `query` return at least one row in environment `outer`?
    /// Stops at the first qualifying row when the query has no
    /// aggregation/DISTINCT (the common `EXISTS (SELECT 1 ...)` shape the
    /// rewrite emits); falls back to full evaluation otherwise.
    pub fn run_query_exists(&self, query: &Query, outer: &[Frame<'_>]) -> Result<bool> {
        reject_preference_constructs(query)?;
        let simple = query.group_by.is_empty()
            && query.having.is_none()
            && !query.distinct
            && query.limit != Some(0)
            && !query.select.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            });
        if !simple {
            return Ok(!self.run_query(query, outer)?.rows.is_empty());
        }
        let ctx = QueryCtx { engine: self };
        let (input_schema, input) = self.resolve_from(query, outer)?;
        match &query.where_clause {
            None => Ok(!input.as_slice().is_empty()),
            Some(pred) => {
                for row in input.as_slice() {
                    let mut frames = Vec::with_capacity(outer.len() + 1);
                    frames.push(Frame {
                        schema: &input_schema,
                        tuple: row,
                    });
                    frames.extend_from_slice(outer);
                    if truth(&eval(pred, &frames, &ctx)?) == Some(true) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Resolve the FROM clause into a single input. Single named tables,
    /// views and derived tables are shared with the per-statement cache;
    /// joins materialize owned rows.
    fn resolve_from(&self, query: &Query, outer: &[Frame<'_>]) -> Result<(Schema, InputRows)> {
        if query.from.is_empty() {
            // `SELECT 1` — one empty row.
            return Ok((Schema::empty(), InputRows::Owned(vec![Tuple::new(vec![])])));
        }
        // Fast path: a single non-join FROM item shares its materialization.
        if query.from.len() == 1 {
            match &query.from[0] {
                TableRef::Named { name, alias } => {
                    let rel = self.materialize_named(name, query, alias.as_deref())?;
                    return Ok((rel.schema.clone(), InputRows::Shared(rel)));
                }
                TableRef::Derived { query: sub, alias } => {
                    reject_preference_constructs(sub)?;
                    let rel = self.materialize_derived(sub, alias)?;
                    return Ok((rel.schema.clone(), InputRows::Shared(rel)));
                }
                TableRef::Join { .. } => {}
            }
        }
        let mut acc: Option<(Schema, Vec<Tuple>)> = None;
        for item in &query.from {
            let next = self.resolve_table_ref(item, query, outer)?;
            acc = Some(match acc {
                None => next,
                Some((ls, lr)) => cross_join(ls, lr, next.0, next.1),
            });
        }
        let (schema, rows) = acc.expect("non-empty FROM");
        Ok((schema, InputRows::Owned(rows)))
    }

    fn resolve_table_ref(
        &self,
        item: &TableRef,
        query: &Query,
        outer: &[Frame<'_>],
    ) -> Result<(Schema, Vec<Tuple>)> {
        match item {
            TableRef::Named { name, alias } => {
                let rel = self.materialize_named(name, query, alias.as_deref())?;
                Ok((rel.schema.clone(), rel.rows.clone()))
            }
            TableRef::Derived { query: sub, alias } => {
                reject_preference_constructs(sub)?;
                let rel = self.materialize_derived(sub, alias)?;
                Ok((rel.schema.clone(), rel.rows.clone()))
            }
            TableRef::Join { left, right, on } => {
                let (ls, lr) = self.resolve_table_ref(left, query, outer)?;
                let (rs, rr) = self.resolve_table_ref(right, query, outer)?;
                let (schema, rows) = cross_join(ls, lr, rs, rr);
                match on {
                    None => Ok((schema, rows)),
                    Some(cond) => {
                        let ctx = QueryCtx { engine: self };
                        let mut kept = Vec::new();
                        for row in rows {
                            let mut frames = Vec::with_capacity(outer.len() + 1);
                            frames.push(Frame {
                                schema: &schema,
                                tuple: &row,
                            });
                            frames.extend_from_slice(outer);
                            if truth(&eval(cond, &frames, &ctx)?) == Some(true) {
                                kept.push(row);
                            }
                        }
                        Ok((schema, kept))
                    }
                }
            }
        }
    }

    /// Materialize a named table or view, applying an index access path for
    /// single-table scans when the enclosing query's WHERE is sargable.
    fn materialize_named(
        &self,
        name: &str,
        query: &Query,
        alias: Option<&str>,
    ) -> Result<Rc<Relation>> {
        let qual = alias.unwrap_or(name).to_ascii_lowercase();
        // Views expand recursively.
        if let Some(view) = self.catalog.view(name) {
            let depth = *self.view_depth.borrow();
            if depth > 32 {
                return Err(Error::Plan(format!("view expansion too deep at '{name}'")));
            }
            let key = format!("view:{name}:{qual}");
            if let Some(hit) = self.from_cache.borrow().get(&key) {
                return Ok(Rc::clone(hit));
            }
            let parsed = parse_statement(&view.sql)?;
            let body = match parsed {
                Statement::Select(q) => q,
                other => {
                    return Err(Error::Catalog(format!(
                        "view '{name}' does not contain a query: {other:?}"
                    )))
                }
            };
            *self.view_depth.borrow_mut() += 1;
            let result = self.run_query(&body, &[]);
            *self.view_depth.borrow_mut() -= 1;
            let rel = result?;
            let rel = Rc::new(Relation {
                schema: rel.schema.without_qualifiers().with_qualifier(&qual),
                rows: rel.rows,
            });
            self.from_cache.borrow_mut().insert(key, Rc::clone(&rel));
            return Ok(rel);
        }
        let table = self.catalog.table(name)?;
        // Index access only applies when this table is the *only* FROM item
        // (the sargable conjunct analysis resolves against its schema; with
        // joins the residual re-check could not see the other side).
        let single_table =
            query.from.len() == 1 && matches!(&query.from[0], TableRef::Named { .. });
        let path = if self.use_indexes && single_table {
            choose_access_path(table, query.where_clause.as_ref())
        } else {
            AccessPath::SeqScan
        };
        let schema = table.schema().without_qualifiers().with_qualifier(&qual);
        let rel = match path {
            AccessPath::SeqScan => {
                let key = format!("table:{name}:{qual}");
                if let Some(hit) = self.from_cache.borrow().get(&key) {
                    self.stats.borrow_mut().rows_scanned += hit.rows.len() as u64;
                    return Ok(Rc::clone(hit));
                }
                self.stats.borrow_mut().rows_scanned += table.len() as u64;
                let rel = Rc::new(Relation {
                    schema,
                    rows: table.rows().to_vec(),
                });
                self.from_cache.borrow_mut().insert(key, Rc::clone(&rel));
                rel
            }
            AccessPath::Index { row_ids, .. } => {
                let mut stats = self.stats.borrow_mut();
                stats.index_probes += 1;
                stats.rows_scanned += row_ids.len() as u64;
                drop(stats);
                Rc::new(Relation {
                    schema,
                    rows: row_ids.iter().map(|&rid| table.row(rid).clone()).collect(),
                })
            }
        };
        Ok(rel)
    }

    /// Materialize a derived table once per statement (SQL92 derived tables
    /// are uncorrelated, so the result cannot depend on outer rows).
    fn materialize_derived(&self, sub: &Query, alias: &str) -> Result<Rc<Relation>> {
        let key = format!("derived:{alias}:{sub}");
        if let Some(hit) = self.from_cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let rel = self.run_query(sub, &[])?;
        let rel = Rc::new(Relation {
            schema: rel.schema.without_qualifiers().with_qualifier(alias),
            rows: rel.rows,
        });
        self.from_cache.borrow_mut().insert(key, Rc::clone(&rel));
        Ok(rel)
    }

    // -------------------------------------------------- projection & sort

    fn run_projection(
        &self,
        query: &Query,
        input_schema: &Schema,
        mut rows: Vec<Tuple>,
        outer: &[Frame<'_>],
    ) -> Result<Relation> {
        let ctx = QueryCtx { engine: self };
        // ORDER BY before projection: sort keys may use non-projected
        // columns. Aliased output columns are substituted first.
        if !query.order_by.is_empty() {
            let keys = self.sort_keys(&query.order_by, query, input_schema, &rows, outer)?;
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.sort_by(|&a, &b| compare_key_rows(&keys[a], &keys[b], &query.order_by));
            rows = order.into_iter().map(|i| rows[i].clone()).collect();
        }
        let (out_schema, projections) = self.projection_plan(query, input_schema)?;
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut frames = Vec::with_capacity(outer.len() + 1);
            frames.push(Frame {
                schema: input_schema,
                tuple: row,
            });
            frames.extend_from_slice(outer);
            let mut values = Vec::with_capacity(projections.len());
            for p in &projections {
                values.push(match p {
                    Projection::Passthrough(idx) => row[*idx].clone(),
                    Projection::Computed(e) => eval(e, &frames, &ctx)?,
                });
            }
            out_rows.push(Tuple::new(values));
        }
        Ok(Relation {
            schema: out_schema,
            rows: out_rows,
        })
    }

    /// Expand the SELECT list against the input schema.
    fn projection_plan(
        &self,
        query: &Query,
        input_schema: &Schema,
    ) -> Result<(Schema, Vec<Projection>)> {
        let mut columns = Vec::new();
        let mut projections = Vec::new();
        for item in &query.select {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in input_schema.columns().iter().enumerate() {
                        columns.push(c.clone());
                        projections.push(Projection::Passthrough(i));
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let t = t.to_ascii_lowercase();
                    let mut any = false;
                    for (i, c) in input_schema.columns().iter().enumerate() {
                        if c.qualifier.as_deref() == Some(t.as_str()) {
                            columns.push(c.clone());
                            projections.push(Projection::Passthrough(i));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(Error::Plan(format!("unknown table '{t}' in '{t}.*'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = output_name(expr, alias.as_deref());
                    let dtype = infer_type(expr, input_schema);
                    columns.push(Column::new(name, dtype));
                    projections.push(Projection::Computed(expr.clone()));
                }
            }
        }
        Ok((Schema::new(dedupe_columns(columns))?, projections))
    }

    /// Evaluate ORDER BY keys against the input rows, substituting select
    /// aliases.
    fn sort_keys(
        &self,
        order_by: &[OrderByItem],
        query: &Query,
        input_schema: &Schema,
        rows: &[Tuple],
        outer: &[Frame<'_>],
    ) -> Result<Vec<Vec<Value>>> {
        let ctx = QueryCtx { engine: self };
        let resolved: Vec<Expr> = order_by
            .iter()
            .map(|o| substitute_alias(&o.expr, query))
            .collect();
        let mut keys = Vec::with_capacity(rows.len());
        for row in rows {
            let mut frames = Vec::with_capacity(outer.len() + 1);
            frames.push(Frame {
                schema: input_schema,
                tuple: row,
            });
            frames.extend_from_slice(outer);
            let key = resolved
                .iter()
                .map(|e| eval(e, &frames, &ctx))
                .collect::<Result<Vec<_>>>()?;
            keys.push(key);
        }
        Ok(keys)
    }

    // ---------------------------------------------------------- aggregates

    fn run_aggregate(
        &self,
        query: &Query,
        input_schema: &Schema,
        rows: Vec<Tuple>,
        outer: &[Frame<'_>],
    ) -> Result<Relation> {
        let ctx = QueryCtx { engine: self };
        // Partition.
        let mut groups: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for row in rows {
            let mut frames = Vec::with_capacity(outer.len() + 1);
            frames.push(Frame {
                schema: input_schema,
                tuple: &row,
            });
            frames.extend_from_slice(outer);
            let key: Vec<Value> = query
                .group_by
                .iter()
                .map(|e| eval(e, &frames, &ctx))
                .collect::<Result<_>>()?;
            let norm = key
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join("\x1f");
            match index.get(&norm) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(norm, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // No GROUP BY + aggregates: one global group, even when empty.
        if query.group_by.is_empty() && groups.is_empty() {
            groups.push((vec![], vec![]));
        }

        // HAVING.
        let mut kept_groups = Vec::new();
        for (key, members) in groups {
            let keep = match &query.having {
                None => true,
                Some(h) => {
                    let v = self.eval_agg(h, input_schema, &members, outer)?;
                    truth(&v) == Some(true)
                }
            };
            if keep {
                kept_groups.push((key, members));
            }
        }

        // Project each group.
        let mut columns = Vec::new();
        for item in &query.select {
            match item {
                SelectItem::Expr { expr, alias } => {
                    columns.push(Column::new(
                        output_name(expr, alias.as_deref()),
                        infer_type(expr, input_schema),
                    ));
                }
                _ => {
                    return Err(Error::Plan(
                        "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
            }
        }
        let out_schema = Schema::new(dedupe_columns(columns))?;
        let mut out_rows = Vec::with_capacity(kept_groups.len());
        for (_, members) in &kept_groups {
            let mut values = Vec::with_capacity(query.select.len());
            for item in &query.select {
                if let SelectItem::Expr { expr, .. } = item {
                    values.push(self.eval_agg(expr, input_schema, members, outer)?);
                }
            }
            out_rows.push(Tuple::new(values));
        }

        // ORDER BY over the aggregate output (references output aliases or
        // aggregate expressions verbatim).
        let mut rel = Relation {
            schema: out_schema,
            rows: out_rows,
        };
        if !query.order_by.is_empty() {
            let ctx = QueryCtx { engine: self };
            let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(rel.rows.len());
            for (i, row) in rel.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(query.order_by.len());
                for o in &query.order_by {
                    // Try against the output schema first, then re-compute
                    // from the group.
                    let frames = [Frame {
                        schema: &rel.schema,
                        tuple: row,
                    }];
                    let v = match eval(&substitute_alias(&o.expr, query), &frames, &ctx) {
                        Ok(v) => v,
                        Err(_) => self.eval_agg(&o.expr, input_schema, &kept_groups[i].1, outer)?,
                    };
                    key.push(v);
                }
                keyed.push((key, row.clone()));
            }
            let mut order: Vec<usize> = (0..keyed.len()).collect();
            order.sort_by(|&a, &b| compare_key_rows(&keyed[a].0, &keyed[b].0, &query.order_by));
            rel.rows = order.into_iter().map(|i| keyed[i].1.clone()).collect();
        }
        Ok(rel)
    }

    /// Evaluate an expression that may contain aggregate calls over the
    /// rows of one group: aggregates are folded to literals first, then the
    /// residue is evaluated against the group's first row.
    fn eval_agg(
        &self,
        expr: &Expr,
        input_schema: &Schema,
        members: &[Tuple],
        outer: &[Frame<'_>],
    ) -> Result<Value> {
        let folded = self.fold_aggregates(expr, input_schema, members, outer)?;
        let ctx = QueryCtx { engine: self };
        let empty_row = Tuple::new(vec![Value::Null; input_schema.len()]);
        let first = members.first().unwrap_or(&empty_row);
        let mut frames = Vec::with_capacity(outer.len() + 1);
        frames.push(Frame {
            schema: input_schema,
            tuple: first,
        });
        frames.extend_from_slice(outer);
        eval(&folded, &frames, &ctx)
    }

    fn fold_aggregates(
        &self,
        expr: &Expr,
        input_schema: &Schema,
        members: &[Tuple],
        outer: &[Frame<'_>],
    ) -> Result<Expr> {
        if let Expr::Function { name, args } = expr {
            if matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max") {
                let v = self.compute_aggregate(name, args, input_schema, members, outer)?;
                return Ok(Expr::Literal(v));
            }
        }
        // Rebuild the node with folded children.
        let rebuilt = match expr {
            Expr::Unary { op, expr: e } => Expr::Unary {
                op: *op,
                expr: Box::new(self.fold_aggregates(e, input_schema, members, outer)?),
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.fold_aggregates(left, input_schema, members, outer)?),
                op: *op,
                right: Box::new(self.fold_aggregates(right, input_schema, members, outer)?),
            },
            Expr::IsNull { expr: e, negated } => Expr::IsNull {
                expr: Box::new(self.fold_aggregates(e, input_schema, members, outer)?),
                negated: *negated,
            },
            Expr::Between {
                expr: e,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.fold_aggregates(e, input_schema, members, outer)?),
                low: Box::new(self.fold_aggregates(low, input_schema, members, outer)?),
                high: Box::new(self.fold_aggregates(high, input_schema, members, outer)?),
                negated: *negated,
            },
            Expr::InList {
                expr: e,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.fold_aggregates(e, input_schema, members, outer)?),
                list: list
                    .iter()
                    .map(|i| self.fold_aggregates(i, input_schema, members, outer))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Case {
                operand,
                branches,
                else_result,
            } => Expr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| {
                        self.fold_aggregates(o, input_schema, members, outer)
                            .map(Box::new)
                    })
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            self.fold_aggregates(w, input_schema, members, outer)?,
                            self.fold_aggregates(t, input_schema, members, outer)?,
                        ))
                    })
                    .collect::<Result<_>>()?,
                else_result: else_result
                    .as_ref()
                    .map(|e| {
                        self.fold_aggregates(e, input_schema, members, outer)
                            .map(Box::new)
                    })
                    .transpose()?,
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.fold_aggregates(a, input_schema, members, outer))
                    .collect::<Result<_>>()?,
            },
            other => other.clone(),
        };
        Ok(rebuilt)
    }

    fn compute_aggregate(
        &self,
        name: &str,
        args: &[Expr],
        input_schema: &Schema,
        members: &[Tuple],
        outer: &[Frame<'_>],
    ) -> Result<Value> {
        let ctx = QueryCtx { engine: self };
        if name == "count" && args.len() == 1 && matches!(args[0], Expr::Wildcard) {
            return Ok(Value::Int(members.len() as i64));
        }
        if args.len() != 1 {
            return Err(Error::Type(format!(
                "{name}() expects exactly one argument"
            )));
        }
        let mut values = Vec::with_capacity(members.len());
        for row in members {
            let mut frames = Vec::with_capacity(outer.len() + 1);
            frames.push(Frame {
                schema: input_schema,
                tuple: row,
            });
            frames.extend_from_slice(outer);
            let v = eval(&args[0], &frames, &ctx)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        match name {
            "count" => Ok(Value::Int(values.len() as i64)),
            "sum" | "avg" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                if name == "avg" {
                    acc.coerce_to(DataType::Float)?
                        .div(&Value::Float(values.len() as f64))
                } else {
                    Ok(acc)
                }
            }
            "min" | "max" => {
                let mut best: Option<Value> = None;
                for v in values {
                    best = Some(match best {
                        None => v,
                        Some(b) => match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) if name == "min" => v,
                            Some(std::cmp::Ordering::Greater) if name == "max" => v,
                            Some(_) => b,
                            None => {
                                return Err(Error::Type(format!(
                                    "{name}() over incomparable values"
                                )))
                            }
                        },
                    });
                }
                Ok(best.unwrap_or(Value::Null))
            }
            _ => unreachable!("caller checked the aggregate name"),
        }
    }
}

/// FROM input rows: shared with the per-statement cache, or owned.
enum InputRows {
    Shared(Rc<Relation>),
    Owned(Vec<Tuple>),
}

impl InputRows {
    fn as_slice(&self) -> &[Tuple] {
        match self {
            InputRows::Shared(rel) => &rel.rows,
            InputRows::Owned(rows) => rows,
        }
    }

    fn into_owned(self) -> Vec<Tuple> {
        match self {
            InputRows::Shared(rel) => rel.rows.clone(),
            InputRows::Owned(rows) => rows,
        }
    }
}

/// How one output column is produced.
enum Projection {
    /// Copy input column by position (wildcards).
    Passthrough(usize),
    /// Evaluate an expression.
    Computed(Expr),
}

/// Sub-query evaluation bridge handed to the expression evaluator.
struct QueryCtx<'e> {
    engine: &'e Engine,
}

impl SubqueryEval for QueryCtx<'_> {
    fn eval_subquery(&self, query: &Query, frames: &[Frame<'_>]) -> Result<Vec<Tuple>> {
        self.engine.stats.borrow_mut().subquery_evals += 1;
        let rel = self.engine.run_query(query, frames)?;
        Ok(rel.rows)
    }

    fn eval_subquery_exists(&self, query: &Query, frames: &[Frame<'_>]) -> Result<bool> {
        self.engine.stats.borrow_mut().subquery_evals += 1;
        self.engine.run_query_exists(query, frames)
    }
}

/// The PREFERRING/GROUPING/BUT ONLY clauses and quality functions never
/// reach the host engine — the Preference SQL layer rewrites them away.
fn reject_preference_constructs(query: &Query) -> Result<()> {
    if query.preferring.is_some() || !query.grouping.is_empty() || query.but_only.is_some() {
        return Err(Error::Unsupported(
            "PREFERRING/GROUPING/BUT ONLY must be rewritten by the Preference \
             SQL optimizer before reaching the host SQL engine"
                .into(),
        ));
    }
    Ok(())
}

fn cross_join(ls: Schema, lr: Vec<Tuple>, rs: Schema, rr: Vec<Tuple>) -> (Schema, Vec<Tuple>) {
    let schema = ls.join(&rs);
    let mut rows = Vec::with_capacity(lr.len() * rr.len());
    for l in &lr {
        for r in &rr {
            rows.push(l.join(r));
        }
    }
    (schema, rows)
}

/// Substitute a bare output-alias reference in ORDER BY with its select
/// expression (`SELECT price * 2 AS p ... ORDER BY p`).
fn substitute_alias(expr: &Expr, query: &Query) -> Expr {
    if let Expr::Column {
        qualifier: None,
        name,
    } = expr
    {
        for item in &query.select {
            if let SelectItem::Expr {
                expr: sel,
                alias: Some(a),
            } = item
            {
                if a == name {
                    return sel.clone();
                }
            }
        }
    }
    expr.clone()
}

fn compare_key_rows(a: &[Value], b: &[Value], order_by: &[OrderByItem]) -> std::cmp::Ordering {
    for (i, o) in order_by.iter().enumerate() {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if o.asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Make output column names unique (SQL permits `SELECT a1.x, a2.x` and
/// repeated aggregates; our [`Schema`] requires unique names, so later
/// duplicates get a positional suffix).
fn dedupe_columns(columns: Vec<Column>) -> Vec<Column> {
    let mut out: Vec<Column> = Vec::with_capacity(columns.len());
    for mut c in columns {
        let clashes = |name: &str, out: &[Column]| {
            out.iter()
                .any(|o| o.name == name && o.qualifier == c.qualifier)
        };
        if clashes(&c.name, &out) {
            let mut k = 2;
            while clashes(&format!("{}_{k}", c.name), &out) {
                k += 1;
            }
            c.name = format!("{}_{k}", c.name);
        }
        out.push(c);
    }
    out
}

/// Output column name for an expression select item.
fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_owned();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        other => other.to_string().to_ascii_lowercase(),
    }
}

/// Best-effort static type inference for output schemas (informational —
/// runtime values carry their own types).
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Column { qualifier, name } => schema
            .resolve(qualifier.as_deref(), name)
            .map(|i| schema.column(i).data_type)
            .unwrap_or(DataType::Str),
        Expr::Unary { expr, .. } => infer_type(expr, schema),
        Expr::Binary { left, op, right } => match op {
            prefsql_parser::ast::BinaryOp::Plus
            | prefsql_parser::ast::BinaryOp::Minus
            | prefsql_parser::ast::BinaryOp::Mul
            | prefsql_parser::ast::BinaryOp::Div => {
                let l = infer_type(left, schema);
                let r = infer_type(right, schema);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            _ => DataType::Bool,
        },
        Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Like { .. } => DataType::Bool,
        Expr::Case {
            branches,
            else_result,
            ..
        } => branches
            .first()
            .map(|(_, t)| infer_type(t, schema))
            .or_else(|| else_result.as_ref().map(|e| infer_type(e, schema)))
            .unwrap_or(DataType::Str),
        Expr::Function { name, args } => match name.as_str() {
            "count" | "length" => DataType::Int,
            "avg" => DataType::Float,
            "abs" | "sum" | "min" | "max" | "round" | "floor" | "ceil" | "least" | "greatest"
            | "coalesce" => args
                .first()
                .map(|a| infer_type(a, schema))
                .unwrap_or(DataType::Float),
            "lower" | "upper" => DataType::Str,
            _ => DataType::Str,
        },
        Expr::ScalarSubquery(_) => DataType::Str,
        Expr::Wildcard => DataType::Str,
    }
}
