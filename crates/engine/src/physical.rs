//! The physical operator layer: Volcano-style streaming execution of a
//! [`PlanNode`] tree.
//!
//! Every operator implements [`Operator`] (`open`/`next`/`close`) and
//! pulls [`Tuple`]s from its children one at a time, so large inputs
//! stream through filters, joins, projections and limits instead of
//! materializing at every step. Pipeline breakers (sort, distinct's seen
//! set, aggregation, the per-statement materialization of views and
//! derived tables) buffer exactly where the semantics require it and
//! nowhere else.
//!
//! The layer is open: other crates can implement [`Operator`] and splice
//! their own nodes on top of [`build`]-produced sources — the Preference
//! SQL facade does exactly that for its native BMO operator.

use crate::eval::{eval, truth, Frame};
use crate::exec::{ExecCtx, Relation};
use crate::plan::{AggSpec, PlanNode, Projection, SortKey};
use prefsql_parser::ast::Expr;
use prefsql_types::{DataType, Error, Result, Schema, Tuple, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A Volcano-style physical operator: a pull-based tuple cursor.
pub trait Operator {
    /// Acquire resources and prepare to produce tuples.
    fn open(&mut self) -> Result<()>;
    /// The next output tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>>;
    /// Append up to `max` tuples (`max >= 1`) to `out`. Returns
    /// `Ok(true)` while the stream may still have tuples and `Ok(false)`
    /// once it is exhausted; a `true` return with a coincidentally
    /// drained input simply makes the following call report `false`
    /// having appended nothing.
    ///
    /// The default implementation loops [`Operator::next`]; hot
    /// operators override it to amortize dynamic dispatch and per-tuple
    /// `Result` plumbing (scans and materialized buffers copy slices,
    /// filters and projections process whole child batches). `next` and
    /// `next_batch` advance the same cursor, so callers may interleave
    /// them freely.
    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        for _ in 0..max {
            match self.next()? {
                Some(t) => out.push(t),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
    /// Borrowed batched access: operators whose output already sits in a
    /// buffer (scans, index probes, materialized views, sorted or
    /// aggregated results) expose the next run of up to `max` tuples
    /// (`max >= 1`) as a borrowed slice, advancing the same cursor
    /// `next`/`next_batch` use. Returns `Ok(None)` when the operator
    /// streams and has no buffer to lend (the default) — callers then
    /// fall back to [`Operator::next_batch`]; an empty slice means
    /// exhausted.
    ///
    /// This is what makes batching pay on this engine: tuples are
    /// heap-allocated, so consumers that can work on borrowed tuples
    /// (filters deciding survival, projections building narrow output
    /// rows) skip cloning the wide source tuples entirely.
    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        let _ = max;
        Ok(None)
    }
    /// Selection-vector variant of [`Operator::next_slice`]: lend a
    /// borrowed batch together with the indices into it that this
    /// operator actually emits (appended to `sel`). Filters implement
    /// this by lending their child's slice untouched and selecting the
    /// surviving indices, which lets a projection above a filtered scan
    /// run the whole chain without cloning a single wide source tuple.
    /// The default delegates to `next_slice` with an all-rows selection;
    /// `Ok(None)` and the empty-slice end marker behave as there.
    fn next_selection(&mut self, max: usize, sel: &mut Vec<usize>) -> Result<Option<&[Tuple]>> {
        match self.next_slice(max)? {
            Some(slice) => {
                sel.extend(0..slice.len());
                Ok(Some(slice))
            }
            None => Ok(None),
        }
    }
    /// Release resources (idempotent).
    fn close(&mut self);
    /// Operator-specific observability counters, read at close by the
    /// instrumentation shim (`EXPLAIN ANALYZE`): hash joins report
    /// build/probe/spilled rows, preference operators dominance
    /// comparisons. The default reports nothing.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A boxed operator tied to the lifetime of its plan/context/environment.
pub type BoxOperator<'a> = Box<dyn Operator + 'a>;

/// Build the physical operator tree for a plan node. `outer` is the
/// enclosing environment for correlated sub-queries (empty for top-level
/// queries). When the statement context carries a profiler, every
/// operator — this node and, through the recursive calls below, each of
/// its children — is wrapped in the instrumentation shim.
pub fn build<'a>(
    ctx: &'a ExecCtx<'a>,
    node: &'a PlanNode,
    outer: &'a [Frame<'a>],
) -> BoxOperator<'a> {
    let op = build_plain(ctx, node, outer);
    match ctx.profiler() {
        Some(p) => Box::new(crate::metrics::Instrumented::new(op, p, node)),
        None => op,
    }
}

/// The uninstrumented construction dispatch behind [`build`].
fn build_plain<'a>(
    ctx: &'a ExecCtx<'a>,
    node: &'a PlanNode,
    outer: &'a [Frame<'a>],
) -> BoxOperator<'a> {
    match node {
        PlanNode::Nothing { .. } => Box::new(NothingOp { done: false }),
        PlanNode::SeqScan { table, .. } => Box::new(SeqScanOp {
            ctx,
            table,
            rows: &[],
            pos: 0,
            paged: None,
            buf: Vec::new(),
            buf_pos: 0,
            scan_pos: 0,
        }),
        PlanNode::MatViewScan { view, .. } => Box::new(MatViewScanOp {
            ctx,
            view,
            rows: Vec::new(),
            pos: 0,
        }),
        PlanNode::IndexScan { table, row_ids, .. } => Box::new(IndexScanOp {
            ctx,
            table,
            row_ids,
            rows: Vec::new(),
            pos: 0,
        }),
        PlanNode::Materialize {
            cache_key,
            input,
            schema,
            ..
        } => Box::new(MaterializeOp {
            ctx,
            input,
            cache_key,
            schema,
            rel: None,
            pos: 0,
        }),
        PlanNode::NestedLoopJoin {
            left,
            right,
            on,
            schema,
        } => Box::new(NestedLoopJoinOp {
            ctx,
            left: build(ctx, left, outer),
            right,
            on: on.as_ref(),
            schema,
            outer,
            right_rows: None,
            cur: None,
            ridx: 0,
        }),
        PlanNode::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
            window,
            schema,
        } => Box::new(crate::join::HashJoinOp::new(
            ctx,
            build(ctx, left, outer),
            build(ctx, right, outer),
            keys,
            residual.as_ref(),
            *build_left,
            *window,
            left.schema(),
            right.schema(),
            schema,
            outer,
        )),
        PlanNode::Filter { input, pred } => Box::new(FilterOp {
            ctx,
            child_schema: input.schema(),
            input: build(ctx, input, outer),
            pred,
            outer,
            batch: Vec::new(),
        }),
        PlanNode::Project {
            input, projections, ..
        } => Box::new(ProjectOp {
            ctx,
            child_schema: input.schema(),
            input: build(ctx, input, outer),
            projections,
            outer,
            batch: Vec::new(),
            sel: Vec::new(),
        }),
        PlanNode::Sort { input, keys } => Box::new(SortOp {
            ctx,
            child_schema: input.schema(),
            input: build(ctx, input, outer),
            keys,
            outer,
            sorted: Vec::new(),
            pos: 0,
        }),
        PlanNode::Distinct { input } => Box::new(DistinctOp {
            input: build(ctx, input, outer),
            seen: Vec::new(),
        }),
        PlanNode::Limit { input, n, .. } => Box::new(LimitOp {
            input: build(ctx, input, outer),
            remaining: *n,
        }),
        PlanNode::Aggregate {
            input,
            spec,
            schema,
        } => Box::new(AggregateOp {
            ctx,
            child_schema: input.schema(),
            input: build(ctx, input, outer),
            spec,
            schema,
            outer,
            out: Vec::new(),
            pos: 0,
        }),
    }
}

/// Build, open and fully drain the operator tree for `node` into a
/// materialized [`Relation`].
pub fn execute(ctx: &ExecCtx<'_>, node: &PlanNode, outer: &[Frame<'_>]) -> Result<Relation> {
    let schema = node.schema().clone();
    let mut op = build(ctx, node, outer);
    let rows = drain(op.as_mut())?;
    Ok(Relation { schema, rows })
}

/// Tuples pulled per [`Operator::next_batch`] call by the default drive
/// loops: large enough to amortize a virtual call over a cache-friendly
/// run of tuples, small enough to keep scratch buffers resident.
pub const DEFAULT_BATCH: usize = 1024;

/// Shared [`Operator::next_batch`] body for buffered operators: append
/// the next run of up to `max` tuples of `rows` to `out`, advancing
/// `pos`. Returns `true` while tuples remain.
pub fn batch_from(rows: &[Tuple], pos: &mut usize, out: &mut Vec<Tuple>, max: usize) -> bool {
    let end = (*pos + max).min(rows.len());
    out.extend_from_slice(&rows[*pos..end]);
    *pos = end;
    *pos < rows.len()
}

/// Shared [`Operator::next_slice`] body for buffered operators: lend
/// the next run of up to `max` tuples of `rows`, advancing `pos`.
/// Empty at exhaustion.
pub fn slice_from<'a>(rows: &'a [Tuple], pos: &mut usize, max: usize) -> &'a [Tuple] {
    let end = (*pos + max).min(rows.len());
    let slice = &rows[*pos..end];
    *pos = end;
    slice
}

/// Open `op`, pull every tuple, and close it — the operator is closed
/// even when opening or pulling errors, so resources held by the
/// sub-tree are always released. Pipeline breakers use this to consume
/// their children. Pulls batches of [`DEFAULT_BATCH`].
pub fn drain(op: &mut (dyn Operator + '_)) -> Result<Vec<Tuple>> {
    drain_batched(op, DEFAULT_BATCH)
}

/// [`drain`] with an explicit batch size (clamped to at least 1) — the
/// batch-boundary tests sweep this to pin batched ≡ streaming.
pub fn drain_batched(op: &mut (dyn Operator + '_), batch: usize) -> Result<Vec<Tuple>> {
    let batch = batch.max(1);
    let mut rows = Vec::new();
    let result = op.open().and_then(|()| loop {
        match op.next_batch(&mut rows, batch) {
            Ok(true) => {}
            Ok(false) => break Ok(()),
            Err(e) => break Err(e),
        }
    });
    op.close();
    result?;
    Ok(rows)
}

/// The tuple-at-a-time drive loop: one virtual call and one `Result`
/// per tuple through [`Operator::next`]. Kept as the differential
/// baseline the batched loop is tested against.
pub fn drain_tuple_at_a_time(op: &mut (dyn Operator + '_)) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    let result = op.open().and_then(|()| loop {
        match op.next() {
            Ok(Some(t)) => rows.push(t),
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    });
    op.close();
    result?;
    Ok(rows)
}

/// Evaluate `expr` for `tuple` under `schema`, with the enclosing
/// environment appended. The statement context doubles as the
/// sub-query evaluation bridge.
pub(crate) fn eval_row(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    schema: &Schema,
    tuple: &Tuple,
    outer: &[Frame<'_>],
) -> Result<Value> {
    let mut frames = Vec::with_capacity(outer.len() + 1);
    frames.push(Frame { schema, tuple });
    frames.extend_from_slice(outer);
    eval(expr, &frames, ctx)
}

fn compare_key_rows(a: &[Value], b: &[Value], asc: &[bool]) -> Ordering {
    for (i, &up) in asc.iter().enumerate() {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if up { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

// ------------------------------------------------------------- sources

/// `SELECT` without `FROM`: one empty tuple.
struct NothingOp {
    done: bool,
}

impl Operator for NothingOp {
    fn open(&mut self) -> Result<()> {
        self.done = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(Tuple::new(vec![])))
        }
    }

    fn close(&mut self) {
        self.done = true;
    }
}

/// Full table scan. The in-memory backend streams straight off the
/// catalog's stored rows with no upfront copy — a `LIMIT` above stops
/// the scan after a handful of clones no matter how large the table is.
/// The paged backend decodes page-sized batches through the buffer pool
/// into an owned buffer that `next_slice` then lends, so consumers see
/// the same borrowed-batch interface either way.
struct SeqScanOp<'a> {
    ctx: &'a ExecCtx<'a>,
    table: &'a str,
    /// Mem fast path: the backend's contiguous rows.
    rows: &'a [Tuple],
    pos: usize,
    /// Paged path: the table handle to pull batches from (`None` = mem).
    paged: Option<&'a prefsql_storage::Table>,
    /// Paged path: the owned decode buffer `next_slice` lends from.
    buf: Vec<Tuple>,
    buf_pos: usize,
    /// Paged path: the backend scan cursor (rid of the next refill).
    scan_pos: usize,
}

impl SeqScanOp<'_> {
    /// Refill the paged buffer with up to `max` rows; `false` at EOF.
    fn refill(&mut self, max: usize) -> Result<bool> {
        let table = self.paged.expect("refill is paged-only");
        self.buf.clear();
        self.buf_pos = 0;
        table.scan_batch(&mut self.scan_pos, &mut self.buf, max)?;
        Ok(!self.buf.is_empty())
    }

    /// Charge `n` rows to the statement's scan counter. Rows are charged
    /// as they are *produced*, not at open: a `LIMIT` (or a
    /// short-circuiting `EXISTS`) that stops pulling early really did
    /// touch fewer rows, and `rows_scanned` reports exactly that.
    fn charge(&self, n: usize) {
        if n > 0 {
            self.ctx.stats.borrow_mut().rows_scanned += n as u64;
        }
    }
}

impl Operator for SeqScanOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.scan_pos = 0;
        self.buf.clear();
        self.buf_pos = 0;
        let table = self.ctx.catalog().table(self.table)?;
        match table.mem_rows() {
            Some(rows) => {
                self.rows = rows;
                self.paged = None;
            }
            None => {
                self.rows = &[];
                self.paged = Some(table);
            }
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.paged.is_none() {
            return match self.rows.get(self.pos) {
                Some(t) => {
                    self.pos += 1;
                    self.charge(1);
                    Ok(Some(t.clone()))
                }
                None => Ok(None),
            };
        }
        if self.buf_pos >= self.buf.len() && !self.refill(DEFAULT_BATCH)? {
            return Ok(None);
        }
        let t = self.buf[self.buf_pos].clone();
        self.buf_pos += 1;
        self.charge(1);
        Ok(Some(t))
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        let Some(table) = self.paged else {
            let before = out.len();
            let more = batch_from(self.rows, &mut self.pos, out, max);
            self.charge(out.len() - before);
            return Ok(more);
        };
        // Emit any rows `next`/`next_slice` already decoded first, then
        // pull straight from the backend into the caller's buffer.
        if self.buf_pos < self.buf.len() {
            let end = (self.buf_pos + max).min(self.buf.len());
            out.extend_from_slice(&self.buf[self.buf_pos..end]);
            self.charge(end - self.buf_pos);
            self.buf_pos = end;
            return Ok(true);
        }
        let before = out.len();
        let more = table.scan_batch(&mut self.scan_pos, out, max)?;
        self.charge(out.len() - before);
        Ok(more)
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        if self.paged.is_none() {
            let slice = slice_from(self.rows, &mut self.pos, max);
            self.charge(slice.len());
            return Ok(Some(slice));
        }
        if self.buf_pos >= self.buf.len() && !self.refill(max)? {
            return Ok(Some(&[]));
        }
        let end = (self.buf_pos + max).min(self.buf.len());
        self.charge(end - self.buf_pos);
        let slice = &self.buf[self.buf_pos..end];
        self.buf_pos = end;
        Ok(Some(slice))
    }

    fn close(&mut self) {
        self.rows = &[];
        self.paged = None;
        self.buf = Vec::new();
    }
}

/// Materialized preference view scan: stream the stored winner rows in
/// entry order. Winners are cloned at open (the stored entries stay put),
/// and count as scanned rows — the serving cost of a cache hit.
struct MatViewScanOp<'a> {
    ctx: &'a ExecCtx<'a>,
    view: &'a str,
    rows: Vec<Tuple>,
    pos: usize,
}

impl Operator for MatViewScanOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        let def = self.ctx.catalog().matview(self.view).ok_or_else(|| {
            Error::Catalog(format!(
                "unknown materialized preference view '{}'",
                self.view
            ))
        })?;
        self.rows = def.winners();
        self.ctx.stats.borrow_mut().rows_scanned += self.rows.len() as u64;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.rows.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        Ok(batch_from(&self.rows, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        Ok(Some(slice_from(&self.rows, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.rows = Vec::new();
    }
}

/// Index probe: stream the candidate rows chosen at plan time. The parent
/// filter re-checks the full predicate, so the probe is purely an
/// optimization.
struct IndexScanOp<'a> {
    ctx: &'a ExecCtx<'a>,
    table: &'a str,
    row_ids: &'a [usize],
    rows: Vec<Tuple>,
    pos: usize,
}

impl Operator for IndexScanOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        let table = self.ctx.catalog().table(self.table)?;
        let mut stats = self.ctx.stats.borrow_mut();
        stats.index_probes += 1;
        stats.rows_scanned += self.row_ids.len() as u64;
        drop(stats);
        self.rows = self
            .row_ids
            .iter()
            .map(|&rid| table.fetch_row(rid))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.rows.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        Ok(batch_from(&self.rows, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        Ok(Some(slice_from(&self.rows, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.rows = Vec::new();
    }
}

/// Execute a sub-plan once per statement (views, derived tables) and
/// stream from the cached result thereafter.
struct MaterializeOp<'a> {
    ctx: &'a ExecCtx<'a>,
    input: &'a PlanNode,
    cache_key: &'a str,
    schema: &'a Schema,
    rel: Option<Arc<Relation>>,
    pos: usize,
}

impl Operator for MaterializeOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        if let Some(hit) = self.ctx.from_cache.borrow().get(self.cache_key) {
            self.rel = Some(Arc::clone(hit));
            return Ok(());
        }
        // Views and derived tables are uncorrelated in SQL92: execute with
        // an empty environment, then re-qualify the schema.
        let rel = execute(self.ctx, self.input, &[])?;
        let rel = Arc::new(Relation {
            schema: self.schema.clone(),
            rows: rel.rows,
        });
        self.ctx
            .from_cache
            .borrow_mut()
            .insert(self.cache_key.to_string(), Arc::clone(&rel));
        self.rel = Some(rel);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let rel = self.rel.as_ref().expect("open() before next()");
        match rel.rows.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        let rel = self.rel.as_ref().expect("open() before next_batch()");
        Ok(batch_from(&rel.rows, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        let rel = self.rel.as_ref().expect("open() before next_slice()");
        Ok(Some(slice_from(&rel.rows, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.rel = None;
    }
}

// ------------------------------------------------------- tuple pipeline

/// Keep tuples whose predicate evaluates to exactly TRUE.
struct FilterOp<'a> {
    ctx: &'a ExecCtx<'a>,
    child_schema: &'a Schema,
    input: BoxOperator<'a>,
    pred: &'a Expr,
    outer: &'a [Frame<'a>],
    /// Reused child-batch scratch buffer for [`Operator::next_batch`].
    batch: Vec<Tuple>,
}

impl Operator for FilterOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            let v = eval_row(self.ctx, self.pred, self.child_schema, &t, self.outer)?;
            if truth(&v) == Some(true) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        // The filter only shrinks a batch, so requesting `max - appended`
        // from the child can never overfill `out`.
        let mut appended = 0;
        // Fast path: a buffered child lends borrowed slices — evaluate
        // the predicate on borrowed tuples and clone only the survivors,
        // so dropped rows are never copied at all.
        let (ctx, schema, pred, outer) = (self.ctx, self.child_schema, self.pred, self.outer);
        while appended < max {
            let Some(slice) = self.input.next_slice(max - appended)? else {
                break;
            };
            if slice.is_empty() {
                return Ok(false);
            }
            for t in slice {
                let v = eval_row(ctx, pred, schema, t, outer)?;
                if truth(&v) == Some(true) {
                    out.push(t.clone());
                    appended += 1;
                }
            }
        }
        // General path: a streaming child hands owned batches through
        // the scratch buffer.
        while appended < max {
            self.batch.clear();
            let more = self.input.next_batch(&mut self.batch, max - appended)?;
            for t in self.batch.drain(..) {
                let v = eval_row(self.ctx, self.pred, self.child_schema, &t, self.outer)?;
                if truth(&v) == Some(true) {
                    out.push(t);
                    appended += 1;
                }
            }
            if !more {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn next_selection(&mut self, max: usize, sel: &mut Vec<usize>) -> Result<Option<&[Tuple]>> {
        // Lend the child's borrowed slice untouched and select the
        // surviving indices — no tuple is cloned at all; the parent
        // copies only what it keeps.
        let (ctx, schema, pred, outer) = (self.ctx, self.child_schema, self.pred, self.outer);
        match self.input.next_slice(max)? {
            None => Ok(None),
            Some(slice) => {
                for (i, t) in slice.iter().enumerate() {
                    let v = eval_row(ctx, pred, schema, t, outer)?;
                    if truth(&v) == Some(true) {
                        sel.push(i);
                    }
                }
                Ok(Some(slice))
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
        self.batch = Vec::new();
    }
}

/// Materialize one side of a join once per statement. Join inputs come
/// from `FROM` table references, which are uncorrelated in SQL92, so
/// the result is cached in the statement's materialization cache — a
/// plan re-opened inside the same statement (a correlated sub-query
/// probed per outer row, a cached statement re-driven) reuses it
/// instead of re-scanning.
pub(crate) fn materialize_join_side<'a>(
    ctx: &'a ExecCtx<'a>,
    node: &'a PlanNode,
) -> Result<Arc<Relation>> {
    let key = format!("join-side:{node:?}");
    if let Some(hit) = ctx.from_cache.borrow().get(&key) {
        return Ok(Arc::clone(hit));
    }
    let rel = Arc::new(execute(ctx, node, &[])?);
    ctx.from_cache.borrow_mut().insert(key, Arc::clone(&rel));
    Ok(rel)
}

/// Nested-loop join: the right input is materialized once per statement
/// (see [`materialize_join_side`]), the left input streams.
struct NestedLoopJoinOp<'a> {
    ctx: &'a ExecCtx<'a>,
    left: BoxOperator<'a>,
    right: &'a PlanNode,
    on: Option<&'a Expr>,
    schema: &'a Schema,
    outer: &'a [Frame<'a>],
    right_rows: Option<Arc<Relation>>,
    cur: Option<Tuple>,
    ridx: usize,
}

impl Operator for NestedLoopJoinOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right_rows = Some(materialize_join_side(self.ctx, self.right)?);
        self.cur = None;
        self.ridx = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let right_rows = &self.right_rows.as_ref().expect("open() before next()").rows;
        loop {
            if self.cur.is_none() {
                self.cur = self.left.next()?;
                self.ridx = 0;
                if self.cur.is_none() {
                    return Ok(None);
                }
            }
            let l = self.cur.as_ref().expect("left row set above");
            while self.ridx < right_rows.len() {
                let joined = l.join(&right_rows[self.ridx]);
                self.ridx += 1;
                let keep = match self.on {
                    None => true,
                    Some(cond) => {
                        let v = eval_row(self.ctx, cond, self.schema, &joined, self.outer)?;
                        truth(&v) == Some(true)
                    }
                };
                if keep {
                    return Ok(Some(joined));
                }
            }
            self.cur = None;
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right_rows = None;
    }
}

/// Evaluate the SELECT list per tuple.
struct ProjectOp<'a> {
    ctx: &'a ExecCtx<'a>,
    child_schema: &'a Schema,
    input: BoxOperator<'a>,
    projections: &'a [Projection],
    outer: &'a [Frame<'a>],
    /// Reused child-batch scratch buffer for [`Operator::next_batch`].
    batch: Vec<Tuple>,
    /// Reused selection-vector scratch for the borrowed fast path.
    sel: Vec<usize>,
}

/// Evaluate one SELECT list against one (borrowed) child tuple.
fn project_one(
    ctx: &ExecCtx<'_>,
    child_schema: &Schema,
    projections: &[Projection],
    outer: &[Frame<'_>],
    t: &Tuple,
) -> Result<Tuple> {
    let mut values = Vec::with_capacity(projections.len());
    for p in projections {
        values.push(match p {
            Projection::Passthrough(idx) => t[*idx].clone(),
            Projection::Computed(e) => eval_row(ctx, e, child_schema, t, outer)?,
        });
    }
    Ok(Tuple::new(values))
}

impl Operator for ProjectOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let Some(t) = self.input.next()? else {
            return Ok(None);
        };
        Ok(Some(project_one(
            self.ctx,
            self.child_schema,
            self.projections,
            self.outer,
            &t,
        )?))
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        let mut appended = 0;
        // Fast path: project straight off a borrowed slice-with-selection
        // (a buffered child, or a filter lending its own buffered
        // child's slice) — the wide source tuples are never cloned.
        let (ctx, schema, projections, outer) =
            (self.ctx, self.child_schema, self.projections, self.outer);
        let mut sel = std::mem::take(&mut self.sel);
        while appended < max {
            sel.clear();
            let Some(slice) = self.input.next_selection(max - appended, &mut sel)? else {
                break;
            };
            if slice.is_empty() {
                self.sel = sel;
                return Ok(false);
            }
            for &i in &sel {
                out.push(project_one(ctx, schema, projections, outer, &slice[i])?);
                appended += 1;
            }
        }
        self.sel = sel;
        // General path: one projected tuple per owned child-batch tuple
        // through the scratch buffer.
        while appended < max {
            self.batch.clear();
            let more = self.input.next_batch(&mut self.batch, max - appended)?;
            for t in &self.batch {
                out.push(project_one(
                    self.ctx,
                    self.child_schema,
                    self.projections,
                    self.outer,
                    t,
                )?);
                appended += 1;
            }
            if !more {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn close(&mut self) {
        self.input.close();
        self.batch = Vec::new();
    }
}

/// Stable sort — a pipeline breaker: drains its input at `open`.
struct SortOp<'a> {
    ctx: &'a ExecCtx<'a>,
    child_schema: &'a Schema,
    input: BoxOperator<'a>,
    keys: &'a [SortKey],
    outer: &'a [Frame<'a>],
    sorted: Vec<Tuple>,
    pos: usize,
}

impl Operator for SortOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        let rows = drain(self.input.as_mut())?;
        let mut keyed: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for row in &rows {
            let key = self
                .keys
                .iter()
                .map(|k| eval_row(self.ctx, &k.expr, self.child_schema, row, self.outer))
                .collect::<Result<Vec<_>>>()?;
            keyed.push(key);
        }
        let asc: Vec<bool> = self.keys.iter().map(|k| k.asc).collect();
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| compare_key_rows(&keyed[a], &keyed[b], &asc));
        self.sorted = order.into_iter().map(|i| rows[i].clone()).collect();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.sorted.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        Ok(batch_from(&self.sorted, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        Ok(Some(slice_from(&self.sorted, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.input.close();
        self.sorted = Vec::new();
    }
}

/// Duplicate elimination; first occurrence wins, input order preserved.
struct DistinctOp<'a> {
    input: BoxOperator<'a>,
    seen: Vec<Tuple>,
}

impl Operator for DistinctOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.seen.clear();
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            let dup = self
                .seen
                .iter()
                .any(|s| s.values().iter().zip(t.values()).all(|(a, b)| a.key_eq(b)));
            if !dup {
                self.seen.push(t.clone());
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.input.close();
        self.seen = Vec::new();
    }
}

/// Emit at most `n` tuples, then stop pulling from the input entirely.
struct LimitOp<'a> {
    input: BoxOperator<'a>,
    remaining: u64,
}

impl Operator for LimitOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        if self.remaining == 0 {
            return Ok(false);
        }
        // Never request more than the remaining quota from the child: a
        // LIMIT cutoff in the middle of a batch must stop the pull there.
        let want = self.remaining.min(max as u64) as usize;
        let mut taken = 0;
        let mut more = true;
        while taken < want && more {
            // Prefer the child's borrowed slice (still quota-clamped).
            match self.input.next_slice(want - taken)? {
                Some([]) => more = false,
                Some(slice) => {
                    out.extend_from_slice(slice);
                    taken += slice.len();
                }
                None => {
                    let before = out.len();
                    more = self.input.next_batch(out, want - taken)?;
                    taken += out.len() - before;
                }
            }
        }
        self.remaining -= taken as u64;
        if !more {
            self.remaining = 0;
        }
        Ok(self.remaining > 0)
    }

    fn close(&mut self) {
        self.input.close();
    }
}

// ----------------------------------------------------------- aggregates

/// Grouped aggregation — a pipeline breaker: drains its input, groups,
/// applies HAVING, projects each group and sorts the aggregate output.
struct AggregateOp<'a> {
    ctx: &'a ExecCtx<'a>,
    child_schema: &'a Schema,
    input: BoxOperator<'a>,
    spec: &'a AggSpec,
    schema: &'a Schema,
    outer: &'a [Frame<'a>],
    out: Vec<Tuple>,
    pos: usize,
}

impl Operator for AggregateOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        let rows = drain(self.input.as_mut())?;
        self.out = run_aggregate(
            self.ctx,
            self.spec,
            self.child_schema,
            self.schema,
            rows,
            self.outer,
        )?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.out.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        Ok(batch_from(&self.out, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        Ok(Some(slice_from(&self.out, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.input.close();
        self.out = Vec::new();
    }
}

fn run_aggregate(
    ctx: &ExecCtx<'_>,
    spec: &AggSpec,
    input_schema: &Schema,
    out_schema: &Schema,
    rows: Vec<Tuple>,
    outer: &[Frame<'_>],
) -> Result<Vec<Tuple>> {
    // Partition.
    let mut groups: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for row in rows {
        let key: Vec<Value> = spec
            .group_by
            .iter()
            .map(|e| eval_row(ctx, e, input_schema, &row, outer))
            .collect::<Result<_>>()?;
        let norm = key
            .iter()
            .map(|v| format!("{v:?}"))
            .collect::<Vec<_>>()
            .join("\x1f");
        match index.get(&norm) {
            Some(&g) => groups[g].1.push(row),
            None => {
                index.insert(norm, groups.len());
                groups.push((key, vec![row]));
            }
        }
    }
    // No GROUP BY + aggregates: one global group, even when empty.
    if spec.group_by.is_empty() && groups.is_empty() {
        groups.push((vec![], vec![]));
    }

    // HAVING.
    let mut kept_groups = Vec::new();
    for (key, members) in groups {
        let keep = match &spec.having {
            None => true,
            Some(h) => {
                let v = eval_agg(ctx, h, input_schema, &members, outer)?;
                truth(&v) == Some(true)
            }
        };
        if keep {
            kept_groups.push((key, members));
        }
    }

    // Project each group.
    let mut out_rows = Vec::with_capacity(kept_groups.len());
    for (_, members) in &kept_groups {
        let mut values = Vec::with_capacity(spec.select.len());
        for expr in &spec.select {
            values.push(eval_agg(ctx, expr, input_schema, members, outer)?);
        }
        out_rows.push(Tuple::new(values));
    }

    // ORDER BY over the aggregate output (references output aliases or
    // aggregate expressions verbatim).
    if !spec.order_by.is_empty() {
        let mut keys: Vec<Vec<Value>> = Vec::with_capacity(out_rows.len());
        for (i, row) in out_rows.iter().enumerate() {
            let mut key = Vec::with_capacity(spec.order_by.len());
            for o in &spec.order_by {
                // Try against the output schema first, then re-compute
                // from the group.
                let v = match eval_row(ctx, &o.output, out_schema, row, &[]) {
                    Ok(v) => v,
                    Err(_) => eval_agg(ctx, &o.original, input_schema, &kept_groups[i].1, outer)?,
                };
                key.push(v);
            }
            keys.push(key);
        }
        let asc: Vec<bool> = spec.order_by.iter().map(|o| o.asc).collect();
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| compare_key_rows(&keys[a], &keys[b], &asc));
        out_rows = order.into_iter().map(|i| out_rows[i].clone()).collect();
    }
    Ok(out_rows)
}

/// Evaluate an expression that may contain aggregate calls over the rows
/// of one group: aggregates are folded to literals first, then the
/// residue is evaluated against the group's first row.
fn eval_agg(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    input_schema: &Schema,
    members: &[Tuple],
    outer: &[Frame<'_>],
) -> Result<Value> {
    let folded = fold_aggregates(ctx, expr, input_schema, members, outer)?;
    let empty_row = Tuple::new(vec![Value::Null; input_schema.len()]);
    let first = members.first().unwrap_or(&empty_row);
    eval_row(ctx, &folded, input_schema, first, outer)
}

fn fold_aggregates(
    ctx: &ExecCtx<'_>,
    expr: &Expr,
    input_schema: &Schema,
    members: &[Tuple],
    outer: &[Frame<'_>],
) -> Result<Expr> {
    if let Expr::Function { name, args } = expr {
        if matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max") {
            let v = compute_aggregate(ctx, name, args, input_schema, members, outer)?;
            return Ok(Expr::Literal(v));
        }
    }
    // Rebuild the node with folded children.
    let rebuilt = match expr {
        Expr::Unary { op, expr: e } => Expr::Unary {
            op: *op,
            expr: Box::new(fold_aggregates(ctx, e, input_schema, members, outer)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(fold_aggregates(ctx, left, input_schema, members, outer)?),
            op: *op,
            right: Box::new(fold_aggregates(ctx, right, input_schema, members, outer)?),
        },
        Expr::IsNull { expr: e, negated } => Expr::IsNull {
            expr: Box::new(fold_aggregates(ctx, e, input_schema, members, outer)?),
            negated: *negated,
        },
        Expr::Between {
            expr: e,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(fold_aggregates(ctx, e, input_schema, members, outer)?),
            low: Box::new(fold_aggregates(ctx, low, input_schema, members, outer)?),
            high: Box::new(fold_aggregates(ctx, high, input_schema, members, outer)?),
            negated: *negated,
        },
        Expr::InList {
            expr: e,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(fold_aggregates(ctx, e, input_schema, members, outer)?),
            list: list
                .iter()
                .map(|i| fold_aggregates(ctx, i, input_schema, members, outer))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| fold_aggregates(ctx, o, input_schema, members, outer).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        fold_aggregates(ctx, w, input_schema, members, outer)?,
                        fold_aggregates(ctx, t, input_schema, members, outer)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| fold_aggregates(ctx, e, input_schema, members, outer).map(Box::new))
                .transpose()?,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| fold_aggregates(ctx, a, input_schema, members, outer))
                .collect::<Result<_>>()?,
        },
        other => other.clone(),
    };
    Ok(rebuilt)
}

fn compute_aggregate(
    ctx: &ExecCtx<'_>,
    name: &str,
    args: &[Expr],
    input_schema: &Schema,
    members: &[Tuple],
    outer: &[Frame<'_>],
) -> Result<Value> {
    if name == "count" && args.len() == 1 && matches!(args[0], Expr::Wildcard) {
        return Ok(Value::Int(members.len() as i64));
    }
    if args.len() != 1 {
        return Err(Error::Type(format!(
            "{name}() expects exactly one argument"
        )));
    }
    let mut values = Vec::with_capacity(members.len());
    for row in members {
        let v = eval_row(ctx, &args[0], input_schema, row, outer)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match name {
        "count" => Ok(Value::Int(values.len() as i64)),
        "sum" | "avg" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc = Value::Int(0);
            for v in &values {
                acc = acc.add(v)?;
            }
            if name == "avg" {
                acc.coerce_to(DataType::Float)?
                    .div(&Value::Float(values.len() as f64))
            } else {
                Ok(acc)
            }
        }
        "min" | "max" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(&b) {
                        Some(Ordering::Less) if name == "min" => v,
                        Some(Ordering::Greater) if name == "max" => v,
                        Some(_) => b,
                        None => {
                            return Err(Error::Type(format!("{name}() over incomparable values")))
                        }
                    },
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        _ => unreachable!("caller checked the aggregate name"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// An instrumented source: serves integer tuples and records how many
    /// tuples it handed out and the largest batch ever requested, so the
    /// tests can prove a parent stopped pulling mid-batch.
    struct ProbeSource {
        rows: Vec<Tuple>,
        pos: usize,
        serve_slices: bool,
        served: Rc<Cell<usize>>,
        largest_request: Rc<Cell<usize>>,
    }

    fn probe(n: i64) -> (ProbeSource, Rc<Cell<usize>>, Rc<Cell<usize>>) {
        let served = Rc::new(Cell::new(0));
        let largest = Rc::new(Cell::new(0));
        let src = ProbeSource {
            rows: (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect(),
            pos: 0,
            serve_slices: false,
            served: Rc::clone(&served),
            largest_request: Rc::clone(&largest),
        };
        (src, served, largest)
    }

    impl Operator for ProbeSource {
        fn open(&mut self) -> Result<()> {
            self.pos = 0;
            Ok(())
        }

        fn next(&mut self) -> Result<Option<Tuple>> {
            self.largest_request.set(self.largest_request.get().max(1));
            match self.rows.get(self.pos) {
                Some(t) => {
                    self.pos += 1;
                    self.served.set(self.served.get() + 1);
                    Ok(Some(t.clone()))
                }
                None => Ok(None),
            }
        }

        fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
            self.largest_request
                .set(self.largest_request.get().max(max));
            let end = (self.pos + max).min(self.rows.len());
            out.extend_from_slice(&self.rows[self.pos..end]);
            self.served.set(self.served.get() + (end - self.pos));
            self.pos = end;
            Ok(self.pos < self.rows.len())
        }

        fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
            if !self.serve_slices {
                return Ok(None);
            }
            self.largest_request
                .set(self.largest_request.get().max(max));
            let end = (self.pos + max).min(self.rows.len());
            let slice = &self.rows[self.pos..end];
            self.served.set(self.served.get() + slice.len());
            self.pos = end;
            Ok(Some(slice))
        }

        fn close(&mut self) {}
    }

    fn ints(rows: &[Tuple]) -> Vec<i64> {
        rows.iter().map(|t| t[0].as_int().expect("int")).collect()
    }

    #[test]
    fn limit_stops_pulling_its_child_mid_batch_via_slices() {
        // Same quota discipline when the child lends borrowed slices.
        let (mut src, served, largest) = probe(100);
        src.serve_slices = true;
        let mut limit = LimitOp {
            input: Box::new(src),
            remaining: 3,
        };
        limit.open().unwrap();
        let mut out = Vec::new();
        assert!(!limit.next_batch(&mut out, 10).unwrap());
        assert_eq!(ints(&out), vec![0, 1, 2]);
        assert_eq!(served.get(), 3);
        assert_eq!(largest.get(), 3);
        limit.close();
    }

    #[test]
    fn limit_stops_pulling_its_child_mid_batch() {
        let (src, served, largest) = probe(100);
        let mut limit = LimitOp {
            input: Box::new(src),
            remaining: 3,
        };
        limit.open().unwrap();
        let mut out = Vec::new();
        // One oversized request: the limit must clamp the child pull to
        // its quota, not forward `max` and discard the overshoot.
        let more = limit.next_batch(&mut out, 10).unwrap();
        assert_eq!(ints(&out), vec![0, 1, 2]);
        assert!(!more, "quota exhausted must report end-of-stream");
        assert_eq!(served.get(), 3, "child must serve exactly the quota");
        assert_eq!(largest.get(), 3, "child must never be asked for more");
        // Exhausted limits never touch the child again.
        let mut out2 = Vec::new();
        assert!(!limit.next_batch(&mut out2, 10).unwrap());
        assert!(out2.is_empty());
        assert_eq!(served.get(), 3);
        limit.close();
    }

    #[test]
    fn limit_batches_straddling_the_cutoff_agree_with_next() {
        for (rows, lim, batch) in [
            (10i64, 4u64, 3usize), // cutoff mid-batch
            (10, 10, 3),           // cutoff == input end, short final batch
            (10, 0, 5),            // LIMIT 0
            (0, 5, 4),             // empty input
            (7, 20, 7),            // limit beyond input, exact batch fit
        ] {
            let (src, _, _) = probe(rows);
            let mut batched = LimitOp {
                input: Box::new(src),
                remaining: lim,
            };
            let batched_rows = drain_batched(&mut batched, batch).unwrap();

            let (src, _, _) = probe(rows);
            let mut streamed = LimitOp {
                input: Box::new(src),
                remaining: lim,
            };
            let streamed_rows = drain_tuple_at_a_time(&mut streamed).unwrap();
            assert_eq!(
                ints(&batched_rows),
                ints(&streamed_rows),
                "rows={rows} lim={lim} batch={batch}"
            );
        }
    }

    #[test]
    fn default_next_batch_mirrors_next() {
        // Drive the default implementation (ProbeSource wrapped so the
        // override is not used) against plain next().
        struct DefaultOnly(ProbeSource);
        impl Operator for DefaultOnly {
            fn open(&mut self) -> Result<()> {
                self.0.open()
            }
            fn next(&mut self) -> Result<Option<Tuple>> {
                self.0.next()
            }
            fn close(&mut self) {
                self.0.close()
            }
        }
        let (src, _, _) = probe(10);
        let mut op = DefaultOnly(src);
        op.open().unwrap();
        let mut out = Vec::new();
        assert!(op.next_batch(&mut out, 7).unwrap());
        assert_eq!(out.len(), 7);
        // Final short batch reports exhaustion.
        assert!(!op.next_batch(&mut out, 7).unwrap());
        assert_eq!(ints(&out), (0..10).collect::<Vec<_>>());
        // Subsequent calls keep reporting exhaustion with no tuples.
        assert!(!op.next_batch(&mut out, 7).unwrap());
        assert_eq!(out.len(), 10);
        op.close();
    }

    #[test]
    fn scan_style_emission_yields_final_short_batch() {
        let (mut src, _, _) = probe(10);
        src.open().unwrap();
        let mut out = Vec::new();
        assert!(src.next_batch(&mut out, 7).unwrap());
        assert_eq!(out.len(), 7);
        assert!(!src.next_batch(&mut out, 7).unwrap());
        assert_eq!(out.len(), 10);
        // Empty batch after exhaustion.
        assert!(!src.next_batch(&mut out, 7).unwrap());
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn interleaving_next_and_next_batch_shares_the_cursor() {
        let (mut src, _, _) = probe(6);
        src.open().unwrap();
        assert_eq!(src.next().unwrap().unwrap()[0], Value::Int(0));
        let mut out = Vec::new();
        assert!(src.next_batch(&mut out, 3).unwrap());
        assert_eq!(ints(&out), vec![1, 2, 3]);
        assert_eq!(src.next().unwrap().unwrap()[0], Value::Int(4));
        assert!(!src.next_batch(&mut out, 3).unwrap());
        assert_eq!(ints(&out), vec![1, 2, 3, 5]);
    }

    #[test]
    fn drain_batched_clamps_zero_batch() {
        let (src, _, _) = probe(4);
        let mut limit = LimitOp {
            input: Box::new(src),
            remaining: 4,
        };
        // A zero batch size must not loop forever.
        assert_eq!(
            ints(&drain_batched(&mut limit, 0).unwrap()),
            vec![0, 1, 2, 3]
        );
    }
}
