//! Observability: per-operator profiling and the engine-wide metrics
//! registry.
//!
//! Three pieces, one per consumer:
//!
//! * [`NodeMetrics`] / [`Profiler`] — the per-statement profile of one
//!   executed plan, keyed by plan-node address (stable for exactly as
//!   long as the statement's plan `Arc` is alive, which is why analyzed
//!   rendering happens inside the statement scope). `EXPLAIN ANALYZE`
//!   prints it next to the plan tree.
//! * [`Instrumented`] — the shim [`crate::physical::build`] splices
//!   around every operator when a statement runs under a profiler: it
//!   counts rows and batches, accumulates open/next/close wall time and
//!   captures the operator's own [`Operator::counters`] at close, then
//!   flushes the lot into the profiler. Plain statements never see it —
//!   profiling is opt-in per statement, so the unprofiled hot path pays
//!   nothing.
//! * [`MetricsRegistry`] — the `Send + Sync` engine-wide accumulator
//!   hanging off [`crate::exec::EngineCore`]: every finished statement
//!   folds its deltas in, and the shell's `\metrics`, the server's
//!   `METRICS` verb and the slow-query log all read the same snapshot.

use crate::exec::ExecStats;
use crate::physical::{BoxOperator, Operator};
use crate::plan::PlanNode;
use prefsql_storage::spill::SpillMetrics;
use prefsql_types::{Result, Tuple};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Observed execution profile of one plan node: output volume plus the
/// wall time spent inside the operator (children included — this is a
/// Volcano tree, so a parent's `next` contains its children's).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Tuples this node produced.
    pub rows: u64,
    /// Batched producer calls (`next_batch`/`next_slice`) answered.
    pub batches: u64,
    /// Wall time spent in `open`, nanoseconds.
    pub open_ns: u64,
    /// Wall time spent in `next`/`next_batch`/`next_slice`, nanoseconds.
    pub next_ns: u64,
    /// Wall time spent in `close`, nanoseconds.
    pub close_ns: u64,
    /// Operator-specific counters ([`Operator::counters`]) captured at
    /// close — dominance comparisons, hash-join build/probe rows, ...
    pub extras: Vec<(&'static str, u64)>,
}

impl NodeMetrics {
    /// Total wall time across open/next/close, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.open_ns + self.next_ns + self.close_ns
    }

    /// Fold another observation of the same node in (an operator can be
    /// rebuilt and rerun — a rebound inner join side, a re-opened
    /// sub-plan — and each run flushes separately).
    fn merge(&mut self, other: NodeMetrics) {
        self.rows += other.rows;
        self.batches += other.batches;
        self.open_ns += other.open_ns;
        self.next_ns += other.next_ns;
        self.close_ns += other.close_ns;
        for (k, v) in other.extras {
            match self.extras.iter_mut().find(|(ek, _)| *ek == k) {
                Some((_, ev)) => *ev += v,
                None => self.extras.push((k, v)),
            }
        }
    }
}

/// Per-statement profile of an executed plan, keyed by plan-node address.
///
/// Addresses are stable while the plan `Arc` lives, which the statement
/// context guarantees (its plan cache and the profiled-plan slot both
/// hold the `Arc` until the statement ends). A node that never ran —
/// short-circuited `EXISTS` probes, the never-pulled side of an empty
/// join — simply has no entry.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: RefCell<HashMap<usize, (&'static str, NodeMetrics)>>,
}

impl Profiler {
    /// A fresh, empty profile.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Fold one operator run's observations into the node's entry.
    pub(crate) fn flush(&self, key: usize, kind: &'static str, m: NodeMetrics) {
        let mut nodes = self.nodes.borrow_mut();
        nodes
            .entry(key)
            .or_insert_with(|| (kind, NodeMetrics::default()))
            .1
            .merge(m);
    }

    /// The observed metrics of `node`, if it executed.
    pub fn node(&self, node: &PlanNode) -> Option<NodeMetrics> {
        self.nodes
            .borrow()
            .get(&(node as *const PlanNode as usize))
            .map(|(_, m)| m.clone())
    }

    /// True when nothing was recorded (the statement had no profiled
    /// plan execution).
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Totals folded per operator kind, sorted by kind name — what the
    /// engine-wide registry accumulates across statements.
    pub fn per_kind(&self) -> Vec<(&'static str, NodeMetrics)> {
        let mut by_kind: BTreeMap<&'static str, NodeMetrics> = BTreeMap::new();
        for (kind, m) in self.nodes.borrow().values() {
            by_kind.entry(kind).or_default().merge(m.clone());
        }
        by_kind.into_iter().collect()
    }
}

/// The registry label of a plan node — also the `op.<kind>.*` key stem in
/// [`MetricsRegistry::snapshot`].
pub fn node_kind(node: &PlanNode) -> &'static str {
    match node {
        PlanNode::Nothing { .. } => "nothing",
        PlanNode::SeqScan { .. } => "seq_scan",
        PlanNode::MatViewScan { .. } => "matview_scan",
        PlanNode::IndexScan { .. } => "index_scan",
        PlanNode::Materialize { .. } => "materialize",
        PlanNode::NestedLoopJoin { .. } => "nested_loop_join",
        PlanNode::HashJoin { .. } => "hash_join",
        PlanNode::Filter { .. } => "filter",
        PlanNode::Project { .. } => "project",
        PlanNode::Sort { .. } => "sort",
        PlanNode::Distinct { .. } => "distinct",
        PlanNode::Limit { .. } => "limit",
        PlanNode::Aggregate { .. } => "aggregate",
    }
}

/// The instrumentation shim: wraps an operator, forwards every call and
/// records volume plus wall time, flushing into the statement's
/// [`Profiler`] at close. Spliced in by [`crate::physical::build`] only
/// when the statement context carries a profiler.
pub struct Instrumented<'a> {
    inner: BoxOperator<'a>,
    profiler: &'a Profiler,
    key: usize,
    kind: &'static str,
    local: NodeMetrics,
    /// Guards the close-time flush: `close` is idempotent, the flush
    /// (and the capture of the inner operator's counters) must be too.
    flushed: bool,
}

impl<'a> Instrumented<'a> {
    /// Wrap `inner` (built for `node`) so its execution reports into
    /// `profiler` under the node's address.
    pub fn new(inner: BoxOperator<'a>, profiler: &'a Profiler, node: &PlanNode) -> Self {
        Instrumented {
            inner,
            profiler,
            key: node as *const PlanNode as usize,
            kind: node_kind(node),
            local: NodeMetrics::default(),
            flushed: false,
        }
    }
}

impl Operator for Instrumented<'_> {
    fn open(&mut self) -> Result<()> {
        self.flushed = false;
        let t = Instant::now();
        let r = self.inner.open();
        self.local.open_ns += t.elapsed().as_nanos() as u64;
        r
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let t = Instant::now();
        let r = self.inner.next();
        self.local.next_ns += t.elapsed().as_nanos() as u64;
        if matches!(r, Ok(Some(_))) {
            self.local.rows += 1;
        }
        r
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        let before = out.len();
        let t = Instant::now();
        let r = self.inner.next_batch(out, max);
        self.local.next_ns += t.elapsed().as_nanos() as u64;
        self.local.rows += (out.len() - before) as u64;
        self.local.batches += 1;
        r
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        let t = Instant::now();
        let r = self.inner.next_slice(max);
        self.local.next_ns += t.elapsed().as_nanos() as u64;
        if let Ok(Some(s)) = &r {
            self.local.rows += s.len() as u64;
            self.local.batches += 1;
        }
        r
    }

    fn next_selection(&mut self, max: usize, sel: &mut Vec<usize>) -> Result<Option<&[Tuple]>> {
        let before = sel.len();
        let t = Instant::now();
        let r = self.inner.next_selection(max, sel);
        self.local.next_ns += t.elapsed().as_nanos() as u64;
        if matches!(r, Ok(Some(_))) {
            // The emitted rows are the selected ones, not the lent slice.
            self.local.rows += (sel.len() - before) as u64;
            self.local.batches += 1;
        }
        r
    }

    fn close(&mut self) {
        let t = Instant::now();
        self.inner.close();
        self.local.close_ns += t.elapsed().as_nanos() as u64;
        if !self.flushed {
            self.flushed = true;
            for (k, v) in self.inner.counters() {
                if v != 0 {
                    self.local.extras.push((k, v));
                }
            }
            self.profiler
                .flush(self.key, self.kind, std::mem::take(&mut self.local));
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.counters()
    }
}

/// Cumulative per-operator-kind totals inside the registry.
#[derive(Debug, Default, Clone, Copy)]
struct KindTotals {
    rows: u64,
    batches: u64,
    ns: u64,
}

/// The engine-wide metrics accumulator: lock-free counters every
/// finished statement folds its deltas into, shared by all sessions of
/// one [`crate::exec::EngineCore`].
///
/// All counters are monotonic except `sessions.open`. Relaxed ordering
/// throughout: these are statistics, not synchronization — a snapshot
/// taken while statements run is approximate by nature.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    statements: AtomicU64,
    statements_errored: AtomicU64,
    statements_slow: AtomicU64,
    statement_ns: AtomicU64,
    rows_returned: AtomicU64,
    rows_affected: AtomicU64,
    rows_scanned: AtomicU64,
    index_probes: AtomicU64,
    subquery_evals: AtomicU64,
    dominance_tests: AtomicU64,
    spill_runs: AtomicU64,
    spill_bytes: AtomicU64,
    spill_passes: AtomicU64,
    views_maintained: AtomicU64,
    sessions_open: AtomicU64,
    sessions_total: AtomicU64,
    op_totals: Mutex<BTreeMap<&'static str, KindTotals>>,
}

impl MetricsRegistry {
    /// A fresh registry with all counters at zero.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Record one finished statement: its wall time and whether it
    /// succeeded.
    pub fn note_statement(&self, elapsed_ns: u64, ok: bool) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        self.statement_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        if !ok {
            self.statements_errored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one statement that crossed the slow-query threshold.
    pub fn note_slow_statement(&self) {
        self.statements_slow.fetch_add(1, Ordering::Relaxed);
    }

    /// Add rows returned to a client by a query.
    pub fn add_rows_returned(&self, n: u64) {
        self.rows_returned.fetch_add(n, Ordering::Relaxed);
    }

    /// Add rows affected by DML.
    pub fn add_rows_affected(&self, n: u64) {
        self.rows_affected.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold one statement context's execution counters in.
    pub fn add_exec_stats(&self, stats: &ExecStats) {
        self.rows_scanned
            .fetch_add(stats.rows_scanned, Ordering::Relaxed);
        self.index_probes
            .fetch_add(stats.index_probes, Ordering::Relaxed);
        self.subquery_evals
            .fetch_add(stats.subquery_evals, Ordering::Relaxed);
        self.dominance_tests
            .fetch_add(stats.dominance_tests, Ordering::Relaxed);
    }

    /// Add dominance comparisons charged outside a statement context
    /// (materialized-view maintenance under the DML write lock).
    pub fn add_dominance_tests(&self, n: u64) {
        self.dominance_tests.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold one statement's spill metrics in.
    pub fn add_spill(&self, m: &SpillMetrics) {
        self.spill_runs.fetch_add(m.runs_written, Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(m.bytes_spilled, Ordering::Relaxed);
        self.spill_passes
            .fetch_add(u64::from(m.passes), Ordering::Relaxed);
    }

    /// Add materialized-view maintenance applications.
    pub fn add_views_maintained(&self, n: u64) {
        self.views_maintained.fetch_add(n, Ordering::Relaxed);
    }

    /// A session attached to the core.
    pub fn session_opened(&self) {
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A session detached from the core.
    pub fn session_closed(&self) {
        // Saturating: a stray double-close must not wrap the gauge.
        let _ = self
            .sessions_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Fold a finished statement's per-operator profile into the
    /// cumulative per-kind totals.
    pub fn absorb_profile(&self, profile: &Profiler) {
        let mut totals = self
            .op_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (kind, m) in profile.per_kind() {
            let t = totals.entry(kind).or_default();
            t.rows += m.rows;
            t.batches += m.batches;
            t.ns += m.total_ns();
        }
    }

    /// A deterministic, machine-parseable snapshot: `(key, value)` pairs
    /// in a fixed order — the `METRICS` wire verb and `\metrics` both
    /// print exactly these.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed).to_string();
        let mut out = vec![
            ("statements.total".to_string(), g(&self.statements)),
            (
                "statements.errored".to_string(),
                g(&self.statements_errored),
            ),
            ("statements.slow".to_string(), g(&self.statements_slow)),
            ("statements.time_ns".to_string(), g(&self.statement_ns)),
            ("rows.returned".to_string(), g(&self.rows_returned)),
            ("rows.affected".to_string(), g(&self.rows_affected)),
            ("rows.scanned".to_string(), g(&self.rows_scanned)),
            ("exec.index_probes".to_string(), g(&self.index_probes)),
            ("exec.subquery_evals".to_string(), g(&self.subquery_evals)),
            ("exec.dominance_tests".to_string(), g(&self.dominance_tests)),
            ("spill.runs".to_string(), g(&self.spill_runs)),
            ("spill.bytes".to_string(), g(&self.spill_bytes)),
            ("spill.passes".to_string(), g(&self.spill_passes)),
            ("views.maintained".to_string(), g(&self.views_maintained)),
            ("sessions.open".to_string(), g(&self.sessions_open)),
            ("sessions.total".to_string(), g(&self.sessions_total)),
        ];
        let totals = self
            .op_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (kind, t) in totals.iter() {
            out.push((format!("op.{kind}.rows"), t.rows.to_string()));
            out.push((format!("op.{kind}.batches"), t.batches.to_string()));
            out.push((format!("op.{kind}.time_ns"), t.ns.to_string()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal operator producing `n` single-column rows.
    struct Counting {
        n: usize,
        produced: usize,
    }

    impl Operator for Counting {
        fn open(&mut self) -> Result<()> {
            self.produced = 0;
            Ok(())
        }
        fn next(&mut self) -> Result<Option<Tuple>> {
            if self.produced < self.n {
                self.produced += 1;
                Ok(Some(prefsql_types::tuple![self.produced as i64]))
            } else {
                Ok(None)
            }
        }
        fn close(&mut self) {}
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("probes", self.produced as u64)]
        }
    }

    #[test]
    fn instrumented_counts_rows_and_captures_counters() {
        let profiler = Profiler::new();
        // Any plan node works as the profile key.
        let node = PlanNode::Nothing {
            schema: prefsql_types::Schema::empty(),
        };
        let mut op = Instrumented::new(Box::new(Counting { n: 3, produced: 0 }), &profiler, &node);
        op.open().unwrap();
        while op.next().unwrap().is_some() {}
        op.close();
        op.close(); // idempotent: must not double-flush
        let m = profiler.node(&node).expect("profiled");
        assert_eq!(m.rows, 3);
        assert_eq!(m.extras, vec![("probes", 3)]);
        let per_kind = profiler.per_kind();
        assert_eq!(per_kind.len(), 1);
        assert_eq!(per_kind[0].0, "nothing");
        assert_eq!(per_kind[0].1.rows, 3);
    }

    #[test]
    fn registry_accumulates_and_snapshots_deterministically() {
        let reg = MetricsRegistry::new();
        reg.note_statement(1_000, true);
        reg.note_statement(2_000, false);
        reg.add_rows_returned(5);
        reg.add_exec_stats(&ExecStats {
            rows_scanned: 10,
            index_probes: 2,
            subquery_evals: 1,
            dominance_tests: 7,
        });
        reg.session_opened();
        reg.session_closed();
        reg.session_closed(); // must not underflow
        let snap: std::collections::HashMap<_, _> = reg.snapshot().into_iter().collect();
        assert_eq!(snap["statements.total"], "2");
        assert_eq!(snap["statements.errored"], "1");
        assert_eq!(snap["statements.time_ns"], "3000");
        assert_eq!(snap["rows.returned"], "5");
        assert_eq!(snap["rows.scanned"], "10");
        assert_eq!(snap["exec.dominance_tests"], "7");
        assert_eq!(snap["sessions.open"], "0");
        assert_eq!(snap["sessions.total"], "1");
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<MetricsRegistry>();
    }
}
