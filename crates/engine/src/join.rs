//! The hash equi-join: plan-time equi-key extraction and the spill-aware
//! Grace-hash physical operator.
//!
//! [`split_equi_join`] inspects a join's ON condition and pulls out the
//! `left-col = right-col` conjuncts a hash join can key on, leaving every
//! other conjunct as a *residual* predicate re-checked after the probe.
//! Anything it cannot fully classify — non-equi-only conditions,
//! sub-queries (possibly correlated), columns that do not resolve against
//! the join inputs — keeps the nested-loop join, so evaluation semantics
//! never change behind the optimizer's back.
//!
//! [`HashJoinOp`] executes the plan node. Its output contract is strict:
//! **rows and order are byte-identical to the nested-loop join it
//! replaces** (left-major, right-minor — every left row meets the right
//! rows in their materialization order). The in-memory build=right path
//! gets this for free by streaming the left side; the build=left path
//! buckets matches per left row and emits the buckets in left order; the
//! Grace overflow path tags every spilled tuple with its per-side arrival
//! sequence, keeps partition-pair output sorted by `(left seq, right
//! seq)` by construction, and k-way-merges the sorted output runs. The
//! one permitted divergence is *error timing*: an ON expression that
//! errors at evaluation may surface the error after a different number
//! of emitted rows than the nested loop would.
//!
//! Key equality is SQL equality restricted to the cases where it can
//! hold: rows whose key contains NULL or NaN can never satisfy `=` and
//! are dropped from both sides up front; `-0.0` is normalized to `0.0`
//! (SQL-equal, but distinct under the total order backing
//! [`Value::key_eq`]). After that, [`Value::key_eq`] coincides exactly
//! with `sql_eq == TRUE` — including INT 1 matching FLOAT 1.0, whose
//! shared hash the `prefsql-types` proptests pin.
//!
//! When the build side outgrows the session window budget, both inputs
//! are hash-partitioned into [`SpillManager`] runs with a depth-salted
//! hash (`FANOUT` partitions). A partition pair whose build half still
//! exceeds the window is re-partitioned once with a fresh salt; a pair
//! that is still too big after that (pathological skew — e.g. one hot
//! key) is processed by block nested-loop in window-sized build chunks.
//! Spill totals are reported through [`ExecCtx::note_spill`] and ride
//! the same `SpillMetrics` surface as the external skyline.

use crate::eval::{truth, Frame};
use crate::exec::ExecCtx;
use crate::physical::{eval_row, BoxOperator, Operator, DEFAULT_BATCH};
use prefsql_parser::ast::{BinaryOp, Expr};
use prefsql_storage::spill::{
    tuple_spill_bytes, RunReader, RunWriter, SpillManager, SpillMetrics, SpillRun,
};
use prefsql_types::{Result, Schema, Tuple, Value};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Partitions per Grace spill pass. Small enough that a pass keeps one
/// open run writer per partition; two salted passes separate 64 buckets.
const FANOUT: usize = 8;

/// Partitioning depth at which a still-oversized pair stops recursing
/// and falls back to block nested-loop (initial pass = depth 0, the one
/// permitted re-partition = depth 1).
const MAX_DEPTH: u32 = 2;

// ----------------------------------------------------- plan-time split

/// The equi-join structure extracted from an ON condition.
#[derive(Debug)]
pub struct EquiJoin {
    /// `(left expr, right expr)` per equi-key conjunct, each resolved
    /// purely against its own input.
    pub keys: Vec<(Expr, Expr)>,
    /// The remaining conjuncts, ANDed in original order; evaluated
    /// against the combined row after the probe.
    pub residual: Option<Expr>,
}

/// Split `on` into hash keys and a residual predicate. Returns `None`
/// when a hash join must not be planned: no cross-side equi conjunct at
/// all, a sub-query anywhere in the condition (its correlation could
/// observe evaluation order), or a column reference that is unknown or
/// ambiguous against the combined input schema (the nested loop must
/// surface that error exactly as it always did).
pub fn split_equi_join(on: &Expr, left: &Schema, right: &Schema) -> Option<EquiJoin> {
    let combined = left.join(right);
    let mut conjuncts = Vec::new();
    collect_conjuncts(on, &mut conjuncts);
    let mut keys = Vec::new();
    let mut residual: Option<Expr> = None;
    for c in conjuncts {
        // Every conjunct — keyed or residual — must classify cleanly
        // (a residual with a sub-query or a dangling column keeps the
        // nested loop's evaluation semantics, so bail).
        sides_of(c, left, &combined)?;
        let mut keyed = false;
        if let Expr::Binary {
            left: a,
            op: BinaryOp::Eq,
            right: b,
        } = c
        {
            let sa = sides_of(a, left, &combined)?;
            let sb = sides_of(b, left, &combined)?;
            match (sa, sb) {
                (SideMask::LEFT, SideMask::RIGHT) => {
                    keys.push(((**a).clone(), (**b).clone()));
                    keyed = true;
                }
                (SideMask::RIGHT, SideMask::LEFT) => {
                    keys.push(((**b).clone(), (**a).clone()));
                    keyed = true;
                }
                _ => {}
            }
        }
        if !keyed {
            residual = Some(match residual {
                None => c.clone(),
                Some(r) => Expr::Binary {
                    left: Box::new(r),
                    op: BinaryOp::And,
                    right: Box::new(c.clone()),
                },
            });
        }
    }
    if keys.is_empty() {
        return None;
    }
    Some(EquiJoin { keys, residual })
}

/// Flatten an AND chain into its conjuncts (left-to-right order).
fn collect_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Which join inputs an expression's columns touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SideMask(u8);

impl SideMask {
    const NONE: SideMask = SideMask(0);
    const LEFT: SideMask = SideMask(1);
    const RIGHT: SideMask = SideMask(2);

    fn union(self, other: SideMask) -> SideMask {
        SideMask(self.0 | other.0)
    }
}

/// Classify every column of `expr` against the join inputs. `None` bails
/// the whole hash-join attempt: a sub-query, or a column the combined
/// schema cannot resolve unambiguously (resolving uniquely in the
/// combined schema guarantees the reference also resolves against the
/// single side that holds it, so side-local key evaluation is sound).
fn sides_of(expr: &Expr, left: &Schema, combined: &Schema) -> Option<SideMask> {
    match expr {
        Expr::Column { qualifier, name } => {
            let idx = combined.resolve(qualifier.as_deref(), name).ok()?;
            Some(if idx < left.len() {
                SideMask::LEFT
            } else {
                SideMask::RIGHT
            })
        }
        Expr::Literal(_) => Some(SideMask::NONE),
        Expr::Unary { expr, .. } => sides_of(expr, left, combined),
        Expr::Binary {
            left: a, right: b, ..
        } => Some(sides_of(a, left, combined)?.union(sides_of(b, left, combined)?)),
        Expr::IsNull { expr, .. } => sides_of(expr, left, combined),
        Expr::Between {
            expr, low, high, ..
        } => Some(
            sides_of(expr, left, combined)?
                .union(sides_of(low, left, combined)?)
                .union(sides_of(high, left, combined)?),
        ),
        Expr::InList { expr, list, .. } => {
            let mut m = sides_of(expr, left, combined)?;
            for e in list {
                m = m.union(sides_of(e, left, combined)?);
            }
            Some(m)
        }
        Expr::Like { expr, pattern, .. } => {
            Some(sides_of(expr, left, combined)?.union(sides_of(pattern, left, combined)?))
        }
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            let mut m = SideMask::NONE;
            if let Some(o) = operand {
                m = m.union(sides_of(o, left, combined)?);
            }
            for (w, t) in branches {
                m = m
                    .union(sides_of(w, left, combined)?)
                    .union(sides_of(t, left, combined)?);
            }
            if let Some(e) = else_result {
                m = m.union(sides_of(e, left, combined)?);
            }
            Some(m)
        }
        Expr::Function { args, .. } => {
            let mut m = SideMask::NONE;
            for a in args {
                m = m.union(sides_of(a, left, combined)?);
            }
            Some(m)
        }
        // Sub-queries may be correlated; wildcards cannot be evaluated
        // as values. Either way: keep the nested loop.
        Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::ScalarSubquery(_)
        | Expr::Wildcard => None,
    }
}

// ----------------------------------------------------------- join keys

/// A hash-table key over the evaluated key expressions of one row.
/// Equality is [`Value::key_eq`] per field, which — after the
/// normalization in [`JoinKey::new`] — matches SQL `=` exactly; hashing
/// uses [`Value`]'s `Hash`, consistent with `key_eq` by the type
/// crate's proptest contract.
#[derive(Debug, Clone)]
struct JoinKey(Vec<Value>);

impl JoinKey {
    /// Build a key, or `None` when the row can never match: a NULL key
    /// field makes `=` UNKNOWN, a NaN field makes it FALSE (while both
    /// would compare equal to themselves under the total order).
    /// `-0.0` is folded to `0.0` so SQL-equal floats share a bucket.
    fn new(values: Vec<Value>) -> Option<JoinKey> {
        let mut out = Vec::with_capacity(values.len());
        for v in values {
            match v {
                Value::Null => return None,
                Value::Float(f) if f.is_nan() => return None,
                Value::Float(f) => out.push(Value::Float(if f == 0.0 { 0.0 } else { f })),
                other => out.push(other),
            }
        }
        Some(JoinKey(out))
    }
}

impl PartialEq for JoinKey {
    fn eq(&self, other: &JoinKey) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.key_eq(b))
    }
}

impl Eq for JoinKey {}

impl Hash for JoinKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            v.hash(state);
        }
    }
}

/// The Grace partition a key routes to at `depth`: a fresh salt per
/// depth, so a re-partitioned pair actually redistributes instead of
/// collapsing back into one bucket.
fn partition_of(key: &JoinKey, depth: u32) -> usize {
    let mut h = DefaultHasher::new();
    0x9e37_79b9_7f4a_7c15u64
        .wrapping_mul(u64::from(depth) + 1)
        .hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) % FANOUT
}

// ------------------------------------------------------- the operator

/// Everything the Grace helpers need, bundled so the recursive pair
/// processing does not thread eight parameters.
struct JoinCfg<'a> {
    ctx: &'a ExecCtx<'a>,
    keys: &'a [(Expr, Expr)],
    residual: Option<&'a Expr>,
    left_schema: &'a Schema,
    right_schema: &'a Schema,
    /// Combined schema, for the residual predicate.
    schema: &'a Schema,
    outer: &'a [Frame<'a>],
    window: usize,
}

impl JoinCfg<'_> {
    /// Evaluate one side's key expressions for one row.
    fn key_of(&self, row: &Tuple, left_side: bool) -> Result<Option<JoinKey>> {
        let mut vals = Vec::with_capacity(self.keys.len());
        for (lk, rk) in self.keys {
            let (e, schema) = if left_side {
                (lk, self.left_schema)
            } else {
                (rk, self.right_schema)
            };
            vals.push(eval_row(self.ctx, e, schema, row, self.outer)?);
        }
        Ok(JoinKey::new(vals))
    }

    /// Does the residual predicate accept this combined row?
    fn residual_ok(&self, joined: &Tuple) -> Result<bool> {
        match self.residual {
            None => Ok(true),
            Some(p) => {
                let v = eval_row(self.ctx, p, self.schema, joined, self.outer)?;
                Ok(truth(&v) == Some(true))
            }
        }
    }
}

/// The hash-join physical operator. All heavy lifting happens in
/// [`Operator::open`]; `next`/`next_batch` then stream from whichever
/// state the build phase settled into.
pub struct HashJoinOp<'a> {
    ctx: &'a ExecCtx<'a>,
    left: BoxOperator<'a>,
    right: BoxOperator<'a>,
    keys: &'a [(Expr, Expr)],
    residual: Option<&'a Expr>,
    build_left: bool,
    window: Option<usize>,
    left_schema: &'a Schema,
    right_schema: &'a Schema,
    schema: &'a Schema,
    outer: &'a [Frame<'a>],
    state: State,
    /// Rows hashed into the build table (observability; `Cell` so the
    /// Grace source closures can count while the children are borrowed).
    build_rows: Cell<u64>,
    /// Rows streamed through the probe side.
    probe_rows: Cell<u64>,
    /// Input rows written to Grace partition runs (a re-partitioned row
    /// counts again, mirroring the `passes` semantics).
    spilled_rows: Cell<u64>,
}

enum State {
    Closed,
    /// In-memory, build=right: the left side streams through the probe
    /// in batched pulls; output order is the nested loop's by
    /// construction.
    Probe {
        right_rows: Vec<Tuple>,
        table: HashMap<JoinKey, Vec<u32>>,
        lbuf: Vec<Tuple>,
        lpos: usize,
        left_done: bool,
        cur: Option<Tuple>,
        matches: Vec<u32>,
        midx: usize,
    },
    /// In-memory, build=left: matches were bucketed per left row and
    /// concatenated in left order.
    Buffered {
        out: Vec<Tuple>,
        pos: usize,
    },
    /// Grace overflow: k-way merge of sorted output runs.
    Grace(GraceOutput),
}

impl<'a> HashJoinOp<'a> {
    /// Wire up the operator over already-built child operators.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctx: &'a ExecCtx<'a>,
        left: BoxOperator<'a>,
        right: BoxOperator<'a>,
        keys: &'a [(Expr, Expr)],
        residual: Option<&'a Expr>,
        build_left: bool,
        window: Option<usize>,
        left_schema: &'a Schema,
        right_schema: &'a Schema,
        schema: &'a Schema,
        outer: &'a [Frame<'a>],
    ) -> Self {
        HashJoinOp {
            ctx,
            left,
            right,
            keys,
            residual,
            build_left,
            window,
            left_schema,
            right_schema,
            schema,
            outer,
            state: State::Closed,
            build_rows: Cell::new(0),
            probe_rows: Cell::new(0),
            spilled_rows: Cell::new(0),
        }
    }

    fn cfg(&self) -> JoinCfg<'a> {
        JoinCfg {
            ctx: self.ctx,
            keys: self.keys,
            residual: self.residual,
            left_schema: self.left_schema,
            right_schema: self.right_schema,
            schema: self.schema,
            outer: self.outer,
            window: self.window.unwrap_or(usize::MAX),
        }
    }

    /// Drain the build side until it either ends (in-memory join) or
    /// overflows the window (Grace), then set up the streaming state.
    fn build_phase(&mut self) -> Result<State> {
        let cfg = self.cfg();
        let build_op: &mut BoxOperator<'a> = if self.build_left {
            &mut self.left
        } else {
            &mut self.right
        };
        let mut rows: Vec<Tuple> = Vec::new();
        let mut bytes = 0usize;
        let mut batch: Vec<Tuple> = Vec::new();
        let mut overflowed = false;
        loop {
            batch.clear();
            let more = build_op.next_batch(&mut batch, DEFAULT_BATCH)?;
            for t in batch.drain(..) {
                bytes += tuple_spill_bytes(&t);
                rows.push(t);
            }
            if let Some(w) = self.window {
                if bytes > w {
                    overflowed = true;
                    break;
                }
            }
            if !more {
                break;
            }
        }
        if overflowed {
            // Grace counts the full build side (these rows included) at
            // its own source, so nothing is charged here.
            return self.grace_phase(&cfg, rows);
        }
        self.build_rows
            .set(self.build_rows.get() + rows.len() as u64);
        if self.build_left {
            self.buffered_phase(&cfg, rows)
        } else {
            let table = build_table(&cfg, &rows, false)?;
            Ok(State::Probe {
                right_rows: rows,
                table,
                lbuf: Vec::new(),
                lpos: 0,
                left_done: false,
                cur: None,
                matches: Vec::new(),
                midx: 0,
            })
        }
    }

    /// Build=left in memory: hash the left rows, stream the right side
    /// into per-left-row buckets, emit the buckets in left order.
    fn buffered_phase(&mut self, cfg: &JoinCfg<'a>, left_rows: Vec<Tuple>) -> Result<State> {
        let table = build_table(cfg, &left_rows, true)?;
        let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); left_rows.len()];
        let mut batch: Vec<Tuple> = Vec::new();
        loop {
            batch.clear();
            let more = self.right.next_batch(&mut batch, DEFAULT_BATCH)?;
            self.probe_rows
                .set(self.probe_rows.get() + batch.len() as u64);
            for r in batch.drain(..) {
                let Some(key) = cfg.key_of(&r, false)? else {
                    continue;
                };
                if let Some(idxs) = table.get(&key) {
                    for &i in idxs {
                        let joined = left_rows[i as usize].join(&r);
                        if cfg.residual_ok(&joined)? {
                            buckets[i as usize].push(joined);
                        }
                    }
                }
            }
            if !more {
                break;
            }
        }
        let mut out = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
        for b in &mut buckets {
            out.append(b);
        }
        Ok(State::Buffered { out, pos: 0 })
    }

    /// The Grace overflow path: partition both inputs to spill runs,
    /// process partition pairs (recursing once, then block-NLJ), and
    /// leave a k-way merge over the sorted output runs.
    fn grace_phase(&mut self, cfg: &JoinCfg<'a>, collected: Vec<Tuple>) -> Result<State> {
        let mut mgr = match self.ctx.spill_base() {
            Some(base) => SpillManager::new_in(base)?,
            None => SpillManager::new()?,
        };
        let mut passes = 1u32;

        // Partition the build side: the rows drained so far, then the
        // rest of its operator. Sequence numbers count arrival order.
        let build_left = self.build_left;
        let spilled = &self.spilled_rows;
        let (build_op, probe_op): (&mut BoxOperator<'a>, &mut BoxOperator<'a>) = if build_left {
            (&mut self.left, &mut self.right)
        } else {
            (&mut self.right, &mut self.left)
        };
        let build_runs = {
            let mut src = operator_source(collected, build_op.as_mut(), &self.build_rows);
            partition_pass(cfg, &mut mgr, &mut src, build_left, 0, spilled)?
        };
        let probe_runs = {
            let mut src = operator_source(Vec::new(), probe_op.as_mut(), &self.probe_rows);
            partition_pass(cfg, &mut mgr, &mut src, !build_left, 0, spilled)?
        };
        let (left_runs, right_runs) = if build_left {
            (build_runs, probe_runs)
        } else {
            (probe_runs, build_runs)
        };

        let mut out_runs: Vec<SpillRun> = Vec::new();
        for (l, r) in left_runs.into_iter().zip(right_runs) {
            process_pair(cfg, &mut mgr, l, r, 1, &mut out_runs, &mut passes, spilled)?;
        }

        self.ctx.note_spill(SpillMetrics {
            runs_written: mgr.runs_written(),
            bytes_spilled: mgr.bytes_spilled(),
            passes,
            spill_dir: Some(mgr.dir().to_path_buf()),
        });
        GraceOutput::new(mgr, out_runs).map(State::Grace)
    }
}

impl Operator for HashJoinOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.build_rows.set(0);
        self.probe_rows.set(0);
        self.spilled_rows.set(0);
        self.left.open()?;
        self.right.open()?;
        self.state = State::Closed;
        self.state = self.build_phase()?;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match &mut self.state {
            State::Closed => Ok(None),
            State::Buffered { out, pos } => match out.get(*pos) {
                Some(t) => {
                    *pos += 1;
                    Ok(Some(t.clone()))
                }
                None => Ok(None),
            },
            State::Grace(g) => g.next(),
            State::Probe {
                right_rows,
                table,
                lbuf,
                lpos,
                left_done,
                cur,
                matches,
                midx,
            } => {
                loop {
                    if let Some(l) = cur.as_ref() {
                        while *midx < matches.len() {
                            let r = &right_rows[matches[*midx] as usize];
                            *midx += 1;
                            let joined = l.join(r);
                            let keep = match self.residual {
                                None => true,
                                Some(p) => {
                                    let v =
                                        eval_row(self.ctx, p, self.schema, &joined, self.outer)?;
                                    truth(&v) == Some(true)
                                }
                            };
                            if keep {
                                return Ok(Some(joined));
                            }
                        }
                        *cur = None;
                    }
                    // Pull the next probe row, refilling the batch
                    // buffer from the left child as needed.
                    if *lpos >= lbuf.len() {
                        if *left_done {
                            return Ok(None);
                        }
                        lbuf.clear();
                        *lpos = 0;
                        *left_done = !self.left.next_batch(lbuf, DEFAULT_BATCH)?;
                        if lbuf.is_empty() {
                            return Ok(None);
                        }
                    }
                    let l = std::mem::take(&mut lbuf[*lpos]);
                    *lpos += 1;
                    self.probe_rows.set(self.probe_rows.get() + 1);
                    matches.clear();
                    *midx = 0;
                    let mut vals = Vec::with_capacity(self.keys.len());
                    let mut key_ok = true;
                    for (lk, _) in self.keys {
                        let v = eval_row(self.ctx, lk, self.left_schema, &l, self.outer)?;
                        vals.push(v);
                    }
                    let key = match JoinKey::new(vals) {
                        Some(k) => k,
                        None => {
                            key_ok = false;
                            JoinKey(Vec::new())
                        }
                    };
                    if key_ok {
                        if let Some(idxs) = table.get(&key) {
                            matches.extend_from_slice(idxs);
                        }
                    }
                    *cur = Some(l);
                }
            }
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        if let State::Buffered { out: rows, pos } = &mut self.state {
            return Ok(crate::physical::batch_from(rows, pos, out, max));
        }
        for _ in 0..max {
            match self.next()? {
                Some(t) => out.push(t),
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        if let State::Buffered { out, pos } = &mut self.state {
            return Ok(Some(crate::physical::slice_from(out, pos, max)));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.state = State::Closed;
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("build_rows", self.build_rows.get()),
            ("probe_rows", self.probe_rows.get()),
            ("spilled_rows", self.spilled_rows.get()),
        ]
    }
}

/// Hash one side's rows into `key -> row indices` (insertion order per
/// key, i.e. that side's arrival order).
fn build_table(
    cfg: &JoinCfg<'_>,
    rows: &[Tuple],
    left_side: bool,
) -> Result<HashMap<JoinKey, Vec<u32>>> {
    let mut table: HashMap<JoinKey, Vec<u32>> = HashMap::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        if let Some(key) = cfg.key_of(row, left_side)? {
            table.entry(key).or_default().push(i as u32);
        }
    }
    Ok(table)
}

// --------------------------------------------------- spill plumbing

/// Prefix a tuple with its per-side sequence number.
fn tag1(seq: i64, row: &Tuple) -> Tuple {
    let mut vals = Vec::with_capacity(row.len() + 1);
    vals.push(Value::Int(seq));
    vals.extend_from_slice(row.values());
    Tuple::new(vals)
}

/// Split a spilled input tuple back into `(seq, row)`.
fn untag1(t: Tuple) -> (i64, Tuple) {
    let mut vals = t.into_values();
    let rest = vals.split_off(1);
    let seq = match vals[0] {
        Value::Int(s) => s,
        _ => unreachable!("spilled join tuples are seq-tagged"),
    };
    (seq, Tuple::new(rest))
}

/// Prefix a combined output row with both sequence numbers — the merge
/// key that restores global nested-loop order.
fn tag2(lseq: i64, rseq: i64, joined: &Tuple) -> Tuple {
    let mut vals = Vec::with_capacity(joined.len() + 2);
    vals.push(Value::Int(lseq));
    vals.push(Value::Int(rseq));
    vals.extend_from_slice(joined.values());
    Tuple::new(vals)
}

/// Split an output-run tuple into its merge key and payload.
fn untag2(t: Tuple) -> ((i64, i64), Tuple) {
    let mut vals = t.into_values();
    let rest = vals.split_off(2);
    let (l, r) = match (&vals[0], &vals[1]) {
        (Value::Int(l), Value::Int(r)) => (*l, *r),
        _ => unreachable!("output-run tuples are (lseq, rseq)-tagged"),
    };
    ((l, r), Tuple::new(rest))
}

/// A `(seq, row)` source over already-collected rows followed by the
/// remainder of a child operator, pulled in batches. Every yielded row
/// ticks `count` — the side's observed input cardinality.
fn operator_source<'s>(
    collected: Vec<Tuple>,
    op: &'s mut (dyn Operator + 's),
    count: &'s Cell<u64>,
) -> impl FnMut() -> Result<Option<(i64, Tuple)>> + 's {
    let mut buf = collected;
    let mut pos = 0usize;
    let mut done = false;
    let mut seq = -1i64;
    move || loop {
        if pos < buf.len() {
            let t = std::mem::take(&mut buf[pos]);
            pos += 1;
            seq += 1;
            count.set(count.get() + 1);
            return Ok(Some((seq, t)));
        }
        if done {
            return Ok(None);
        }
        buf.clear();
        pos = 0;
        done = !op.next_batch(&mut buf, DEFAULT_BATCH)?;
    }
}

/// One Grace partitioning pass over one side: route every row (tagged
/// with its sequence number) to its key's partition run. Rows whose key
/// contains NULL/NaN can never join and are dropped here. Partitions
/// that receive no rows get no run (`None`).
fn partition_pass(
    cfg: &JoinCfg<'_>,
    mgr: &mut SpillManager,
    src: &mut dyn FnMut() -> Result<Option<(i64, Tuple)>>,
    left_side: bool,
    depth: u32,
    spilled: &Cell<u64>,
) -> Result<Vec<Option<SpillRun>>> {
    let mut writers: Vec<Option<RunWriter>> = (0..FANOUT).map(|_| None).collect();
    while let Some((seq, row)) = src()? {
        let Some(key) = cfg.key_of(&row, left_side)? else {
            continue;
        };
        let p = partition_of(&key, depth);
        if writers[p].is_none() {
            writers[p] = Some(mgr.begin_run()?);
        }
        writers[p]
            .as_mut()
            .expect("writer created above")
            .write_tuple(&tag1(seq, &row))?;
        spilled.set(spilled.get() + 1);
    }
    let mut runs = Vec::with_capacity(FANOUT);
    for w in writers {
        runs.push(match w {
            None => None,
            Some(w) => {
                let run = w.finish()?;
                mgr.record_run(&run);
                Some(run)
            }
        });
    }
    Ok(runs)
}

/// Read one side's partition run fully back into `(seq, row)` pairs.
fn read_run(run: &SpillRun) -> Result<Vec<(i64, Tuple)>> {
    let mut reader = RunReader::open(run)?;
    let mut rows = Vec::with_capacity(usize::try_from(run.tuples).unwrap_or(0));
    while let Some(t) = reader.next_tuple()? {
        rows.push(untag1(t));
    }
    Ok(rows)
}

/// Join one partition pair. Fits-in-window pairs hash-join in memory;
/// oversized pairs re-partition once with a fresh salt; still-oversized
/// pairs (skew) fall back to block nested-loop. Every path appends
/// output runs sorted by `(left seq, right seq)` and deletes its input
/// runs when done.
#[allow(clippy::too_many_arguments)]
fn process_pair(
    cfg: &JoinCfg<'_>,
    mgr: &mut SpillManager,
    left: Option<SpillRun>,
    right: Option<SpillRun>,
    depth: u32,
    out_runs: &mut Vec<SpillRun>,
    passes: &mut u32,
    spilled: &Cell<u64>,
) -> Result<()> {
    let (left, right) = match (left, right) {
        (Some(l), Some(r)) => (l, r),
        // A one-sided partition produces no inner-join output.
        (Some(run), None) | (None, Some(run)) => {
            let _ = run.delete();
            return Ok(());
        }
        (None, None) => return Ok(()),
    };
    let right_bytes = usize::try_from(right.bytes).unwrap_or(usize::MAX);
    if right_bytes <= cfg.window {
        return pair_in_memory(cfg, mgr, &left, &right, out_runs).map(|()| {
            let _ = left.delete();
            let _ = right.delete();
        });
    }
    if depth < MAX_DEPTH {
        *passes += 1;
        let left_subs = {
            let mut reader = RunReader::open(&left)?;
            let mut src =
                move || -> Result<Option<(i64, Tuple)>> { Ok(reader.next_tuple()?.map(untag1)) };
            partition_pass(cfg, mgr, &mut src, true, depth, spilled)?
        };
        let right_subs = {
            let mut reader = RunReader::open(&right)?;
            let mut src =
                move || -> Result<Option<(i64, Tuple)>> { Ok(reader.next_tuple()?.map(untag1)) };
            partition_pass(cfg, mgr, &mut src, false, depth, spilled)?
        };
        let _ = left.delete();
        let _ = right.delete();
        for (l, r) in left_subs.into_iter().zip(right_subs) {
            process_pair(cfg, mgr, l, r, depth + 1, out_runs, passes, spilled)?;
        }
        return Ok(());
    }
    pair_block_nlj(cfg, mgr, &left, &right, out_runs).map(|()| {
        let _ = left.delete();
        let _ = right.delete();
    })
}

/// Join a fits-in-window pair: hash the right half, stream the left
/// half in its spilled (= sequence) order. Probing in ascending left
/// sequence against match lists in ascending right sequence makes the
/// pair's output run sorted by `(left seq, right seq)` with no sort.
fn pair_in_memory(
    cfg: &JoinCfg<'_>,
    mgr: &mut SpillManager,
    left: &SpillRun,
    right: &SpillRun,
    out_runs: &mut Vec<SpillRun>,
) -> Result<()> {
    let right_rows = read_run(right)?;
    let mut table: HashMap<JoinKey, Vec<u32>> = HashMap::with_capacity(right_rows.len());
    for (i, (_, row)) in right_rows.iter().enumerate() {
        if let Some(key) = cfg.key_of(row, false)? {
            table.entry(key).or_default().push(i as u32);
        }
    }
    let mut reader = RunReader::open(left)?;
    let mut writer: Option<RunWriter> = None;
    while let Some(t) = reader.next_tuple()? {
        let (lseq, lrow) = untag1(t);
        let Some(key) = cfg.key_of(&lrow, true)? else {
            continue;
        };
        let Some(idxs) = table.get(&key) else {
            continue;
        };
        for &i in idxs {
            let (rseq, rrow) = &right_rows[i as usize];
            let joined = lrow.join(rrow);
            if cfg.residual_ok(&joined)? {
                if writer.is_none() {
                    writer = Some(mgr.begin_run()?);
                }
                writer
                    .as_mut()
                    .expect("writer created above")
                    .write_tuple(&tag2(lseq, *rseq, &joined))?;
            }
        }
    }
    if let Some(w) = writer {
        let run = w.finish()?;
        mgr.record_run(&run);
        out_runs.push(run);
    }
    Ok(())
}

/// Skew fallback: hash the right half in window-sized chunks and
/// re-stream the left half against each chunk. Each chunk's output is
/// sorted by `(left seq, right seq)` on its own — one output run per
/// chunk; the global merge interleaves them correctly.
fn pair_block_nlj(
    cfg: &JoinCfg<'_>,
    mgr: &mut SpillManager,
    left: &SpillRun,
    right: &SpillRun,
    out_runs: &mut Vec<SpillRun>,
) -> Result<()> {
    let mut right_reader = RunReader::open(right)?;
    loop {
        // Next build chunk: at least one tuple, at most a window's worth.
        let mut chunk: Vec<(i64, Tuple)> = Vec::new();
        let mut bytes = 0usize;
        while bytes <= cfg.window {
            match right_reader.next_tuple()? {
                Some(t) => {
                    bytes += tuple_spill_bytes(&t);
                    chunk.push(untag1(t));
                }
                None => break,
            }
        }
        if chunk.is_empty() {
            return Ok(());
        }
        let mut table: HashMap<JoinKey, Vec<u32>> = HashMap::with_capacity(chunk.len());
        for (i, (_, row)) in chunk.iter().enumerate() {
            if let Some(key) = cfg.key_of(row, false)? {
                table.entry(key).or_default().push(i as u32);
            }
        }
        let mut reader = RunReader::open(left)?;
        let mut writer: Option<RunWriter> = None;
        while let Some(t) = reader.next_tuple()? {
            let (lseq, lrow) = untag1(t);
            let Some(key) = cfg.key_of(&lrow, true)? else {
                continue;
            };
            let Some(idxs) = table.get(&key) else {
                continue;
            };
            for &i in idxs {
                let (rseq, rrow) = &chunk[i as usize];
                let joined = lrow.join(rrow);
                if cfg.residual_ok(&joined)? {
                    if writer.is_none() {
                        writer = Some(mgr.begin_run()?);
                    }
                    writer
                        .as_mut()
                        .expect("writer created above")
                        .write_tuple(&tag2(lseq, *rseq, &joined))?;
                }
            }
        }
        if let Some(w) = writer {
            let run = w.finish()?;
            mgr.record_run(&run);
            out_runs.push(run);
        }
    }
}

/// Streaming k-way merge over the sorted output runs, by `(left seq,
/// right seq)`. Every joined pair lands in exactly one run (its key
/// routes both rows to one partition pair; within a pair, one chunk),
/// so a linear min-scan over the — few dozen at most — run heads
/// restores the exact nested-loop order.
struct GraceOutput {
    /// Keeps the spill directory (and the output runs) alive until the
    /// operator is closed.
    _mgr: SpillManager,
    /// One lookahead head per non-exhausted run: merge key, payload,
    /// reader.
    heads: Vec<((i64, i64), Tuple, RunReader)>,
}

impl GraceOutput {
    fn new(mgr: SpillManager, runs: Vec<SpillRun>) -> Result<GraceOutput> {
        let mut heads = Vec::with_capacity(runs.len());
        for run in &runs {
            let mut reader = RunReader::open(run)?;
            if let Some(t) = reader.next_tuple()? {
                let (key, payload) = untag2(t);
                heads.push((key, payload, reader));
            }
        }
        Ok(GraceOutput { _mgr: mgr, heads })
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let mut best: Option<usize> = None;
        for (i, (key, _, _)) in self.heads.iter().enumerate() {
            if best.map_or(true, |b| *key < self.heads[b].0) {
                best = Some(i);
            }
        }
        let Some(i) = best else {
            return Ok(None);
        };
        let out = std::mem::take(&mut self.heads[i].1);
        match self.heads[i].2.next_tuple()? {
            Some(t) => {
                let (key, payload) = untag2(t);
                self.heads[i].0 = key;
                self.heads[i].1 = payload;
            }
            None => {
                self.heads.swap_remove(i);
            }
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_types::{Column, DataType};

    fn schema(qual: &str, cols: &[&str]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|c| Column::new(*c, DataType::Int))
                .collect::<Vec<_>>(),
        )
        .unwrap()
        .with_qualifier(qual)
    }

    fn col(q: &str, n: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.into()),
            name: n.into(),
        }
    }

    fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(a),
            op: BinaryOp::Eq,
            right: Box::new(b),
        }
    }

    fn and(a: Expr, b: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(a),
            op: BinaryOp::And,
            right: Box::new(b),
        }
    }

    #[test]
    fn extracts_simple_equi_key() {
        let l = schema("a", &["x", "z"]);
        let r = schema("b", &["y", "w"]);
        let on = eq(col("a", "x"), col("b", "y"));
        let equi = split_equi_join(&on, &l, &r).expect("equi join");
        assert_eq!(equi.keys.len(), 1);
        assert!(equi.residual.is_none());
    }

    #[test]
    fn reversed_sides_normalize_to_left_right() {
        let l = schema("a", &["x"]);
        let r = schema("b", &["y"]);
        let on = eq(col("b", "y"), col("a", "x"));
        let equi = split_equi_join(&on, &l, &r).expect("equi join");
        assert_eq!(equi.keys[0].0, col("a", "x"));
        assert_eq!(equi.keys[0].1, col("b", "y"));
    }

    #[test]
    fn mixed_condition_keeps_non_equi_as_residual() {
        let l = schema("a", &["x", "z"]);
        let r = schema("b", &["y", "w"]);
        let on = and(
            eq(col("a", "x"), col("b", "y")),
            Expr::Binary {
                left: Box::new(col("a", "z")),
                op: BinaryOp::Gt,
                right: Box::new(col("b", "w")),
            },
        );
        let equi = split_equi_join(&on, &l, &r).expect("equi join");
        assert_eq!(equi.keys.len(), 1);
        assert!(equi.residual.is_some());
    }

    #[test]
    fn pure_non_equi_condition_bails() {
        let l = schema("a", &["x"]);
        let r = schema("b", &["y"]);
        let on = Expr::Binary {
            left: Box::new(col("a", "x")),
            op: BinaryOp::Gt,
            right: Box::new(col("b", "y")),
        };
        assert!(split_equi_join(&on, &l, &r).is_none());
    }

    #[test]
    fn same_side_equality_is_residual_not_key() {
        // a.x = a.z is a filter, not a join key; alone it cannot carry
        // a hash join.
        let l = schema("a", &["x", "z"]);
        let r = schema("b", &["y"]);
        let on = eq(col("a", "x"), col("a", "z"));
        assert!(split_equi_join(&on, &l, &r).is_none());
    }

    #[test]
    fn unresolvable_column_bails_entirely() {
        // outer.k resolves against neither input (a correlated ON): the
        // nested loop must keep raising its resolution error.
        let l = schema("a", &["x"]);
        let r = schema("b", &["y"]);
        let on = and(
            eq(col("a", "x"), col("b", "y")),
            eq(col("outer", "k"), col("a", "x")),
        );
        assert!(split_equi_join(&on, &l, &r).is_none());
    }

    #[test]
    fn subquery_in_condition_bails_entirely() {
        let l = schema("a", &["x"]);
        let r = schema("b", &["y"]);
        let on = and(
            eq(col("a", "x"), col("b", "y")),
            Expr::Exists {
                query: match prefsql_parser::parse_statement("SELECT 1").unwrap() {
                    prefsql_parser::ast::Statement::Select(q) => q,
                    other => panic!("unexpected statement {other:?}"),
                },
                negated: false,
            },
        );
        assert!(split_equi_join(&on, &l, &r).is_none());
    }

    #[test]
    fn ambiguous_column_bails_entirely() {
        // Both sides expose x under the same qualifier: the combined
        // resolution is ambiguous, so the nested loop keeps the error.
        let l = schema("t", &["x"]);
        let r = schema("t", &["x"]);
        let on = eq(
            Expr::Column {
                qualifier: None,
                name: "x".into(),
            },
            Expr::Column {
                qualifier: None,
                name: "x".into(),
            },
        );
        assert!(split_equi_join(&on, &l, &r).is_none());
    }

    #[test]
    fn join_key_normalizes_sql_equality() {
        // INT and FLOAT of equal value collide.
        let a = JoinKey::new(vec![Value::Int(1)]).unwrap();
        let b = JoinKey::new(vec![Value::Float(1.0)]).unwrap();
        assert_eq!(a, b);
        // -0.0 and 0.0 are SQL-equal and must share a key.
        let n = JoinKey::new(vec![Value::Float(-0.0)]).unwrap();
        let z = JoinKey::new(vec![Value::Int(0)]).unwrap();
        assert_eq!(n, z);
        // NULL and NaN keys can never satisfy `=`.
        assert!(JoinKey::new(vec![Value::Null]).is_none());
        assert!(JoinKey::new(vec![Value::Float(f64::NAN)]).is_none());
    }

    #[test]
    fn depth_salts_redistribute_partitions() {
        // Keys that collide at one depth must not all collide at the
        // next (otherwise re-partitioning a skewed pair is a no-op).
        let keys: Vec<JoinKey> = (0..64)
            .map(|i| JoinKey::new(vec![Value::Int(i)]).unwrap())
            .collect();
        let moved = keys
            .iter()
            .filter(|k| partition_of(k, 0) != partition_of(k, 1))
            .count();
        assert!(moved > 0, "depth salt must move at least some keys");
    }
}
