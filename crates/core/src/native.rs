//! Native preference evaluation — the "skyline operator in the kernel"
//! alternative the paper's outlook points at (§3.3: "implementing a
//! generalized skyline operator in the kernel of an SQL-system clearly
//! holds much promise").
//!
//! Instead of rewriting to a `NOT EXISTS` anti-join, this path evaluates
//! the base-preference expressions of every WHERE-qualified tuple into
//! *slot vectors* and runs an explicit maximal-set algorithm from
//! `prefsql-pref` (naive nested loop, BNL, or SFS). Semantics are identical
//! to the rewrite path — the `rewrite_vs_native` differential test suite
//! and ablation benchmark A1 depend on that.

use crate::result::ResultSet;
use prefsql_engine::eval::{eval, truth, Frame, SubqueryEval};
use prefsql_engine::{Engine, Relation};
use prefsql_parser::ast::{Expr, Query, SelectItem};
use prefsql_pref::{bmo_grouped, maximal_bnl, maximal_naive, maximal_sfs, BasePref};
use prefsql_rewrite::compile::{compile_preference, CompiledPreference};
use prefsql_rewrite::PreferenceRegistry;
use prefsql_types::{Column, DataType, Error, Result, Schema, Tuple, Value};

/// Which maximal-set algorithm evaluates the preference natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkylineAlgo {
    /// The paper's abstract selection method (§3.2): O(n²) nested loop.
    Naive,
    /// Block-nested-loops \[BKS01\].
    Bnl,
    /// Sort-filter-skyline (pre-sort by a dominance-compatible order).
    Sfs,
}

/// Evaluate a preference query natively. The hard part of the query
/// (FROM/WHERE) still runs on the host engine; preference selection runs
/// in this layer.
pub fn run_native(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    algo: SkylineAlgo,
) -> Result<ResultSet> {
    let pref_ast = query
        .preferring
        .as_ref()
        .ok_or_else(|| Error::Plan("native evaluation requires a PREFERRING clause".into()))?;
    if !query.group_by.is_empty() || query.having.is_some() {
        return Err(Error::Unsupported(
            "GROUP BY/HAVING combined with PREFERRING is only supported in \
             rewrite mode"
                .into(),
        ));
    }
    let resolved = registry.resolve(pref_ast)?;
    let compiled = compile_preference(&resolved)?;
    let arity = compiled.preference.arity();

    // Fetch WHERE-qualified tuples with slot and grouping columns appended.
    let mut aux_select: Vec<SelectItem> = vec![SelectItem::Wildcard];
    for (i, e) in compiled.base_exprs.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: e.clone(),
            alias: Some(format!("prefsql_s{i}")),
        });
    }
    for (j, g) in query.grouping.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: g.clone(),
            alias: Some(format!("prefsql_g{j}")),
        });
    }
    let aux = Query {
        select: aux_select,
        from: query.from.clone(),
        where_clause: query.where_clause.clone(),
        ..Default::default()
    };
    let rel = engine.run_query(&aux, &[])?;
    let n_groups = query.grouping.len();
    let n_orig = rel.schema.len() - arity - n_groups;

    let slot_of =
        |row: &Tuple| -> Vec<Value> { (0..arity).map(|i| row[n_orig + i].clone()).collect() };
    let group_of = |row: &Tuple| -> Vec<Value> {
        (0..n_groups)
            .map(|j| row[n_orig + arity + j].clone())
            .collect()
    };

    // Data-dependent optima for LOWEST/HIGHEST quality functions.
    let best_scores: Vec<Option<f64>> = (0..arity)
        .map(|i| {
            rel.rows
                .iter()
                .filter_map(|r| compiled.preference.bases()[i].score(&r[n_orig + i]))
                .min_by(|a, b| a.total_cmp(b))
        })
        .collect();

    // BUT ONLY filters candidates before dominance (§2.2.5).
    let ctx = EngineSubqueries { engine };
    let candidates: Vec<&Tuple> = match &query.but_only {
        None => rel.rows.iter().collect(),
        Some(b) => {
            let mut kept = Vec::new();
            for row in &rel.rows {
                let substituted =
                    substitute_quality(b, &compiled, &slot_of(row), &best_scores, n_orig)?;
                let frames = [Frame {
                    schema: &rel.schema,
                    tuple: row,
                }];
                if truth(&eval(&substituted, &frames, &ctx)?) == Some(true) {
                    kept.push(row);
                }
            }
            kept
        }
    };

    // Maximal-set selection.
    let slot_vectors: Vec<Vec<Value>> = candidates.iter().map(|r| slot_of(r)).collect();
    let winner_indices: Vec<usize> = if n_groups > 0 {
        let keys: Vec<Vec<Value>> = candidates.iter().map(|r| group_of(r)).collect();
        bmo_grouped(&slot_vectors, &keys, &compiled.preference)
    } else {
        match algo {
            SkylineAlgo::Naive => maximal_naive(&slot_vectors, &compiled.preference),
            SkylineAlgo::Bnl => maximal_bnl(&slot_vectors, &compiled.preference),
            SkylineAlgo::Sfs => maximal_sfs(&slot_vectors, &compiled.preference),
        }
    };
    let mut winners: Vec<&Tuple> = winner_indices.iter().map(|&i| candidates[i]).collect();

    // ORDER BY (quality functions allowed).
    if !query.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, &Tuple)> = Vec::with_capacity(winners.len());
        for row in winners {
            let mut key = Vec::with_capacity(query.order_by.len());
            for o in &query.order_by {
                let substituted =
                    substitute_quality(&o.expr, &compiled, &slot_of(row), &best_scores, n_orig)?;
                let frames = [Frame {
                    schema: &rel.schema,
                    tuple: row,
                }];
                key.push(eval(&substituted, &frames, &ctx)?);
            }
            keyed.push((key, row));
        }
        keyed.sort_by(|a, b| {
            for (i, o) in query.order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if o.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        winners = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // Projection.
    let mut columns: Vec<Column> = Vec::new();
    let mut cells_per_row: Vec<Vec<Value>> = vec![Vec::new(); winners.len()];
    for item in &query.select {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                for c in rel.schema.columns().iter().take(n_orig) {
                    let mut col = c.clone();
                    col.qualifier = None;
                    columns.push(col);
                }
                for (out, row) in cells_per_row.iter_mut().zip(&winners) {
                    out.extend(row.values().iter().take(n_orig).cloned());
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::Function { name, args } => match args.first() {
                        Some(Expr::Column { name: col, .. })
                            if matches!(name.as_str(), "top" | "level" | "distance") =>
                        {
                            format!("{name}_{col}")
                        }
                        _ => name.clone(),
                    },
                    other => other.to_string().to_ascii_lowercase(),
                });
                let mut dtype = DataType::Str;
                for (out, row) in cells_per_row.iter_mut().zip(&winners) {
                    let substituted =
                        substitute_quality(expr, &compiled, &slot_of(row), &best_scores, n_orig)?;
                    let frames = [Frame {
                        schema: &rel.schema,
                        tuple: row,
                    }];
                    let v = eval(&substituted, &frames, &ctx)?;
                    if let Some(t) = v.data_type() {
                        dtype = t;
                    }
                    out.push(v);
                }
                columns.push(Column::new(name, dtype));
            }
        }
    }
    // Unique output names (mirrors the engine's projection behaviour).
    let mut seen: Vec<String> = Vec::new();
    for c in &mut columns {
        if seen.contains(&c.name) {
            let mut k = 2;
            while seen.contains(&format!("{}_{k}", c.name)) {
                k += 1;
            }
            c.name = format!("{}_{k}", c.name);
        }
        seen.push(c.name.clone());
    }
    let schema = Schema::new(columns)?;
    let mut rows: Vec<Tuple> = cells_per_row.into_iter().map(Tuple::new).collect();

    // DISTINCT and LIMIT.
    if query.distinct {
        let mut kept: Vec<Tuple> = Vec::new();
        for row in rows {
            if !kept.iter().any(|k| {
                k.values()
                    .iter()
                    .zip(row.values())
                    .all(|(a, b)| a.key_eq(b))
            }) {
                kept.push(row);
            }
        }
        rows = kept;
    }
    if let Some(n) = query.limit {
        rows.truncate(n as usize);
    }
    Ok(ResultSet::new(Relation { schema, rows }))
}

/// Replace `TOP`/`LEVEL`/`DISTANCE` calls with their computed values for
/// one tuple. Non-quality sub-expressions are left for the engine
/// evaluator.
fn substitute_quality(
    expr: &Expr,
    compiled: &CompiledPreference,
    slots: &[Value],
    best_scores: &[Option<f64>],
    _n_orig: usize,
) -> Result<Expr> {
    if let Expr::Function { name, args } = expr {
        if matches!(name.as_str(), "top" | "level" | "distance") {
            if args.len() != 1 {
                return Err(Error::Plan(format!(
                    "{name}() expects exactly one attribute argument"
                )));
            }
            let slot = compiled.slot_of(&args[0]).ok_or_else(|| {
                Error::Rewrite(format!(
                    "{name}({}) does not match any base preference",
                    args[0]
                ))
            })?;
            let base = &compiled.preference.bases()[slot];
            let v = &slots[slot];
            return Ok(Expr::Literal(native_quality_value(
                name,
                base,
                v,
                best_scores[slot],
            )?));
        }
    }
    // Rebuild with substituted children.
    let rebuilt = match expr {
        Expr::Unary { op, expr: e } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_quality(
                e,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_quality(
                left,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            op: *op,
            right: Box::new(substitute_quality(
                right,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
        },
        Expr::IsNull { expr: e, negated } => Expr::IsNull {
            expr: Box::new(substitute_quality(
                e,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            negated: *negated,
        },
        Expr::Between {
            expr: e,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(substitute_quality(
                e,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            low: Box::new(substitute_quality(
                low,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            high: Box::new(substitute_quality(
                high,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            negated: *negated,
        },
        Expr::InList {
            expr: e,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_quality(
                e,
                compiled,
                slots,
                best_scores,
                _n_orig,
            )?),
            list: list
                .iter()
                .map(|i| substitute_quality(i, compiled, slots, best_scores, _n_orig))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| substitute_quality(o, compiled, slots, best_scores, _n_orig).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        substitute_quality(w, compiled, slots, best_scores, _n_orig)?,
                        substitute_quality(t, compiled, slots, best_scores, _n_orig)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| substitute_quality(e, compiled, slots, best_scores, _n_orig).map(Box::new))
                .transpose()?,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_quality(a, compiled, slots, best_scores, _n_orig))
                .collect::<Result<_>>()?,
        },
        other => other.clone(),
    };
    Ok(rebuilt)
}

/// The value of one quality function for one attribute value.
fn native_quality_value(
    func: &str,
    base: &BasePref,
    v: &Value,
    best_score: Option<f64>,
) -> Result<Value> {
    match func {
        "level" => Ok(base.level(v).map(Value::Int).unwrap_or(Value::Null)),
        "distance" => match base {
            BasePref::Around { .. } | BasePref::Between { .. } => {
                Ok(base.score(v).map(float_or_int).unwrap_or(Value::Null))
            }
            BasePref::Lowest | BasePref::Highest => match (base.score(v), best_score) {
                (Some(s), Some(b)) => Ok(float_or_int(s - b)),
                _ => Ok(Value::Null),
            },
            _ => Err(Error::Plan(
                "DISTANCE() applies to numeric preferences; use LEVEL() for \
                 categorical preferences"
                    .into(),
            )),
        },
        "top" => match base {
            BasePref::Lowest | BasePref::Highest => Ok(Value::Bool(
                matches!((base.score(v), best_score), (Some(s), Some(b)) if s == b),
            )),
            _ => Ok(Value::Bool(base.top(v, None))),
        },
        other => Err(Error::Plan(format!("unknown quality function '{other}'"))),
    }
}

/// Distances are conceptually numeric; keep integers integral for display
/// parity with the rewrite path.
fn float_or_int(f: f64) -> Value {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        Value::Int(f as i64)
    } else {
        Value::Float(f)
    }
}

struct EngineSubqueries<'e> {
    engine: &'e Engine,
}

impl SubqueryEval for EngineSubqueries<'_> {
    fn eval_subquery(&self, query: &Query, frames: &[Frame<'_>]) -> Result<Vec<Tuple>> {
        Ok(self.engine.run_query(query, frames)?.rows)
    }
}
