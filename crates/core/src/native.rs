//! Native preference evaluation — the "skyline operator in the kernel"
//! alternative the paper's outlook points at (§3.3: "implementing a
//! generalized skyline operator in the kernel of an SQL-system clearly
//! holds much promise").
//!
//! Instead of rewriting to a `NOT EXISTS` anti-join, this path plans the
//! hard part of the query (FROM/WHERE plus the base-preference slot
//! columns) on the host engine's operator pipeline and splices a
//! first-class [`PreferenceOp`] physical operator on top: it drains its
//! input, evaluates the `BUT ONLY` threshold, and runs a maximal-set
//! algorithm from `prefsql-pref` — by default [`SkylineAlgo::Auto`], which
//! picks naive/BNL/SFS from input cardinality and preference shape.
//! Semantics are identical to the rewrite path — the `rewrite_vs_native`
//! differential test suite and ablation benchmark A1 depend on that.

use crate::knobs;
use crate::result::{ResultSet, ViewActivity};
use prefsql_engine::eval::{eval, truth, Frame};
use prefsql_engine::physical::{
    batch_from, build, drain_batched, drain_tuple_at_a_time, slice_from, BoxOperator, Operator,
    DEFAULT_BATCH,
};
use prefsql_engine::{Engine, ExecCtx, PlanNode, Relation};
use prefsql_parser::ast::{Expr, Query, SelectItem, Statement, TableRef};
use prefsql_pref::external::ExternalSkyline;
use prefsql_pref::{bmo_grouped, maximal_with_threads, should_spill, BasePref};
use prefsql_rewrite::compile::{compile_preference, CompiledPreference};
use prefsql_rewrite::PreferenceRegistry;
use prefsql_storage::spill::{tuple_spill_bytes, RunReader, SpillManager};
use prefsql_types::{Column, DataType, Error, Result, Schema, Tuple, Value};
use std::path::Path;

pub use prefsql_pref::{SkylineAlgo, SpillMetrics};

/// Execution knobs for the native preference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeOptions {
    /// Maximal-set algorithm ([`SkylineAlgo::Auto`] = cost-based).
    pub algo: SkylineAlgo,
    /// Parallel-window degree knob (the shell's `\threads N`):
    /// [`SkylineAlgo::Auto`] splits the skyline across up to this many
    /// scoped OS threads once the candidate set exceeds
    /// [`prefsql_pref::PARALLEL_CUTOFF`]; `1` forces the serial window.
    pub threads: usize,
    /// Batch size of the drive loop pulling the source plan; `None`
    /// drives tuple-at-a-time through [`Operator::next`] (the
    /// differential suites pin batched ≡ streaming with this).
    pub batch: Option<usize>,
    /// External-memory window budget in bytes (the shell's
    /// `\window N[k|m]`): [`SkylineAlgo::Auto`] streams the candidate
    /// set through the bounded-window multi-pass BNL with spill-to-disk
    /// overflow runs once the candidates exceed this many bytes. `None`
    /// (the default without `PREFSQL_WINDOW`) never spills.
    pub window_bytes: Option<usize>,
}

impl Default for NativeOptions {
    /// Auto algorithm, session-default parallelism (`PREFSQL_THREADS`
    /// or the host width), batched drive loop, session-default window
    /// budget (`PREFSQL_WINDOW` or unbounded).
    fn default() -> Self {
        NativeOptions {
            algo: SkylineAlgo::default(),
            threads: knobs::default_threads(),
            batch: Some(DEFAULT_BATCH),
            window_bytes: knobs::default_window_bytes(),
        }
    }
}

impl NativeOptions {
    /// Default options with a forced algorithm.
    pub fn with_algo(algo: SkylineAlgo) -> Self {
        NativeOptions {
            algo,
            ..NativeOptions::default()
        }
    }
}

/// The validated, compiled ingredients of one native preference query.
struct NativeQuery {
    compiled: CompiledPreference,
    aux: Query,
    n_groups: usize,
}

/// Validate `query`, compile its preference and build the auxiliary query
/// that fetches WHERE-qualified tuples with slot and grouping columns
/// appended.
fn prepare(registry: &PreferenceRegistry, query: &Query) -> Result<NativeQuery> {
    let pref_ast = query
        .preferring
        .as_ref()
        .ok_or_else(|| Error::Plan("native evaluation requires a PREFERRING clause".into()))?;
    if !query.group_by.is_empty() || query.having.is_some() {
        return Err(Error::Unsupported(
            "GROUP BY/HAVING combined with PREFERRING is only supported in \
             rewrite mode"
                .into(),
        ));
    }
    let resolved = registry.resolve(pref_ast)?;
    let compiled = compile_preference(&resolved)?;
    let mut aux_select: Vec<SelectItem> = vec![SelectItem::Wildcard];
    for (i, e) in compiled.base_exprs.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: e.clone(),
            alias: Some(format!("prefsql_s{i}")),
        });
    }
    for (j, g) in query.grouping.iter().enumerate() {
        aux_select.push(SelectItem::Expr {
            expr: g.clone(),
            alias: Some(format!("prefsql_g{j}")),
        });
    }
    let aux = Query {
        select: aux_select,
        from: query.from.clone(),
        where_clause: query.where_clause.clone(),
        ..Default::default()
    };
    Ok(NativeQuery {
        compiled,
        aux,
        n_groups: query.grouping.len(),
    })
}

/// How a native preference query relates to the materialized preference
/// views registered on its base table.
enum ViewMatch {
    /// A fresh view defines exactly this BMO — serve its stored winners.
    Hit(String),
    /// A view defines this BMO but is stale (refuses reads until
    /// `REFRESH MATERIALIZED PREFERENCE VIEW` rebuilds it).
    Stale(String),
    /// Views exist on the base table, but none can serve this query.
    Miss(String),
    /// No views on the query's base table (or no single base table).
    None,
}

/// True iff `expr` mentions a quality function (`TOP`/`LEVEL`/`DISTANCE`)
/// anywhere. Quality functions need the data-dependent optima, which a
/// view cache hit does not compute — such queries always recompute.
fn uses_quality(expr: &Expr) -> bool {
    if let Expr::Function { name, .. } = expr {
        if matches!(name.as_str(), "top" | "level" | "distance") {
            return true;
        }
    }
    expr.children().into_iter().any(uses_quality)
}

/// True iff the plan reads through a B-tree index probe anywhere. Index
/// probes surface candidates in *key* order, while a view's entries are
/// in *row-id* order — serving from the view under an index plan could
/// reorder the winners relative to a cold recompute, so such plans never
/// hit the cache.
fn plan_uses_index(node: &PlanNode) -> bool {
    match node {
        PlanNode::IndexScan { .. } => true,
        PlanNode::Materialize { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Distinct { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Aggregate { input, .. } => plan_uses_index(input),
        PlanNode::NestedLoopJoin { left, right, .. } | PlanNode::HashJoin { left, right, .. } => {
            plan_uses_index(left) || plan_uses_index(right)
        }
        PlanNode::Nothing { .. } | PlanNode::SeqScan { .. } | PlanNode::MatViewScan { .. } => false,
    }
}

/// Classify `query` against the registered materialized preference views:
/// a [`ViewMatch::Hit`] means the stored winner set *is* the BMO result of
/// this query (same FROM, same WHERE, same resolved preference), so the
/// native path can skip the dominance pass entirely.
///
/// Serving stays byte-identical to recomputation because view entries
/// mirror base-table row ids in order — the same order a sequential scan
/// feeds the skyline — and the caller reruns its own ORDER BY /
/// projection / DISTINCT / LIMIT tail over the served winners.
fn classify_view(
    ctx: &ExecCtx<'_>,
    registry: &PreferenceRegistry,
    query: &Query,
    plan_root: &PlanNode,
) -> ViewMatch {
    let [TableRef::Named { name: base, .. }] = query.from.as_slice() else {
        return ViewMatch::None;
    };
    let cat = ctx.catalog();
    let candidates = cat.matviews_on(base);
    let Some(first) = candidates.first().cloned() else {
        return ViewMatch::None;
    };
    let Some(resolved) = query
        .preferring
        .as_ref()
        .and_then(|p| registry.resolve(p).ok())
    else {
        return ViewMatch::Miss(first);
    };
    for name in &candidates {
        let Some(def) = cat.matview(name) else {
            continue;
        };
        // The stored SQL is the canonical defining query (preferences
        // already resolved at CREATE time).
        let Ok(Statement::Select(vq)) = prefsql_parser::parse_statement(&def.sql) else {
            continue;
        };
        let defines = vq.from == query.from
            && vq.where_clause == query.where_clause
            && vq.preferring.as_ref() == Some(&resolved);
        if !defines {
            continue;
        }
        if def.stale {
            return ViewMatch::Stale(name.clone());
        }
        let serveable = query.grouping.is_empty()
            && query.but_only.is_none()
            && !query.select.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => uses_quality(expr),
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => false,
            })
            && !query.order_by.iter().any(|o| uses_quality(&o.expr))
            && !plan_uses_index(plan_root);
        if serveable {
            return ViewMatch::Hit(name.clone());
        }
        return ViewMatch::Miss(name.clone());
    }
    ViewMatch::Miss(first)
}

/// The stored winner set of a view, re-extended with its slot columns so
/// the served tuples are shaped exactly like [`PreferenceOp`] output
/// (base row followed by `prefsql_s*` slots) and the post-processing
/// tail of [`run_native_ctx`] applies unchanged.
fn served_winners(ctx: &ExecCtx<'_>, view: &str) -> Result<Vec<Tuple>> {
    let cat = ctx.catalog();
    let def = cat
        .matview(view)
        .ok_or_else(|| Error::Catalog(format!("unknown materialized preference view '{view}'")))?;
    Ok(def
        .entries
        .iter()
        .filter(|e| e.winner)
        .map(|e| {
            let mut values = e.output.values().to_vec();
            values.extend(e.slots.iter().cloned());
            Tuple::new(values)
        })
        .collect())
}

/// The Best-Matches-Only physical operator: a pipeline breaker that
/// drains its input (tuples extended with slot and grouping columns),
/// applies the `BUT ONLY` quality threshold, runs the maximal-set
/// selection and streams the winners.
///
/// Implements the host engine's [`Operator`] contract, so it composes
/// with any engine-planned source tree.
pub struct PreferenceOp<'a> {
    input: BoxOperator<'a>,
    ctx: &'a ExecCtx<'a>,
    /// Schema of the extended input tuples.
    schema: &'a Schema,
    compiled: &'a CompiledPreference,
    but_only: Option<&'a Expr>,
    opts: NativeOptions,
    /// Columns of the original relation (before the appended slots).
    n_orig: usize,
    n_groups: usize,
    winners: Vec<Tuple>,
    best_scores: Vec<Option<f64>>,
    spill: Option<SpillMetrics>,
    /// Base directory for spill runs (`None` = the system temp dir);
    /// sessions point this at their own spill dir.
    spill_base: Option<&'a Path>,
    pos: usize,
}

impl<'a> PreferenceOp<'a> {
    /// Wrap `input`, whose tuples carry `arity` slot columns and
    /// `n_groups` grouping columns appended to the original row.
    pub fn new(
        input: BoxOperator<'a>,
        ctx: &'a ExecCtx<'a>,
        schema: &'a Schema,
        compiled: &'a CompiledPreference,
        but_only: Option<&'a Expr>,
        opts: NativeOptions,
        n_groups: usize,
    ) -> Self {
        let n_orig = schema.len() - compiled.preference.arity() - n_groups;
        PreferenceOp {
            input,
            ctx,
            schema,
            compiled,
            but_only,
            opts,
            n_orig,
            n_groups,
            winners: Vec::new(),
            best_scores: Vec::new(),
            spill: None,
            spill_base: None,
            pos: 0,
        }
    }

    /// Root the operator's spill runs under `base` instead of the system
    /// temp dir (sessions own their spill dir).
    pub fn with_spill_base(mut self, base: Option<&'a Path>) -> Self {
        self.spill_base = base;
        self
    }

    /// A spill manager rooted at this operator's spill base.
    fn spill_manager(&self) -> Result<SpillManager> {
        match self.spill_base {
            Some(dir) => SpillManager::new_in(dir),
            None => SpillManager::new(),
        }
    }

    fn slot_of(&self, row: &Tuple) -> Vec<Value> {
        (0..self.compiled.preference.arity())
            .map(|i| row[self.n_orig + i].clone())
            .collect()
    }

    /// Data-dependent optima per base preference (`LOWEST`/`HIGHEST`
    /// quality functions need them), valid after [`Operator::open`].
    pub fn best_scores(&self) -> &[Option<f64>] {
        &self.best_scores
    }

    /// Move the buffered winner set out of the operator (valid after
    /// [`Operator::open`]; subsequent [`Operator::next`] calls see an
    /// exhausted stream). Lets a driver that wants the whole result
    /// avoid re-cloning every tuple through `next()`.
    pub fn take_winners(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.winners)
    }

    /// Spill observability of the last [`Operator::open`]: `Some`
    /// whenever a window budget governed the evaluation (`passes == 0`
    /// means the candidates fit and the selection stayed in memory),
    /// `None` when no budget applied (forced algorithm, GROUPING, or no
    /// `\window`/`PREFSQL_WINDOW`).
    pub fn spill_metrics(&self) -> Option<&SpillMetrics> {
        self.spill.as_ref()
    }

    /// `BUT ONLY` filter for one extended row (§2.2.5), evaluated with
    /// the final data-dependent optima.
    fn passes_but_only(&self, row: &Tuple, best_scores: &[Option<f64>]) -> Result<bool> {
        let Some(b) = self.but_only else {
            return Ok(true);
        };
        let substituted = substitute_quality(b, self.compiled, &self.slot_of(row), best_scores)?;
        let frames = [Frame {
            schema: self.schema,
            tuple: row,
        }];
        Ok(truth(&eval(&substituted, &frames, self.ctx)?) == Some(true))
    }

    /// Running update of the per-base minima that `LOWEST`/`HIGHEST`
    /// quality functions need — the streaming path folds this over every
    /// input row, matching the batch path's global `min_by`.
    fn update_best_scores(best: &mut [Option<f64>], bases: &[BasePref], slots: &[Value]) {
        for ((best, base), v) in best.iter_mut().zip(bases).zip(slots) {
            if let Some(s) = base.score(v) {
                *best = Some(match best {
                    Some(b) => {
                        if s.total_cmp(b).is_lt() {
                            s
                        } else {
                            *b
                        }
                    }
                    None => s,
                });
            }
        }
    }

    /// The in-memory tail shared by the materializing path and the
    /// under-budget streaming path: compute the data-dependent optima,
    /// apply `BUT ONLY`, run the maximal-set selection, buffer winners.
    fn select_in_memory(&mut self, rows: Vec<Tuple>) -> Result<()> {
        let arity = self.compiled.preference.arity();

        // Data-dependent optima for LOWEST/HIGHEST quality functions.
        self.best_scores = (0..arity)
            .map(|i| {
                rows.iter()
                    .filter_map(|r| self.compiled.preference.bases()[i].score(&r[self.n_orig + i]))
                    .min_by(|a, b| a.total_cmp(b))
            })
            .collect();

        // BUT ONLY filters candidates before dominance (§2.2.5).
        let candidates: Vec<Tuple> = if self.but_only.is_none() {
            rows
        } else {
            let best = self.best_scores.clone();
            let mut kept = Vec::new();
            for row in rows {
                if self.passes_but_only(&row, &best)? {
                    kept.push(row);
                }
            }
            kept
        };

        // Maximal-set selection.
        let slot_vectors: Vec<Vec<Value>> = candidates.iter().map(|r| self.slot_of(r)).collect();
        let winner_indices: Vec<usize> = if self.n_groups > 0 {
            let keys: Vec<Vec<Value>> = candidates
                .iter()
                .map(|r| {
                    (0..self.n_groups)
                        .map(|j| r[self.n_orig + arity + j].clone())
                        .collect()
                })
                .collect();
            bmo_grouped(&slot_vectors, &keys, &self.compiled.preference)
        } else {
            maximal_with_threads(
                &slot_vectors,
                &self.compiled.preference,
                self.opts.algo,
                self.opts.threads,
            )
        };
        let mut candidates = candidates.into_iter().map(Some).collect::<Vec<_>>();
        self.winners = winner_indices
            .iter()
            .map(|&i| candidates[i].take().expect("winner indices are unique"))
            .collect();
        Ok(())
    }

    /// The external-memory path: pull input through the batch API,
    /// buffering until the window budget trips, then hand the stream to
    /// the bounded-window multi-pass BNL (spilling overflow runs to
    /// disk). Queries with a `BUT ONLY` threshold first spool the input
    /// to a run — the threshold's quality functions need the
    /// data-dependent optima, which are only final after the last input
    /// row — and feed the skyline from the spool on a second pass.
    fn open_external(&mut self, budget: usize) -> Result<()> {
        let bases = self.compiled.preference.bases().to_vec();
        let arity = bases.len();
        let n_orig = self.n_orig;
        let mut best: Vec<Option<f64>> = vec![None; arity];
        let mut buffered: Vec<Tuple> = Vec::new();
        let mut buffered_bytes = 0usize;

        // Pull phase. `sink` engages once the budget trips: the skyline
        // machine directly, or a spool run when BUT ONLY must wait for
        // the optima.
        enum Sink<'p> {
            Skyline(ExternalSkyline<'p>),
            Spool {
                manager: SpillManager,
                writer: prefsql_storage::spill::RunWriter,
            },
        }
        let mut sink: Option<Sink<'_>> = None;

        let mut scratch: Vec<Tuple> = Vec::new();
        loop {
            scratch.clear();
            let more = match self.opts.batch {
                Some(batch) => self.input.next_batch(&mut scratch, batch.max(1))?,
                None => match self.input.next()? {
                    Some(t) => {
                        scratch.push(t);
                        true
                    }
                    None => false,
                },
            };
            for row in &scratch {
                Self::update_best_scores(&mut best, &bases, &row.values()[n_orig..n_orig + arity]);
            }
            let mut rows = scratch.drain(..);
            // Buffering phase: accumulate until the budget trips, then
            // replay the buffer into the engaged sink.
            if sink.is_none() {
                for row in rows.by_ref() {
                    buffered_bytes += tuple_spill_bytes(&row);
                    buffered.push(row);
                    if should_spill(self.opts.algo, buffered_bytes, Some(budget)) {
                        if self.but_only.is_some() {
                            let mut manager = self.spill_manager()?;
                            let mut writer = manager.begin_run()?;
                            writer.write_batch(&buffered)?;
                            buffered = Vec::new();
                            sink = Some(Sink::Spool { manager, writer });
                        } else {
                            let mut machine = ExternalSkyline::with_manager(
                                &self.compiled.preference,
                                n_orig,
                                budget,
                                self.spill_manager()?,
                            );
                            machine.push_batch(buffered.drain(..))?;
                            sink = Some(Sink::Skyline(machine));
                        }
                        break;
                    }
                }
            }
            // Streaming phase: the rest of the batch goes to the sink
            // whole — the spool writes one frame per pulled batch, not
            // one per tuple.
            match &mut sink {
                Some(Sink::Skyline(machine)) => machine.push_batch(rows)?,
                Some(Sink::Spool { writer, .. }) => {
                    let rest: Vec<Tuple> = rows.collect();
                    writer.write_batch(&rest)?;
                }
                None => debug_assert_eq!(rows.count(), 0, "unbuffered rows without a sink"),
            }
            if !more {
                break;
            }
        }

        match sink {
            None => {
                // The whole candidate set fits the budget: stay in
                // memory (and report that the budget was honored).
                self.select_in_memory(buffered)?;
                self.spill = Some(SpillMetrics::default());
            }
            Some(Sink::Skyline(machine)) => {
                self.best_scores = best;
                let (winners, metrics) = machine.finish()?;
                self.winners = winners.into_iter().map(|(_, row)| row).collect();
                self.spill = Some(metrics);
            }
            Some(Sink::Spool {
                mut manager,
                writer,
            }) => {
                // Optima are final now; filter the spooled candidates
                // and feed the survivors through the bounded window.
                self.best_scores = best;
                let spool = writer.finish()?;
                manager.record_run(&spool);
                let mut machine = ExternalSkyline::with_manager(
                    &self.compiled.preference,
                    n_orig,
                    budget,
                    manager,
                );
                let mut reader = RunReader::open(&spool)?;
                while let Some(row) = reader.next_tuple()? {
                    if self.passes_but_only(&row, &self.best_scores)? {
                        machine.push(row)?;
                    }
                }
                drop(reader);
                spool.delete()?;
                let (winners, mut metrics) = machine.finish()?;
                // The spool pass reads the whole candidate set once more.
                metrics.passes += 1;
                self.winners = winners.into_iter().map(|(_, row)| row).collect();
                self.spill = Some(metrics);
            }
        }
        Ok(())
    }
}

impl Operator for PreferenceOp<'_> {
    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.spill = None;
        // External-memory mode: a window budget under [`SkylineAlgo::Auto`]
        // streams the input through the bounded window instead of
        // materializing it (GROUPING runs the grouped BMO, which stays
        // in memory; forced algorithms stay pinned for the differential
        // suites).
        if self.n_groups == 0 && matches!(self.opts.algo, SkylineAlgo::Auto) {
            if let Some(budget) = self.opts.window_bytes {
                let result = self.input.open().and_then(|()| self.open_external(budget));
                self.input.close();
                return result;
            }
        }
        // Consume the source through the batched drive loop (or the
        // tuple-at-a-time baseline when the differential suites ask).
        let rows = match self.opts.batch {
            Some(batch) => drain_batched(self.input.as_mut(), batch)?,
            None => drain_tuple_at_a_time(self.input.as_mut())?,
        };
        self.select_in_memory(rows)
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.winners.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(Some(t.clone()))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, out: &mut Vec<Tuple>, max: usize) -> Result<bool> {
        Ok(batch_from(&self.winners, &mut self.pos, out, max))
    }

    fn next_slice(&mut self, max: usize) -> Result<Option<&[Tuple]>> {
        Ok(Some(slice_from(&self.winners, &mut self.pos, max)))
    }

    fn close(&mut self) {
        self.input.close();
        self.winners = Vec::new();
    }
}

/// Evaluate a preference query natively with the default knobs for
/// `algo`: see [`run_native_opts`].
pub fn run_native(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    algo: SkylineAlgo,
) -> Result<ResultSet> {
    run_native_opts(engine, registry, query, NativeOptions::with_algo(algo))
}

/// Evaluate a preference query natively: see [`run_native_ctx`]. Runs as
/// one read statement on `engine`'s shared core.
pub fn run_native_opts(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    opts: NativeOptions,
) -> Result<ResultSet> {
    run_native_in(engine, registry, query, opts, None)
}

/// [`run_native_opts`] with the session's spill directory: spill runs of
/// the external-memory path land under `spill_base` instead of the
/// system temp dir.
pub fn run_native_in(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    opts: NativeOptions,
    spill_base: Option<&Path>,
) -> Result<ResultSet> {
    engine.with_read_ctx(|ctx| run_native_ctx(ctx, registry, query, opts, spill_base))
}

/// Evaluate a preference query natively inside one statement context:
/// FROM/WHERE run on the host engine's planned operator pipeline
/// (consumed through the batched drive loop); a [`PreferenceOp`] on top
/// performs the BMO selection (parallelizing the window per
/// `opts.threads`); ORDER BY, projection (with quality functions),
/// DISTINCT and LIMIT post-process the winners.
pub fn run_native_ctx(
    ctx: &ExecCtx<'_>,
    registry: &PreferenceRegistry,
    query: &Query,
    opts: NativeOptions,
    spill_base: Option<&Path>,
) -> Result<ResultSet> {
    let native = prepare(registry, query)?;
    let plan = ctx.plan_for(&native.aux)?;
    let schema = plan.root().schema().clone();
    let n_orig = schema.len() - native.compiled.preference.arity() - native.n_groups;

    // A registered materialized preference view that defines exactly this
    // BMO serves its stored winner set — the dominance pass is skipped
    // and the tail below post-processes the cached rows instead.
    let served = match classify_view(ctx, registry, query, plan.root()) {
        ViewMatch::Hit(name) => Some(name),
        _ => None,
    };
    let (mut winners, best_scores, spill): (Vec<Tuple>, Vec<Option<f64>>, Option<SpillMetrics>) =
        if let Some(view) = &served {
            // Quality functions are excluded from hits (`classify_view`),
            // so the data-dependent optima are never consulted.
            let winners = served_winners(ctx, view)?;
            (
                winners,
                vec![None; native.compiled.preference.arity()],
                None,
            )
        } else {
            // Under EXPLAIN ANALYZE (or the server's slow-query log) the
            // statement context carries a profiler: register the source
            // plan so the per-node metrics can be rendered against it.
            ctx.profile_plan(&plan);
            let mut op = PreferenceOp::new(
                build(ctx, plan.root(), &[]),
                ctx,
                &schema,
                &native.compiled,
                query.but_only.as_ref(),
                opts,
                native.n_groups,
            )
            .with_spill_base(spill_base);
            op.open()?;
            let winners: Vec<Tuple> = op.take_winners();
            let best_scores = op.best_scores().to_vec();
            let mut spill = op.spill_metrics().cloned();
            op.close();
            // A hash join feeding the preference input may itself have
            // spilled under the window budget; fold its runs into this
            // query's account.
            if let Some(join) = ctx.take_spill() {
                match &mut spill {
                    Some(s) => s.absorb(&join),
                    None => spill = Some(join),
                }
            }
            (winners, best_scores, spill)
        };

    // Harvest the dominance tally of this statement's maximal-set
    // selection — the paper's unit of preference-evaluation cost. A view
    // hit skipped the pass entirely (its upkeep was charged at DML
    // time), so a served query reports zero.
    let comparisons = native.compiled.preference.take_comparisons();
    ctx.note_dominance_tests(comparisons);

    let compiled = &native.compiled;
    let arity = compiled.preference.arity();
    let slot_of =
        |row: &Tuple| -> Vec<Value> { (0..arity).map(|i| row[n_orig + i].clone()).collect() };

    // ORDER BY (quality functions allowed).
    if !query.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(winners.len());
        for row in winners {
            let mut key = Vec::with_capacity(query.order_by.len());
            for o in &query.order_by {
                let substituted =
                    substitute_quality(&o.expr, compiled, &slot_of(&row), &best_scores)?;
                let frames = [Frame {
                    schema: &schema,
                    tuple: &row,
                }];
                key.push(eval(&substituted, &frames, ctx)?);
            }
            keyed.push((key, row));
        }
        keyed.sort_by(|a, b| {
            for (i, o) in query.order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if o.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        winners = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // Projection.
    let mut columns: Vec<Column> = Vec::new();
    let mut cells_per_row: Vec<Vec<Value>> = vec![Vec::new(); winners.len()];
    for item in &query.select {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                for c in schema.columns().iter().take(n_orig) {
                    let mut col = c.clone();
                    col.qualifier = None;
                    columns.push(col);
                }
                for (out, row) in cells_per_row.iter_mut().zip(&winners) {
                    out.extend(row.values().iter().take(n_orig).cloned());
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::Function { name, args } => match args.first() {
                        Some(Expr::Column { name: col, .. })
                            if matches!(name.as_str(), "top" | "level" | "distance") =>
                        {
                            format!("{name}_{col}")
                        }
                        _ => name.clone(),
                    },
                    other => other.to_string().to_ascii_lowercase(),
                });
                // Plain column references take their declared type from
                // the source schema, so an all-NULL winner set still
                // reports the same schema as the rewrite path; other
                // expressions infer from the first typed value.
                let mut dtype = match expr {
                    Expr::Column { qualifier, name } => schema
                        .resolve(qualifier.as_deref(), name)
                        .map(|i| schema.column(i).data_type)
                        .unwrap_or(DataType::Str),
                    _ => DataType::Str,
                };
                for (out, row) in cells_per_row.iter_mut().zip(&winners) {
                    let substituted =
                        substitute_quality(expr, compiled, &slot_of(row), &best_scores)?;
                    let frames = [Frame {
                        schema: &schema,
                        tuple: row,
                    }];
                    let v = eval(&substituted, &frames, ctx)?;
                    if let Some(t) = v.data_type() {
                        dtype = t;
                    }
                    out.push(v);
                }
                columns.push(Column::new(name, dtype));
            }
        }
    }
    // Unique output names (mirrors the engine's projection behaviour).
    let mut seen: Vec<String> = Vec::new();
    for c in &mut columns {
        if seen.contains(&c.name) {
            let mut k = 2;
            while seen.contains(&format!("{}_{k}", c.name)) {
                k += 1;
            }
            c.name = format!("{}_{k}", c.name);
        }
        seen.push(c.name.clone());
    }
    let out_schema = Schema::new(columns)?;
    let mut rows: Vec<Tuple> = cells_per_row.into_iter().map(Tuple::new).collect();

    // DISTINCT and LIMIT.
    if query.distinct {
        let mut kept: Vec<Tuple> = Vec::new();
        for row in rows {
            if !kept.iter().any(|k| {
                k.values()
                    .iter()
                    .zip(row.values())
                    .all(|(a, b)| a.key_eq(b))
            }) {
                kept.push(row);
            }
        }
        rows = kept;
    }
    if let Some(n) = query.limit {
        rows.truncate(n as usize);
    }
    Ok(ResultSet::new(Relation {
        schema: out_schema,
        rows,
    })
    .with_spill(spill)
    .with_dominance(comparisons)
    .with_views(served.map(|name| ViewActivity {
        served_by: Some(name),
        maintained: 0,
    })))
}

/// Render the native execution plan with the default knobs for `algo`:
/// see [`explain_native_opts`].
pub fn explain_native(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    algo: SkylineAlgo,
) -> Result<String> {
    explain_native_opts(engine, registry, query, NativeOptions::with_algo(algo))
}

/// Render the native execution plan for a preference query: the
/// [`PreferenceOp`] description on top of the very source plan
/// [`run_native_opts`] would execute, surfacing the parallel-window
/// degree the session knob allows.
pub fn explain_native_opts(
    engine: &Engine,
    registry: &PreferenceRegistry,
    query: &Query,
    opts: NativeOptions,
) -> Result<String> {
    engine.with_read_ctx(|ctx| explain_native_ctx(ctx, registry, query, opts))
}

/// [`explain_native_opts`] inside an existing statement context.
pub fn explain_native_ctx(
    ctx: &ExecCtx<'_>,
    registry: &PreferenceRegistry,
    query: &Query,
    opts: NativeOptions,
) -> Result<String> {
    let native = prepare(registry, query)?;
    let plan = ctx.plan_for(&native.aux)?;
    let arity = native.compiled.preference.arity();
    let mut out = String::new();
    let mut steps = Vec::new();
    if !query.order_by.is_empty() {
        steps.push(format!("sort({} keys)", query.order_by.len()));
    }
    if query.distinct {
        steps.push("distinct".into());
    }
    if let Some(n) = query.limit {
        steps.push(format!("limit {n}"));
    }
    let steps = if steps.is_empty() {
        String::new()
    } else {
        format!(" [{}]", steps.join(", "))
    };
    out.push_str(&format!("Project{steps}\n"));
    // GROUPING queries always run the grouped BMO (the algo choice only
    // applies to the ungrouped maximal-set selection) — say so, instead
    // of naming an algorithm the executor would not use.
    let mut algo_shown = if native.n_groups > 0 {
        format!("grouped-bmo, {} key(s)", native.n_groups)
    } else if matches!(opts.algo, SkylineAlgo::Auto) && opts.threads > 1 {
        // The effective degree is cost-based per input (serial under
        // PARALLEL_CUTOFF candidates) — surface the session's ceiling.
        format!("algo={}, threads={}", opts.algo.label(), opts.threads)
    } else {
        format!("algo={}", opts.algo.label())
    };
    // External-memory mode: surface the window budget the operator will
    // stream under (spilled_runs/passes are runtime facts — the shell
    // prints them as a metrics line after each execution).
    if native.n_groups == 0 && matches!(opts.algo, SkylineAlgo::Auto) {
        if let Some(budget) = opts.window_bytes {
            algo_shown.push_str(&format!(", window={}", knobs::fmt_bytes(budget as u64)));
        }
    }
    let but_only = if query.but_only.is_some() {
        ", but-only threshold"
    } else {
        ""
    };
    // Materialized-preference-view annotation: a hit replaces the whole
    // dominance pass (and its source plan) with the stored winner set;
    // stale/miss keep the normal plan but say why the cache didn't serve.
    match classify_view(ctx, registry, query, plan.root()) {
        ViewMatch::Hit(name) => {
            let winners = ctx
                .catalog()
                .matview(&name)
                .map(|d| d.winner_count())
                .unwrap_or(0);
            out.push_str(&format!(
                "  Materialized view scan: {name} ({winners} winners) [view={name} hit]\n"
            ));
        }
        other => {
            let tag = match &other {
                ViewMatch::Stale(name) => format!(" [view={name} stale]"),
                ViewMatch::Miss(name) => format!(" [view={name} miss]"),
                ViewMatch::Hit(_) | ViewMatch::None => String::new(),
            };
            out.push_str(&format!(
                "  Preference (BMO, {algo_shown}, {arity} base preference(s){but_only}){tag}\n"
            ));
            prefsql_engine::explain::render(plan.root(), 2, &mut out);
        }
    }
    Ok(out)
}

/// Replace `TOP`/`LEVEL`/`DISTANCE` calls with their computed values for
/// one tuple. Non-quality sub-expressions are left for the engine
/// evaluator.
fn substitute_quality(
    expr: &Expr,
    compiled: &CompiledPreference,
    slots: &[Value],
    best_scores: &[Option<f64>],
) -> Result<Expr> {
    if let Expr::Function { name, args } = expr {
        if matches!(name.as_str(), "top" | "level" | "distance") {
            if args.len() != 1 {
                return Err(Error::Plan(format!(
                    "{name}() expects exactly one attribute argument"
                )));
            }
            let slot = compiled.slot_of(&args[0]).ok_or_else(|| {
                Error::Rewrite(format!(
                    "{name}({}) does not match any base preference",
                    args[0]
                ))
            })?;
            let base = &compiled.preference.bases()[slot];
            let v = &slots[slot];
            return Ok(Expr::Literal(native_quality_value(
                name,
                base,
                v,
                best_scores[slot],
            )?));
        }
    }
    // Rebuild with substituted children.
    let rebuilt = match expr {
        Expr::Unary { op, expr: e } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_quality(e, compiled, slots, best_scores)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_quality(left, compiled, slots, best_scores)?),
            op: *op,
            right: Box::new(substitute_quality(right, compiled, slots, best_scores)?),
        },
        Expr::IsNull { expr: e, negated } => Expr::IsNull {
            expr: Box::new(substitute_quality(e, compiled, slots, best_scores)?),
            negated: *negated,
        },
        Expr::Between {
            expr: e,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(substitute_quality(e, compiled, slots, best_scores)?),
            low: Box::new(substitute_quality(low, compiled, slots, best_scores)?),
            high: Box::new(substitute_quality(high, compiled, slots, best_scores)?),
            negated: *negated,
        },
        Expr::InList {
            expr: e,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_quality(e, compiled, slots, best_scores)?),
            list: list
                .iter()
                .map(|i| substitute_quality(i, compiled, slots, best_scores))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| substitute_quality(o, compiled, slots, best_scores).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        substitute_quality(w, compiled, slots, best_scores)?,
                        substitute_quality(t, compiled, slots, best_scores)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| substitute_quality(e, compiled, slots, best_scores).map(Box::new))
                .transpose()?,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute_quality(a, compiled, slots, best_scores))
                .collect::<Result<_>>()?,
        },
        other => other.clone(),
    };
    Ok(rebuilt)
}

/// The value of one quality function for one attribute value.
fn native_quality_value(
    func: &str,
    base: &BasePref,
    v: &Value,
    best_score: Option<f64>,
) -> Result<Value> {
    match func {
        "level" => Ok(base.level(v).map(Value::Int).unwrap_or(Value::Null)),
        "distance" => match base {
            BasePref::Around { .. } | BasePref::Between { .. } => {
                Ok(base.score(v).map(float_or_int).unwrap_or(Value::Null))
            }
            BasePref::Lowest | BasePref::Highest => match (base.score(v), best_score) {
                (Some(s), Some(b)) => Ok(float_or_int(s - b)),
                _ => Ok(Value::Null),
            },
            _ => Err(Error::Plan(
                "DISTANCE() applies to numeric preferences; use LEVEL() for \
                 categorical preferences"
                    .into(),
            )),
        },
        "top" => match base {
            BasePref::Lowest | BasePref::Highest => Ok(Value::Bool(
                matches!((base.score(v), best_score), (Some(s), Some(b)) if s == b),
            )),
            _ => Ok(Value::Bool(base.top(v, None))),
        },
        other => Err(Error::Plan(format!("unknown quality function '{other}'"))),
    }
}

/// Distances are conceptually numeric; keep integers integral for display
/// parity with the rewrite path.
fn float_or_int(f: f64) -> Value {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        Value::Int(f as i64)
    } else {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefsql_parser::ast::Statement;

    /// [`PreferenceOp`] advertises the engine's full [`Operator`]
    /// contract, so its buffered `next_batch`/`next_slice` overrides
    /// must walk the same cursor as `next()` — pinned here by driving
    /// three identical operators through the three surfaces (the
    /// batched calls interleaved with `next()`) over a winner set that
    /// straddles the batch boundary.
    #[test]
    fn preference_op_batched_surface_matches_next() {
        let mut engine = Engine::new();
        engine
            .execute_sql("CREATE TABLE t (id INTEGER, x INTEGER, y INTEGER)")
            .unwrap();
        // Five pairwise-incomparable rows (the winners) plus two
        // dominated ones, so batches of 2 end with a short final batch.
        engine
            .execute_sql(
                "INSERT INTO t VALUES (1, 0, 9), (2, 1, 7), (3, 2, 5), \
                 (4, 3, 3), (5, 4, 1), (6, 5, 9), (7, 9, 9)",
            )
            .unwrap();
        let registry = PreferenceRegistry::new();
        let Statement::Select(query) = prefsql_parser::parse_statement(
            "SELECT id FROM t PREFERRING x AROUND 0 AND y AROUND 0",
        )
        .unwrap() else {
            panic!("expected a SELECT");
        };
        let native = prepare(&registry, &query).unwrap();
        let ctx = engine.read_ctx().unwrap();
        let plan = ctx.plan_for(&native.aux).unwrap();
        let schema = plan.root().schema().clone();
        let open = || {
            let mut op = PreferenceOp::new(
                build(&ctx, plan.root(), &[]),
                &ctx,
                &schema,
                &native.compiled,
                query.but_only.as_ref(),
                NativeOptions::default(),
                native.n_groups,
            );
            op.open().unwrap();
            op
        };

        let mut baseline = open();
        let mut expected = Vec::new();
        while let Some(t) = baseline.next().unwrap() {
            expected.push(t);
        }
        baseline.close();
        assert_eq!(expected.len(), 5, "winner set should be the antichain");

        // next_batch interleaved with next(): one shared cursor.
        let mut op = open();
        let mut got = vec![op.next().unwrap().expect("first winner")];
        loop {
            let more = op.next_batch(&mut got, 2).unwrap();
            if !more {
                break;
            }
        }
        assert!(!op.next_batch(&mut got, 2).unwrap(), "stays exhausted");
        op.close();
        assert_eq!(got, expected);

        // next_slice lends the same stream; empty slice marks the end.
        let mut op = open();
        let mut got = vec![op.next().unwrap().expect("first winner")];
        loop {
            let slice = op.next_slice(2).unwrap().expect("buffered operator");
            if slice.is_empty() {
                break;
            }
            got.extend_from_slice(slice);
        }
        op.close();
        assert_eq!(got, expected);
    }
}
